"""Setuptools entry point (kept for offline `pip install -e .` support)."""

from setuptools import setup

setup()
