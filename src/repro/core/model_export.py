"""In-database model inference (the paper's outlook, §7).

The conclusion proposes extending the SQL support "such as for training a
model" to "eliminate the remaining need for final data transfer".  This
module implements the inference half of that outlook: trained linear
models and decision trees export to plain SQL scalar expressions, so the
prediction — and with it the accuracy computation — can run inside the
database over a feature table expression, with no extraction at all.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.naming import quote_identifier as q
from repro.errors import TranslationError
from repro.learn.linear_model import _BinaryLinearClassifier
from repro.learn.tree import DecisionTreeClassifier, _Node

__all__ = [
    "accuracy_query",
    "decision_tree_to_sql",
    "linear_model_to_sql",
    "model_to_sql",
]


def linear_model_to_sql(
    model: _BinaryLinearClassifier, feature_columns: Sequence[str]
) -> str:
    """Binary prediction expression ``w . x + b > 0`` for a linear model."""
    if model.coef_ is None:
        raise TranslationError("the model must be fitted before export")
    if len(feature_columns) != len(model.coef_):
        raise TranslationError(
            f"model has {len(model.coef_)} coefficients but "
            f"{len(feature_columns)} feature columns were given"
        )
    terms = [
        f"({weight!r} * {q(column)})"
        for weight, column in zip(map(float, model.coef_), feature_columns)
    ]
    decision = " + ".join(terms) + f" + {float(model.intercept_)!r}"
    return f"(CASE WHEN {decision} > 0 THEN 1 ELSE 0 END)"


def _tree_expression(node: _Node, feature_columns: Sequence[str]) -> str:
    if node.is_leaf:
        return "1" if node.prediction > 0.5 else "0"
    column = q(feature_columns[node.feature])
    left = _tree_expression(node.left, feature_columns)
    right = _tree_expression(node.right, feature_columns)
    return (
        f"(CASE WHEN {column} <= {float(node.threshold)!r} "
        f"THEN {left} ELSE {right} END)"
    )


def decision_tree_to_sql(
    model: DecisionTreeClassifier, feature_columns: Sequence[str]
) -> str:
    """Nested-CASE prediction expression for a fitted CART tree."""
    if model._root is None:
        raise TranslationError("the model must be fitted before export")
    return _tree_expression(model._root, feature_columns)


def model_to_sql(model, feature_columns: Sequence[str]) -> str:
    """Dispatch on the model type; raises for untranslatable models."""
    if isinstance(model, _BinaryLinearClassifier):
        return linear_model_to_sql(model, feature_columns)
    if isinstance(model, DecisionTreeClassifier):
        return decision_tree_to_sql(model, feature_columns)
    raise TranslationError(
        f"{type(model).__name__} has no SQL inference translation"
    )


def accuracy_query(
    model,
    feature_table: str,
    feature_columns: Sequence[str],
    label_column: str,
) -> str:
    """SELECT computing the model's accuracy fully inside the database."""
    prediction = model_to_sql(model, feature_columns)
    return (
        f"SELECT AVG(CASE WHEN {prediction} = {q(label_column)} "
        f"THEN 1.0 ELSE 0.0 END) AS accuracy FROM {feature_table}"
    )
