"""Unique naming of generated tables, views and tracking columns.

Follows the paper's scheme (Listing 5): base tables are named
``{file}_{line}_mlinid{n}``, derived table expressions
``block_mlinid{n}_{line}``, and every tuple-tracking column is the owning
table expression's name suffixed with ``_ctid``.
"""

from __future__ import annotations

import re

__all__ = ["NameGenerator", "quote_identifier"]


def quote_identifier(name: str) -> str:
    """Double-quote a column identifier (handles '-' etc. in CSV headers)."""
    return '"' + name.replace('"', '""') + '"'


class NameGenerator:
    """Sequential mlinspect-style operator ids and derived names."""

    def __init__(self) -> None:
        self._next_id = 0

    def next_op_id(self) -> int:
        op_id = self._next_id
        self._next_id += 1
        return op_id

    def table_name(self, file_base: str, lineno: int | None, op_id: int) -> str:
        safe = re.sub(r"\W+", "_", file_base).strip("_").lower() or "table"
        return f"{safe}_{lineno or 0}_mlinid{op_id}"

    def block_name(self, op_id: int, lineno: int | None) -> str:
        return f"block_mlinid{op_id}_{lineno or 0}"

    @staticmethod
    def ctid_column(table_name: str) -> str:
        return f"{table_name}_ctid"
