"""CSV schema sniffing for the SQL backend (§5.1.1 of the paper).

Derives SQL column types from the file content (int, float, everything
else text), detects the index-column-without-header layout, and reports
per-column nullability so join translations can add the null-safe clause
only where needed.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass

from repro.errors import TranslationError
from repro.frame.io import infer_column_type

__all__ = ["ColumnSchema", "CsvSchema", "sniff_csv"]

_SQL_TYPES = {"int": "INT", "float": "DOUBLE PRECISION", "str": "TEXT"}


@dataclass(frozen=True)
class ColumnSchema:
    name: str
    sql_type: str  # INT | DOUBLE PRECISION | TEXT
    nullable: bool


@dataclass(frozen=True)
class CsvSchema:
    columns: tuple[ColumnSchema, ...]
    has_index_column: bool
    n_rows: int

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]


def sniff_csv(
    path: str, na_values: str | None = None, sample_limit: int | None = None
) -> CsvSchema:
    """Analyse a CSV file and derive its SQL schema.

    ``sample_limit`` bounds the rows examined for *type* inference; the row
    count always reflects the whole file (needed to report dataset sizes).
    """
    nulls = {"", na_values} if na_values else {""}
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TranslationError(f"empty CSV file: {path}") from None
        raw_columns: list[list[str | None]] = []
        n_fields = None
        n_rows = 0
        for row in reader:
            if not row:
                continue
            n_rows += 1
            if n_fields is None:
                n_fields = len(row)
                raw_columns = [[] for _ in range(n_fields)]
            if sample_limit is None or n_rows <= sample_limit:
                for j, cell in enumerate(row):
                    raw_columns[j].append(None if cell in nulls else cell)
    if n_fields is None:
        n_fields = len(header)
        raw_columns = [[] for _ in range(n_fields)]
    has_index_column = n_fields == len(header) + 1
    names = (["index_"] if has_index_column else []) + list(header)
    if len(names) != n_fields:
        raise TranslationError(
            f"{path}: header has {len(header)} fields but rows have {n_fields}"
        )
    columns = []
    for name, raw in zip(names, raw_columns):
        kind = infer_column_type(raw)
        nullable = any(v is None for v in raw)
        columns.append(ColumnSchema(name, _SQL_TYPES[kind], nullable))
    return CsvSchema(tuple(columns), has_index_column, n_rows)
