"""The SQL mapping's value objects (§4 of the paper).

The SQL mapping associates every Python *dummy object* flowing through the
pipeline with the information needed to build its SQL representation:

* :class:`TableInfo` — a table expression (one view/CTE): its name, its
  visible columns with types, and the tuple-tracking columns with their
  aggregation state;
* :class:`SeriesExpr` — the execution tree of scalar operations over one
  table expression (§5.1.4's condensed translation): instead of one CTE
  per sub-operation, nested arithmetic/boolean calls fold into a single
  SQL scalar expression over the parent block.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["SeriesExpr", "TableInfo"]


@dataclass
class TableInfo:
    """One table expression registered in the query container."""

    name: str
    #: visible data columns in order (pandas-facing names, unquoted)
    columns: list[str]
    #: column -> SQL type ('INT' | 'DOUBLE PRECISION' | 'TEXT' | 'BOOLEAN'
    #: | 'ARRAY')
    column_types: dict[str, str]
    #: tracking column name -> True when aggregated into an array
    ctids: dict[str, bool] = field(default_factory=dict)
    #: columns that may contain NULL (drives null-safe join clauses)
    nullable: set[str] = field(default_factory=set)
    #: True when this expression represents a matrix (transformer output)
    is_matrix: bool = False
    #: row-number column (§5.1.8) carried for row-wise operations across
    #: tables; None when the source had no index column
    index_column: Optional[str] = None

    def type_of(self, column: str) -> str:
        return self.column_types.get(column, "DOUBLE PRECISION")

    def derive(self, name: str, columns: Optional[list[str]] = None) -> "TableInfo":
        """A child expression with the same tracking/nullability state."""
        cols = list(self.columns) if columns is None else list(columns)
        return TableInfo(
            name,
            cols,
            {c: self.column_types.get(c, "DOUBLE PRECISION") for c in cols},
            dict(self.ctids),
            {c for c in self.nullable if c in cols},
            self.is_matrix,
            self.index_column,
        )

    def with_column(self, column: str, sql_type: str, nullable: bool = False) -> None:
        if column not in self.columns:
            self.columns.append(column)
        self.column_types[column] = sql_type
        if nullable:
            self.nullable.add(column)
        else:
            self.nullable.discard(column)


@dataclass(frozen=True)
class SeriesExpr:
    """A scalar SQL expression over one parent table expression."""

    parent: TableInfo
    sql: str
    name: Optional[str] = None
    sql_type: str = "DOUBLE PRECISION"
    nullable: bool = True

    def renamed(self, name: str) -> "SeriesExpr":
        return replace(self, name=name)
