"""DBMS connectors used by the SQL backend.

Both connectors wrap the in-process engine through its DB-API adapter, the
same call shape the paper measures through psycopg2.  ``PostgresqlConnector``
uses the materialising (disk-based) profile, ``UmbraConnector`` the
pipelined (beyond-main-memory) profile.

This module is also the client side of the engine's multi-session MVCC:

* :func:`retry_backoff` re-runs work that failed with a *retryable*
  SQLSTATE (serialization failure 40001, deadlock 40P01, cancelled
  57014) under exponential backoff with jitter — the loop every
  PostgreSQL client is expected to wrap around transactions;
* :class:`ConnectionPool` is a fixed-size pool of sessions over one
  shared :class:`~repro.sqldb.engine.Database`, with checkout-time
  health checks (a dead session is replaced; a connection abandoned
  mid-transaction is rolled back before reuse).
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Sequence, TypeVar

from repro.errors import CannotConnectNow, SQLError
from repro.sqldb import ast_nodes as _ast
from repro.sqldb import dbapi
from repro.sqldb.engine import Database, Result
from repro.sqldb.parser import parse_script

__all__ = [
    "ConnectionPool",
    "DBConnector",
    "MultiEndpointConnector",
    "PostgresqlConnector",
    "ProfileConnector",
    "RemoteConnectionPool",
    "RemoteConnector",
    "RETRYABLE_SQLSTATES",
    "Topology",
    "UmbraConnector",
    "is_retryable",
    "retry_backoff",
]

_T = TypeVar("_T")

#: SQLSTATEs a client should retry: serialization_failure (first
#: committer won), deadlock_detected (this transaction was the victim),
#: query_canceled (statement timeout / cooperative cancel),
#: too_many_connections (the network server shed the connection at
#: admission — backoff and reconnect), read_only_sql_transaction (a
#: write landed on a replica of a topology whose primary moved — re-probe
#: and re-route) and cannot_connect_now (no endpoint accepts this yet —
#: a promotion is in flight; backoff until it completes)
#: out_of_memory (53200: the shared memory pool or grant queue shed the
#: query — peers finishing free budget, so a backed-off retry can get a
#: grant) and configuration_limit_exceeded (53400: the statement needs
#: more than its per-query budget for a non-degradable allocation — a
#: retry after the operator raises the limit succeeds)
RETRYABLE_SQLSTATES = frozenset(
    {"40001", "40P01", "57014", "53300", "25006", "57P03", "53200", "53400"}
)


def is_retryable(exc: BaseException) -> bool:
    """True when *exc* carries a SQLSTATE a client retry loop should
    re-run (the engine rolled the transaction back; a fresh attempt can
    succeed)."""
    return getattr(exc, "sqlstate", None) in RETRYABLE_SQLSTATES


def retry_backoff(
    fn: Callable[[], _T],
    attempts: int = 5,
    base_delay: float = 0.005,
    max_delay: float = 0.25,
    rng: Optional[random.Random] = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> _T:
    """Run ``fn()``, retrying retryable SQLSTATEs with exponential
    backoff plus jitter.

    The delay before attempt *n* is ``base_delay * 2**(n-1)`` capped at
    ``max_delay``, scaled by a uniform jitter in [0.5, 1.5) so colliding
    sessions desynchronise instead of re-conflicting in lockstep.
    ``on_retry(attempt_index, exc)`` runs before each re-attempt (the
    hook is where callers roll back session state).  Non-retryable
    errors, and the last attempt's failure, propagate unchanged.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    rng = rng if rng is not None else random.Random()
    for attempt in range(attempts):
        try:
            return fn()
        except SQLError as exc:
            if not is_retryable(exc) or attempt == attempts - 1:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = min(base_delay * (2.0 ** attempt), max_delay)
            time.sleep(delay * (0.5 + rng.random()))
    raise AssertionError("unreachable")  # pragma: no cover


class ConnectionPool:
    """Fixed-size client-side pool of sessions over one shared database.

    Every pooled connection is a DB-API :class:`~repro.sqldb.dbapi.Connection`
    opened with ``connect(database=...)`` — its own engine session, so
    checked-out connections run concurrently under snapshot isolation.

    Checkout validates the connection before handing it out:

    * a connection whose session died (closed underneath the pool) is
      discarded and replaced with a fresh session;
    * a connection returned — or abandoned — **mid-transaction** is
      rolled back and its locks released, so the next holder never
      inherits a half-open (possibly aborted) transaction.

    ``stats`` counts checkouts, replaced dead sessions and reset
    abandoned transactions.
    """

    #: granularity of re-checks while waiting for a free connection
    _WAIT_SLICE = 0.05

    def __init__(
        self,
        database: Database,
        size: int = 4,
        timeout: Optional[float] = None,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self._database = database
        self.size = size
        self._timeout = timeout
        self._cond = threading.Condition()
        self._idle: list[dbapi.Connection] = []
        self._n_created = 0
        self._closed = False
        self.stats = {
            "checkouts": 0,
            "dead_sessions_replaced": 0,
            "abandoned_txns_reset": 0,
        }

    def acquire(self) -> dbapi.Connection:
        """Check out a validated connection (blocks while the pool is
        exhausted; raises ``InterfaceError`` immediately if the pool is
        closed — including when it closes *while* this call is waiting
        or creating — and ``OperationalError`` after ``timeout`` s)."""
        deadline = (
            None if self._timeout is None
            else time.monotonic() + self._timeout
        )
        conn: Optional[dbapi.Connection] = None
        with self._cond:
            while True:
                if self._closed:
                    raise dbapi.InterfaceError("connection pool is closed")
                if self._idle:
                    conn = self._idle.pop()
                    break
                if self._n_created < self.size:
                    self._n_created += 1
                    break  # create outside the lock
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise dbapi.OperationalError(
                        "timed out waiting for a pooled connection"
                    )
                self._cond.wait(
                    self._WAIT_SLICE if remaining is None
                    else min(self._WAIT_SLICE, remaining)
                )
        try:
            if conn is None:
                conn = dbapi.connect(database=self._database)
            conn = self._validate(conn)
        except BaseException:
            # the slot this call claimed (or the idle conn it popped) is
            # being discarded: give the capacity back and wake a waiter
            with self._cond:
                self._n_created -= 1
                self._cond.notify()
            if conn is not None:
                conn.close()
            raise
        # close() may have run while this call was creating/validating
        # outside the lock: a closed pool must never hand out a session
        # whose database is being torn down behind it
        with self._cond:
            if self._closed:
                self._n_created -= 1
                conn.close()
                raise dbapi.InterfaceError("connection pool is closed")
        return conn

    def _validate(self, conn: dbapi.Connection) -> dbapi.Connection:
        """Health-check one connection on its way out of the pool."""
        if conn.closed:
            # the session died under the pool (explicit close, shutdown):
            # hand out a fresh session instead
            self.stats["dead_sessions_replaced"] += 1
            conn = dbapi.connect(database=self._database)
        elif conn.in_transaction:
            # the previous holder abandoned an open (possibly aborted)
            # transaction: roll it back so this holder starts clean and
            # never inherits 25P02s or stale snapshot reads
            self.stats["abandoned_txns_reset"] += 1
            conn.rollback()
        self.stats["checkouts"] += 1
        return conn

    def release(self, conn: dbapi.Connection) -> None:
        """Return a connection to the pool (validation happens at the
        *next* checkout, so even a mid-transaction return is safe)."""
        with self._cond:
            if self._closed:
                conn.close()
                return
            self._idle.append(conn)
            self._cond.notify()

    @contextmanager
    def connection(self) -> Iterator[dbapi.Connection]:
        """``with pool.connection() as conn:`` checkout/checkin scope."""
        conn = self.acquire()
        try:
            yield conn
        finally:
            self.release(conn)

    def close(self) -> None:
        """Close every idle pooled session; further checkouts raise."""
        with self._cond:
            self._closed = True
            idle, self._idle = list(self._idle), []
            self._cond.notify_all()
        for conn in idle:
            conn.close()


class DBConnector:
    """A named connection factory with simple execute helpers.

    ``statement_timings`` records (first-line-of-sql, seconds) per executed
    statement — the operation-level breakdown of §6.5 reads it.
    """

    profile_name = "postgres"

    def __init__(
        self,
        workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
        collect_exec_stats: bool = False,
        optimize: Optional[bool] = None,
        wal_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        statement_timeout_ms: Optional[float] = None,
        memory_limit: Optional[int | str] = None,
        query_memory_limit: Optional[int | str] = None,
        spill_dir: Optional[str] = None,
        memory_faults: Optional[object] = None,
    ) -> None:
        self._connection: Optional[dbapi.Connection] = None
        self.statement_timings: list[tuple[str, float]] = []
        #: times ``run`` re-attempted a script after a retryable SQLSTATE
        self.retries = 0
        #: morsel-driven parallelism (None: REPRO_SQL_WORKERS, then profile)
        self.workers = workers
        self.morsel_size = morsel_size
        self.collect_exec_stats = collect_exec_stats
        #: statistics-driven rewrite layer (None: whatever the profile says)
        self.optimize = optimize
        #: opt-in durability: WAL + checkpoints, recovered on connect
        self.wal_path = wal_path
        self.checkpoint_every = checkpoint_every
        #: cooperative statement timeout (None: REPRO_SQL_TIMEOUT_MS, then off)
        self.statement_timeout_ms = statement_timeout_ms
        #: memory governor budgets (None: REPRO_SQL_MEMORY_LIMIT, then off)
        self.memory_limit = memory_limit
        self.query_memory_limit = query_memory_limit
        self.spill_dir = spill_dir
        #: MemoryFaultInjector shared across reconnects (tests/chaos runs)
        self.memory_faults = memory_faults

    @property
    def name(self) -> str:
        return self.profile_name

    def _connect(self) -> dbapi.Connection:
        return dbapi.connect(
            self._profile(),
            workers=self.workers,
            morsel_size=self.morsel_size,
            collect_exec_stats=self.collect_exec_stats,
            optimize=self.optimize,
            wal_path=self.wal_path,
            checkpoint_every=self.checkpoint_every,
            statement_timeout_ms=self.statement_timeout_ms,
            memory_limit=self.memory_limit,
            query_memory_limit=self.query_memory_limit,
            spill_dir=self.spill_dir,
            memory_faults=self.memory_faults,
        )

    @property
    def connection(self) -> dbapi.Connection:
        if self._connection is None:
            self._connection = self._connect()
        return self._connection

    def _profile(self):
        return self.profile_name

    def reset(self) -> None:
        """Drop all data by reconnecting to a fresh database.

        The statement cache survives the reconnect, so re-running the
        same pipeline replays its DDL and then hits cached plans for
        every inspection query.  For a durable connector the WAL and
        checkpoint files are removed too — reset means "fresh database",
        not "recover the old one".
        """
        previous = self._connection
        if previous is not None:
            previous.close()
        if self.wal_path is not None:
            for path in (self.wal_path, self.wal_path + ".ckpt"):
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
        self._connection = self._connect()
        if previous is not None:
            self._connection.database.adopt_plan_cache(previous.database)
        self.statement_timings = []

    def run(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> Result:
        """Execute a script, returning the last statement's result.

        ``params`` binds positional placeholders; repeated statement texts
        hit the engine's plan cache, so re-running the same transpiled
        query skips lexing/parsing/planning entirely.

        When the script fails with a retryable SQLSTATE (40001 / 40P01 /
        57014) and the connector is *not* inside an explicit transaction,
        the session is rolled back and the whole script re-run under
        :func:`retry_backoff`; inside an explicit transaction the error
        propagates — only the caller can decide to retry its own
        transaction from ``BEGIN``.
        """
        connection = self.connection
        database = connection.database
        session = connection.session
        started = time.perf_counter()

        def attempt() -> list[Result]:
            return database.run_script(sql, params, session=session)

        def on_retry(attempt_index: int, exc: BaseException) -> None:
            self.retries += 1
            # a failed attempt may have left a half-open transaction
            # (e.g. the script's own BEGIN): clear it before re-running
            database.rollback(session=session)

        if session.in_transaction:
            results = attempt()
        else:
            results = retry_backoff(attempt, on_retry=on_retry)
        elapsed = time.perf_counter() - started
        head = sql.strip().split("\n", 1)[0][:120]
        self.statement_timings.append((head, elapsed))
        return results[-1] if results else Result()

    def pool(self, size: int = 4, timeout: Optional[float] = None) -> ConnectionPool:
        """A :class:`ConnectionPool` of concurrent sessions over this
        connector's database."""
        return ConnectionPool(self.connection.database, size, timeout)

    def query_rows(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> list[tuple]:
        cursor = self.connection.cursor()
        cursor.execute(sql, params)
        return cursor.fetchall()

    def query(self, sql: str) -> Result:
        return self.run(sql)

    @property
    def plan_cache_stats(self) -> dict[str, int]:
        """Hit/miss/size counters of the underlying engine's plan cache."""
        return self.connection.database.plan_cache.stats

    @property
    def exec_stats(self) -> dict[str, dict]:
        """Cumulative per-operator runtime counters (rows/calls/seconds),
        populated when the connector was built with ``collect_exec_stats``."""
        return self.connection.database.operator_counters

    def explain_analyze(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> str:
        """Run one SELECT and return its plan with actual row/time stats."""
        return self.connection.database.explain_analyze(sql, params)

    def analyze(self, table: Optional[str] = None) -> list[str]:
        """Collect planner statistics (``ANALYZE``) on one or all tables."""
        return self.connection.database.analyze(table)


class PostgresqlConnector(DBConnector):
    """The paper's disk-based system ("blue elephant")."""

    profile_name = "postgres"


class UmbraConnector(DBConnector):
    """The paper's beyond-main-memory system."""

    profile_name = "umbra"


class RemoteConnector(DBConnector):
    """Connector over the network client — the paper's psycopg2 role.

    Speaks the length-prefixed JSON protocol to a running
    :class:`~repro.sqldb.server.DatabaseServer` instead of embedding an
    engine, while keeping the whole :class:`DBConnector` surface
    (``run``/``reset``/``query_rows``/stats), so every harness,
    benchmark and :class:`~repro.core.sql_backend.SQLBackend` pipeline
    drops onto a served database unchanged.  Retry semantics match the
    in-process connector: scripts that fail with a retryable SQLSTATE
    outside an explicit transaction are rolled back and re-run under
    backoff; a dead connection is transparently re-dialled at the next
    checkout.
    """

    profile_name = "remote"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 5433,
        auth_token: Optional[str] = None,
        statement_timeout_ms: Optional[float] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        super().__init__(statement_timeout_ms=statement_timeout_ms)
        self.host = host
        self.port = port
        self.auth_token = auth_token
        self.connect_timeout = connect_timeout

    def _connect(self):
        from repro.sqldb import client

        return client.connect(
            self.host,
            self.port,
            auth_token=self.auth_token,
            connect_timeout=self.connect_timeout,
            statement_timeout_ms=self.statement_timeout_ms,
        )

    @property
    def connection(self):
        if self._connection is None or self._connection.closed:
            self._connection = self._connect()
        return self._connection

    def reset(self) -> None:
        """Drop all server-side data (the remote twin of the in-process
        reconnect-based reset; the server's plan cache survives, so a
        replayed pipeline still warm-hits)."""
        self.connection.reset()
        self.statement_timings = []

    def close(self) -> None:
        """Close the network connection and its server-side session
        (the next use re-dials)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def run(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> Result:
        """Execute a script server-side, returning the last result.

        Same retry contract as the in-process connector: a retryable
        SQLSTATE outside an explicit transaction rolls the session back
        and re-runs the whole script under backoff."""
        connection = self.connection
        started = time.perf_counter()

        def attempt() -> list[Result]:
            return connection.run_script(sql, params)

        def on_retry(attempt_index: int, exc: BaseException) -> None:
            self.retries += 1
            if not connection.closed:
                connection.rollback()

        if connection.in_transaction:
            results = attempt()
        else:
            results = retry_backoff(attempt, on_retry=on_retry)
        elapsed = time.perf_counter() - started
        head = sql.strip().split("\n", 1)[0][:120]
        self.statement_timings.append((head, elapsed))
        return results[-1] if results else Result()

    def pool(self, size: int = 4, timeout: Optional[float] = None):
        raise dbapi.NotSupportedError(
            "RemoteConnector has no client-side session pool; open "
            "additional RemoteConnectors (the server multiplexes "
            "sessions) or pool on the server side"
        )

    @property
    def plan_cache_stats(self) -> dict[str, int]:
        return self.connection.server_stats()["plan_cache"]

    @property
    def exec_stats(self) -> dict[str, dict]:
        return self.connection.server_stats()["operators"]

    def explain_analyze(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> str:
        return self.connection.explain_analyze(sql, params)

    def analyze(self, table: Optional[str] = None) -> list[str]:
        return self.connection.analyze(table)


class Topology:
    """Live view of a replicated server group: who is primary, who reads.

    Holds an endpoint list (``(host, port)`` pairs) and classifies each
    one by asking ``replica_status`` over a short-lived probe
    connection: role ``primary`` or ``standalone`` makes it the write
    target, ``replica`` joins the read set.  The classification is
    cached for ``probe_ttl_s`` and dropped eagerly on
    :meth:`invalidate` — which routing layers call whenever an endpoint
    errors or a write bounces off a read-only node, so a promotion is
    discovered on the very next attempt instead of a TTL later.

    If no endpoint currently claims the primary role (the failover
    window: old primary dead, promotion not yet issued),
    :meth:`primary_endpoint` raises
    :class:`~repro.errors.CannotConnectNow` (SQLSTATE 57P03) — which is
    retryable, so a surrounding :func:`retry_backoff` turns the window
    into bounded client-visible latency rather than an error.  When two
    endpoints both claim primary (a not-yet-fenced old primary beside a
    promoted replica), the first in endpoint order wins and the split is
    counted in ``stats["split_brain_probes"]``.
    """

    def __init__(
        self,
        endpoints: Sequence[tuple[str, int]],
        *,
        auth_token: Optional[str] = None,
        connect_timeout: float = 2.0,
        statement_timeout_ms: Optional[float] = None,
        probe_ttl_s: float = 1.0,
    ) -> None:
        if not endpoints:
            raise ValueError("at least one endpoint is required")
        self.endpoints: list[tuple[str, int]] = [
            (str(host), int(port)) for host, port in endpoints
        ]
        self.auth_token = auth_token
        self.connect_timeout = connect_timeout
        self.statement_timeout_ms = statement_timeout_ms
        self.probe_ttl_s = probe_ttl_s
        self._mutex = threading.RLock()
        self._primary: Optional[tuple[str, int]] = None
        self._replicas: list[tuple[str, int]] = []
        self._probed_at: Optional[float] = None
        self._rr = 0
        self.stats = {
            "probes": 0,
            "unreachable_probes": 0,
            "split_brain_probes": 0,
        }

    def connect(self, endpoint: tuple[str, int]):
        """Dial *endpoint* with this topology's credentials/timeouts."""
        from repro.sqldb import client

        return client.connect(
            endpoint[0],
            endpoint[1],
            auth_token=self.auth_token,
            connect_timeout=self.connect_timeout,
            statement_timeout_ms=self.statement_timeout_ms,
        )

    def probe(self) -> dict[tuple[str, int], dict]:
        """Ask every endpoint for its role; reclassify; return statuses."""
        statuses: dict[tuple[str, int], dict] = {}
        primary: Optional[tuple[str, int]] = None
        replicas: list[tuple[str, int]] = []
        n_primaries = 0
        for endpoint in self.endpoints:
            try:
                conn = self.connect(endpoint)
                try:
                    status = conn.replica_status()
                finally:
                    conn.close()
            except (SQLError, OSError):
                self.stats["unreachable_probes"] += 1
                continue
            statuses[endpoint] = status
            role = status.get("role")
            if role in ("primary", "standalone"):
                n_primaries += 1
                if primary is None:
                    primary = endpoint
            elif role == "replica":
                replicas.append(endpoint)
        with self._mutex:
            self.stats["probes"] += 1
            if n_primaries > 1:
                self.stats["split_brain_probes"] += 1
            self._primary = primary
            self._replicas = replicas
            self._probed_at = time.monotonic()
        return statuses

    def _refresh(self) -> None:
        with self._mutex:
            fresh = (
                self._probed_at is not None
                and time.monotonic() - self._probed_at < self.probe_ttl_s
            )
        if not fresh:
            self.probe()

    def invalidate(self) -> None:
        """Drop the cached classification; the next route re-probes."""
        with self._mutex:
            self._probed_at = None

    def primary_endpoint(self) -> tuple[str, int]:
        """The current write target; 57P03 while no endpoint holds it."""
        self._refresh()
        with self._mutex:
            if self._primary is None:
                raise CannotConnectNow(
                    "no primary among "
                    f"{self.endpoints} (failover in progress?)"
                )
            return self._primary

    def next_replica_endpoint(self) -> Optional[tuple[str, int]]:
        """Round-robin over the read set; ``None`` when it is empty."""
        self._refresh()
        with self._mutex:
            if not self._replicas:
                return None
            endpoint = self._replicas[self._rr % len(self._replicas)]
            self._rr += 1
            return endpoint

    def wait_for_replicas(
        self, timeout: float = 10.0, poll_s: float = 0.02
    ) -> None:
        """Block until every reachable replica has applied everything
        the primary has streamed (lag drained to zero).  Raises
        ``TimeoutError`` otherwise — used by differential tests and
        benchmarks that compare replica reads against the primary."""
        deadline = time.monotonic() + timeout
        while True:
            statuses = self.probe()
            watermark = 0
            for status in statuses.values():
                if status.get("role") in ("primary", "standalone"):
                    watermark = max(
                        watermark,
                        int(
                            status.get(
                                "last_commit_id",
                                status.get("commit_id", 0),
                            )
                        ),
                    )
            replicas = [
                s for s in statuses.values() if s.get("role") == "replica"
            ]
            if replicas and all(
                int(s.get("last_applied", -1)) >= watermark
                for s in replicas
            ):
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"replicas still behind watermark {watermark} "
                    f"after {timeout}s: {statuses}"
                )
            time.sleep(poll_s)


class MultiEndpointConnector(DBConnector):
    """Topology-aware remote connector: reads fan out, writes follow
    the primary, failover is absorbed by the retry loop.

    The multi-endpoint sibling of :class:`RemoteConnector`.  Scripts
    whose statements are all ``SELECT`` are routed round-robin across
    the replicas (falling back to the primary when none are up); any
    script containing a write — or any script inside an explicit
    transaction — runs on the primary.  Three failure shapes fold into
    the existing :func:`retry_backoff` machinery:

    * a dead endpoint (``InterfaceError``/``OSError`` mid-script) is
      re-raised as :class:`~repro.errors.CannotConnectNow` (57P03,
      retryable) after invalidating the topology cache;
    * a write bounced by a read-only node (25006 — the primary moved
      under us) invalidates the cache so the retry re-probes;
    * the failover window itself (no endpoint claims primary) surfaces
      as 57P03 from :meth:`Topology.primary_endpoint`.

    So client-visible failover downtime is bounded by the backoff
    schedule: the write that was in flight when the primary died keeps
    re-probing until the promoted node answers, then lands there.
    """

    profile_name = "remote-topology"

    def __init__(
        self,
        endpoints: Sequence[tuple[str, int]],
        auth_token: Optional[str] = None,
        statement_timeout_ms: Optional[float] = None,
        connect_timeout: float = 2.0,
        probe_ttl_s: float = 1.0,
        attempts: int = 8,
        base_delay: float = 0.01,
        max_delay: float = 0.5,
    ) -> None:
        super().__init__(statement_timeout_ms=statement_timeout_ms)
        self.topology = Topology(
            endpoints,
            auth_token=auth_token,
            connect_timeout=connect_timeout,
            statement_timeout_ms=statement_timeout_ms,
            probe_ttl_s=probe_ttl_s,
        )
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._conns: dict[tuple[str, int], Any] = {}
        self._read_only_memo: dict[str, bool] = {}
        self.reads_routed = {"replica": 0, "primary": 0}

    # -- routing -------------------------------------------------------------

    def _is_read_only_script(self, sql: str) -> bool:
        cached = self._read_only_memo.get(sql)
        if cached is not None:
            return cached
        try:
            statements = parse_script(sql)
        except SQLError:
            verdict = False  # let the primary produce the real error
        else:
            verdict = bool(statements) and all(
                isinstance(stmt, _ast.Select) for stmt in statements
            )
        if len(self._read_only_memo) > 512:
            self._read_only_memo.clear()
        self._read_only_memo[sql] = verdict
        return verdict

    def _lease(self, endpoint: tuple[str, int]):
        conn = self._conns.get(endpoint)
        if conn is None or conn.closed:
            conn = self.topology.connect(endpoint)
            self._conns[endpoint] = conn
        return conn

    def _drop(self, endpoint: tuple[str, int]) -> None:
        conn = self._conns.pop(endpoint, None)
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass

    @property
    def connection(self):
        """The primary's connection (DB-API surface for writes/txns)."""
        return self._lease(self.topology.primary_endpoint())

    # -- DBConnector surface -------------------------------------------------

    def run(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> Result:
        """Execute a script on the routed endpoint, with failover retry."""
        read_only = self._is_read_only_script(sql)
        started = time.perf_counter()

        def attempt() -> list[Result]:
            endpoint: Optional[tuple[str, int]] = None
            if read_only:
                endpoint = self.topology.next_replica_endpoint()
            target = "replica" if endpoint is not None else "primary"
            if endpoint is None:
                endpoint = self.topology.primary_endpoint()
            conn = self._lease(endpoint)
            if conn.in_transaction:
                # an open transaction pins the script to its connection
                # (no rerouting a txn mid-flight)
                return conn.run_script(sql, params)
            try:
                results = conn.run_script(sql, params)
            except (dbapi.InterfaceError, OSError) as exc:
                self._drop(endpoint)
                self.topology.invalidate()
                raise CannotConnectNow(
                    f"endpoint {endpoint} went away mid-script: {exc}"
                ) from exc
            if read_only:
                self.reads_routed[target] += 1
            return results

        def on_retry(attempt_index: int, exc: BaseException) -> None:
            self.retries += 1
            # 25006/57P03 mean the topology shifted; re-probe before
            # the next attempt instead of waiting out the TTL
            if getattr(exc, "sqlstate", None) in ("25006", "57P03"):
                self.topology.invalidate()
            for conn in self._conns.values():
                if not conn.closed and conn.in_transaction:
                    try:
                        conn.rollback()
                    except SQLError:
                        pass

        primary_conn = self._conns.get(
            self.topology._primary  # type: ignore[arg-type]
        )
        if primary_conn is not None and primary_conn.in_transaction:
            results = attempt()
        else:
            results = retry_backoff(
                attempt,
                attempts=self.attempts,
                base_delay=self.base_delay,
                max_delay=self.max_delay,
                on_retry=on_retry,
            )
        elapsed = time.perf_counter() - started
        head = sql.strip().split("\n", 1)[0][:120]
        self.statement_timings.append((head, elapsed))
        return results[-1] if results else Result()

    def reset(self) -> None:
        self.connection.reset()
        self.statement_timings = []

    def close(self) -> None:
        for endpoint in list(self._conns):
            self._drop(endpoint)

    def pool(self, size: int = 4, timeout: Optional[float] = None):
        """A :class:`RemoteConnectionPool` sharing this topology."""
        return RemoteConnectionPool(self.topology, size=size, timeout=timeout)

    @property
    def plan_cache_stats(self) -> dict[str, int]:
        return self.connection.server_stats()["plan_cache"]

    @property
    def exec_stats(self) -> dict[str, dict]:
        return self.connection.server_stats()["operators"]

    def explain_analyze(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> str:
        return self.connection.explain_analyze(sql, params)

    def analyze(self, table: Optional[str] = None) -> list[str]:
        return self.connection.analyze(table)


class RemoteConnectionPool:
    """Fixed-size pool of network connections routed by a topology.

    The remote twin of :class:`ConnectionPool`: hands out
    :class:`~repro.sqldb.client.RemoteConnection` objects dialled
    through a shared :class:`Topology`.  ``prefer="replica"`` pools
    read connections (round-robin across the replica set, primary as
    fallback); ``prefer="primary"`` pools write connections.  Checkout
    validates: a connection that died (server crash, idle reap, drain)
    is discarded and re-dialled through the *current* topology — so a
    pool built before a failover heals itself onto the promoted node
    as its dead connections cycle out.
    """

    _WAIT_SLICE = 0.05

    def __init__(
        self,
        topology: Topology,
        size: int = 4,
        timeout: Optional[float] = None,
        prefer: str = "replica",
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        if prefer not in ("replica", "primary"):
            raise ValueError("prefer must be 'replica' or 'primary'")
        self.topology = topology
        self.size = size
        self.prefer = prefer
        self._timeout = timeout
        self._cond = threading.Condition()
        self._idle: list[Any] = []
        self._n_created = 0
        self._closed = False
        self.stats = {"checkouts": 0, "dead_connections_replaced": 0}

    def _route(self) -> tuple[str, int]:
        if self.prefer == "replica":
            endpoint = self.topology.next_replica_endpoint()
            if endpoint is not None:
                return endpoint
        return self.topology.primary_endpoint()

    def acquire(self):
        deadline = (
            None if self._timeout is None
            else time.monotonic() + self._timeout
        )
        with self._cond:
            while True:
                if self._closed:
                    raise dbapi.InterfaceError("connection pool is closed")
                if self._idle:
                    conn = self._idle.pop()
                    break
                if self._n_created < self.size:
                    self._n_created += 1
                    conn = None
                    break  # dial outside the lock
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise dbapi.OperationalError(
                        "timed out waiting for a pooled connection"
                    )
                self._cond.wait(
                    self._WAIT_SLICE if remaining is None
                    else min(self._WAIT_SLICE, remaining)
                )
        try:
            if conn is not None and conn.closed:
                with self._cond:
                    self.stats["dead_connections_replaced"] += 1
                conn = None
            if conn is None:
                conn = self.topology.connect(self._route())
        except BaseException:
            with self._cond:
                self._n_created -= 1
                self._cond.notify()
            raise
        with self._cond:
            self.stats["checkouts"] += 1
        return conn

    def release(self, conn) -> None:
        with self._cond:
            if self._closed or conn.closed:
                if conn.closed:
                    self.stats["dead_connections_replaced"] += 1
                else:
                    conn.close()  # pool closed underneath the holder
                self._n_created -= 1
                self._cond.notify()
                return
            if conn.in_transaction:
                try:
                    conn.rollback()
                except SQLError:
                    conn.close()
                    self._n_created -= 1
                    self._cond.notify()
                    return
            self._idle.append(conn)
            self._cond.notify()

    @contextmanager
    def connection(self):
        conn = self.acquire()
        try:
            yield conn
        finally:
            self.release(conn)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            idle, self._idle = self._idle, []
            self._cond.notify_all()
        for conn in idle:
            try:
                conn.close()
            except Exception:
                pass


class ProfileConnector(DBConnector):
    """Connector over an arbitrary engine profile (for ablation studies)."""

    def __init__(
        self,
        profile,
        workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
        collect_exec_stats: bool = False,
        optimize: Optional[bool] = None,
        wal_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        statement_timeout_ms: Optional[float] = None,
        memory_limit: Optional[int | str] = None,
        query_memory_limit: Optional[int | str] = None,
        spill_dir: Optional[str] = None,
        memory_faults: Optional[object] = None,
    ) -> None:
        super().__init__(
            workers=workers,
            morsel_size=morsel_size,
            collect_exec_stats=collect_exec_stats,
            optimize=optimize,
            wal_path=wal_path,
            checkpoint_every=checkpoint_every,
            statement_timeout_ms=statement_timeout_ms,
            memory_limit=memory_limit,
            query_memory_limit=query_memory_limit,
            spill_dir=spill_dir,
            memory_faults=memory_faults,
        )
        self._custom_profile = profile
        self.profile_name = profile.name

    def _profile(self):
        return self._custom_profile
