"""DBMS connectors used by the SQL backend.

Both connectors wrap the in-process engine through its DB-API adapter, the
same call shape the paper measures through psycopg2.  ``PostgresqlConnector``
uses the materialising (disk-based) profile, ``UmbraConnector`` the
pipelined (beyond-main-memory) profile.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Sequence

from repro.sqldb import dbapi
from repro.sqldb.engine import Result

__all__ = [
    "DBConnector",
    "PostgresqlConnector",
    "ProfileConnector",
    "UmbraConnector",
]


class DBConnector:
    """A named connection factory with simple execute helpers.

    ``statement_timings`` records (first-line-of-sql, seconds) per executed
    statement — the operation-level breakdown of §6.5 reads it.
    """

    profile_name = "postgres"

    def __init__(
        self,
        workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
        collect_exec_stats: bool = False,
        optimize: Optional[bool] = None,
        wal_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        statement_timeout_ms: Optional[float] = None,
    ) -> None:
        self._connection: Optional[dbapi.Connection] = None
        self.statement_timings: list[tuple[str, float]] = []
        #: morsel-driven parallelism (None: REPRO_SQL_WORKERS, then profile)
        self.workers = workers
        self.morsel_size = morsel_size
        self.collect_exec_stats = collect_exec_stats
        #: statistics-driven rewrite layer (None: whatever the profile says)
        self.optimize = optimize
        #: opt-in durability: WAL + checkpoints, recovered on connect
        self.wal_path = wal_path
        self.checkpoint_every = checkpoint_every
        #: cooperative statement timeout (None: REPRO_SQL_TIMEOUT_MS, then off)
        self.statement_timeout_ms = statement_timeout_ms

    @property
    def name(self) -> str:
        return self.profile_name

    def _connect(self) -> dbapi.Connection:
        return dbapi.connect(
            self._profile(),
            workers=self.workers,
            morsel_size=self.morsel_size,
            collect_exec_stats=self.collect_exec_stats,
            optimize=self.optimize,
            wal_path=self.wal_path,
            checkpoint_every=self.checkpoint_every,
            statement_timeout_ms=self.statement_timeout_ms,
        )

    @property
    def connection(self) -> dbapi.Connection:
        if self._connection is None:
            self._connection = self._connect()
        return self._connection

    def _profile(self):
        return self.profile_name

    def reset(self) -> None:
        """Drop all data by reconnecting to a fresh database.

        The statement cache survives the reconnect, so re-running the
        same pipeline replays its DDL and then hits cached plans for
        every inspection query.  For a durable connector the WAL and
        checkpoint files are removed too — reset means "fresh database",
        not "recover the old one".
        """
        previous = self._connection
        if previous is not None:
            previous.close()
        if self.wal_path is not None:
            for path in (self.wal_path, self.wal_path + ".ckpt"):
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
        self._connection = self._connect()
        if previous is not None:
            self._connection.database.adopt_plan_cache(previous.database)
        self.statement_timings = []

    def run(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> Result:
        """Execute a script, returning the last statement's result.

        ``params`` binds positional placeholders; repeated statement texts
        hit the engine's plan cache, so re-running the same transpiled
        query skips lexing/parsing/planning entirely.
        """
        import time

        database = self.connection.database
        started = time.perf_counter()
        results = database.run_script(sql, params)
        elapsed = time.perf_counter() - started
        head = sql.strip().split("\n", 1)[0][:120]
        self.statement_timings.append((head, elapsed))
        return results[-1] if results else Result()

    def query_rows(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> list[tuple]:
        cursor = self.connection.cursor()
        cursor.execute(sql, params)
        return cursor.fetchall()

    def query(self, sql: str) -> Result:
        return self.run(sql)

    @property
    def plan_cache_stats(self) -> dict[str, int]:
        """Hit/miss/size counters of the underlying engine's plan cache."""
        return self.connection.database.plan_cache.stats

    @property
    def exec_stats(self) -> dict[str, dict]:
        """Cumulative per-operator runtime counters (rows/calls/seconds),
        populated when the connector was built with ``collect_exec_stats``."""
        return self.connection.database.operator_counters

    def explain_analyze(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> str:
        """Run one SELECT and return its plan with actual row/time stats."""
        return self.connection.database.explain_analyze(sql, params)

    def analyze(self, table: Optional[str] = None) -> list[str]:
        """Collect planner statistics (``ANALYZE``) on one or all tables."""
        return self.connection.database.analyze(table)


class PostgresqlConnector(DBConnector):
    """The paper's disk-based system ("blue elephant")."""

    profile_name = "postgres"


class UmbraConnector(DBConnector):
    """The paper's beyond-main-memory system."""

    profile_name = "umbra"


class ProfileConnector(DBConnector):
    """Connector over an arbitrary engine profile (for ablation studies)."""

    def __init__(
        self,
        profile,
        workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
        collect_exec_stats: bool = False,
        optimize: Optional[bool] = None,
        wal_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        statement_timeout_ms: Optional[float] = None,
    ) -> None:
        super().__init__(
            workers=workers,
            morsel_size=morsel_size,
            collect_exec_stats=collect_exec_stats,
            optimize=optimize,
            wal_path=wal_path,
            checkpoint_every=checkpoint_every,
            statement_timeout_ms=statement_timeout_ms,
        )
        self._custom_profile = profile
        self.profile_name = profile.name

    def _profile(self):
        return self._custom_profile
