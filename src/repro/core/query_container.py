"""SQLQueryContainer: ordered collection of generated table expressions.

As in the paper (§3.4/§4): every translated pipeline line becomes one table
expression, representable either as a view (created eagerly in the DBMS,
optionally materialised) or as a CTE (prefixed to every query).  The
container can always emit a complete executable query for any registered
expression — the property the paper highlights for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import TranslationError
from repro.core.connectors import DBConnector
from repro.sqldb.engine import Result

__all__ = ["SQLQueryContainer"]


@dataclass
class _Block:
    name: str
    body: str
    materialization_candidate: bool = False


@dataclass
class SQLQueryContainer:
    """Holds DDL plus the chain of table expressions for one pipeline."""

    connector: DBConnector
    mode: str = "CTE"  # 'CTE' | 'VIEW'
    materialize: bool = False
    #: emit "AS NOT MATERIALIZED" on every CTE (§6.1's ablation: removes
    #: PostgreSQL 12's materialisation barrier)
    cte_not_materialized: bool = False
    ddl: list[str] = field(default_factory=list)
    blocks: list[_Block] = field(default_factory=list)
    #: log of every inspection/extraction query issued (for to_sql output)
    issued_queries: list[str] = field(default_factory=list)
    #: memoised WITH prefixes keyed on (upto, block count).  Blocks are
    #: append-only, so a prefix is stable once built; byte-identical query
    #: text is what lets repeated inspection queries hit the engine's plan
    #: cache.
    _prefix_cache: dict[tuple, str] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in ("CTE", "VIEW"):
            raise TranslationError("mode must be 'CTE' or 'VIEW'")

    # -- registration -----------------------------------------------------

    def add_ddl(self, sql: str) -> None:
        """Execute a DDL/load statement immediately and remember it."""
        self.ddl.append(sql)
        self.connector.run(sql)

    def add_block(
        self, name: str, body: str, materialization_candidate: bool = False
    ) -> None:
        """Register one table expression (one translated pipeline line)."""
        if any(block.name == name for block in self.blocks):
            raise TranslationError(f"duplicate table expression {name!r}")
        block = _Block(name, body, materialization_candidate)
        self.blocks.append(block)
        if self.mode == "VIEW":
            materialized = self.materialize
            keyword = "MATERIALIZED VIEW" if materialized else "VIEW"
            self.connector.run(f"CREATE {keyword} {name} AS {body}")

    def has_block(self, name: str) -> bool:
        return any(block.name == name for block in self.blocks)

    # -- query assembly ------------------------------------------------------

    def _with_prefix(self, upto: str | None = None) -> str:
        key = (upto, len(self.blocks))
        cached = self._prefix_cache.get(key)
        if cached is not None:
            return cached
        keyword = "AS NOT MATERIALIZED" if self.cte_not_materialized else "AS"
        parts = []
        for block in self.blocks:
            parts.append(f"{block.name} {keyword} ({block.body})")
            if block.name == upto:
                break
        prefix = "WITH " + ",\n".join(parts) + "\n" if parts else ""
        self._prefix_cache[key] = prefix
        return prefix

    def wrap_query(self, select_sql: str, upto: str | None = None) -> str:
        """Make *select_sql* executable in the current mode.

        In CTE mode the full chain (optionally truncated after ``upto``) is
        prefixed as a WITH clause; in VIEW mode the views already exist.
        """
        if self.mode == "CTE":
            return self._with_prefix(upto) + select_sql
        return select_sql

    def run_query(
        self,
        select_sql: str,
        upto: str | None = None,
        params: Sequence[object] | None = None,
    ) -> Result:
        sql = self.wrap_query(select_sql, upto)
        self.issued_queries.append(sql)
        return self.connector.run(sql, params)

    # -- script output -----------------------------------------------------------

    def full_script(self, final_select: str | None = None) -> str:
        """The complete generated SQL (the paper's emit-without-running)."""
        parts = [statement.rstrip(";") + ";" for statement in self.ddl]
        if self.mode == "VIEW":
            keyword = "MATERIALIZED VIEW" if self.materialize else "VIEW"
            for block in self.blocks:
                parts.append(f"CREATE {keyword} {block.name} AS {block.body};")
            if final_select:
                parts.append(final_select.rstrip(";") + ";")
            elif self.blocks:
                parts.append(f"SELECT * FROM {self.blocks[-1].name};")
        else:
            select = final_select or (
                f"SELECT * FROM {self.blocks[-1].name}" if self.blocks else None
            )
            if select:
                parts.append(self.wrap_query(select).rstrip(";") + ";")
        return "\n".join(parts) + "\n"
