"""``repro.core`` — the paper's contribution: an SQL backend for pipeline
inspection.

Transpiles pandas/sklearn pipelines into SQL (one view/CTE per line, with
tuple tracking), executes them and their bias inspections inside a database
system, and falls back to Python past the extraction boundary.  Used
through :meth:`repro.inspection.PipelineInspector.execute_in_sql`.
"""

from repro.core.connectors import (
    DBConnector,
    PostgresqlConnector,
    ProfileConnector,
    UmbraConnector,
)
from repro.core.inspections_sql import ColumnOwner, SQLHistogramForColumns
from repro.core.model_export import accuracy_query, model_to_sql
from repro.core.naming import NameGenerator, quote_identifier
from repro.core.query_container import SQLQueryContainer
from repro.core.sql_backend import SQLBackend
from repro.core.table_info import SeriesExpr, TableInfo

__all__ = [
    "ColumnOwner",
    "DBConnector",
    "NameGenerator",
    "PostgresqlConnector",
    "ProfileConnector",
    "SQLBackend",
    "SQLHistogramForColumns",
    "SQLQueryContainer",
    "SeriesExpr",
    "TableInfo",
    "UmbraConnector",
    "accuracy_query",
    "model_to_sql",
    "quote_identifier",
]
