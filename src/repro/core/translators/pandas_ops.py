"""SQL translations of the supported pandas operations (§5.1).

Each function builds the *body* of one table expression (view/CTE) plus the
:class:`~repro.core.table_info.TableInfo` describing its output.  Tuple
tracking columns are always propagated; aggregations fold them into arrays
with ``array_agg`` (§5.1.5).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.naming import quote_identifier as q
from repro.core.table_info import SeriesExpr, TableInfo
from repro.errors import TranslationError

__all__ = [
    "AGGREGATE_LOOKUP",
    "sql_literal",
    "translate_dropna",
    "translate_groupby_agg",
    "translate_merge",
    "translate_projection",
    "translate_replace",
    "translate_rowwise_setitem",
    "translate_selection",
    "translate_setitem",
]

#: pandas aggregation name -> SQL aggregate (§5.1.5's lookup table).  Note
#: pandas ``std`` is the *sample* standard deviation, so the faithful
#: translation is ``stddev_samp`` (the paper's text says ``stddev_pop``,
#: which would diverge numerically from pandas).
AGGREGATE_LOOKUP = {
    "mean": "AVG",
    "sum": "SUM",
    "count": "COUNT",
    "min": "MIN",
    "max": "MAX",
    "std": "STDDEV_SAMP",
}


def sql_literal(value: Any) -> str:
    """Render a Python scalar as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    return "'" + str(value).replace("'", "''") + "'"


def _select_columns(info: TableInfo, qualifier: str = "") -> list[str]:
    prefix = f"{qualifier}." if qualifier else ""
    return [f"{prefix}{q(col)}" for col in info.columns]


def _select_ctids(info: TableInfo, qualifier: str = "") -> list[str]:
    """Tracking columns to propagate: ctids plus the §5.1.8 index column."""
    prefix = f"{qualifier}." if qualifier else ""
    out = [f"{prefix}{q(ctid)}" for ctid in info.ctids]
    if info.index_column is not None:
        out.append(f"{prefix}{q(info.index_column)}")
    return out


def translate_projection(
    info: TableInfo, columns: Sequence[str], new_name: str
) -> tuple[str, TableInfo]:
    """``data[['a', 'b']]`` — §5.1.3 projection."""
    missing = [c for c in columns if c not in info.columns]
    if missing:
        raise TranslationError(f"projection of unknown columns: {missing}")
    out = info.derive(new_name, list(columns))
    items = [q(c) for c in columns] + _select_ctids(info)
    body = f"SELECT {', '.join(items)}\nFROM {info.name}"
    return body, out


def translate_selection(
    info: TableInfo, condition: SeriesExpr, new_name: str
) -> tuple[str, TableInfo]:
    """``data[mask]`` — §5.1.3 selection."""
    if condition.parent.name != info.name:
        raise TranslationError(
            "selection condition was built over a different table expression"
        )
    out = info.derive(new_name)
    items = _select_columns(info) + _select_ctids(info)
    body = (
        f"SELECT {', '.join(items)}\nFROM {info.name}\nWHERE {condition.sql}"
    )
    return body, out


def translate_merge(
    left: TableInfo,
    right: TableInfo,
    on: Sequence[str],
    how: str,
    suffixes: tuple[str, str],
    new_name: str,
) -> tuple[str, TableInfo]:
    """``left.merge(right, on=[...])`` — §5.1.2.

    pandas joins null keys to each other; where a key column is nullable
    the join condition gains ``OR (l.k IS NULL AND r.k IS NULL)``.
    """
    join_kind = {
        "inner": "INNER JOIN",
        "left": "LEFT OUTER JOIN",
        "right": "RIGHT OUTER JOIN",
        "outer": "FULL OUTER JOIN",
    }.get(how)
    if join_kind is None:
        raise TranslationError(f"unsupported join type {how!r}")
    key_set = set(on)
    for key in on:
        if key not in left.columns or key not in right.columns:
            raise TranslationError(f"merge key {key!r} missing from a side")

    left_other = [c for c in left.columns if c not in key_set]
    right_other = [c for c in right.columns if c not in key_set]
    collisions = set(left_other) & set(right_other)

    items: list[str] = []
    out_columns: list[str] = []
    out_types: dict[str, str] = {}
    out_nullable: set[str] = set()

    def _add(source: str, col: str, out_name: str, origin: TableInfo) -> None:
        alias = f" AS {q(out_name)}" if out_name != col else ""
        items.append(f"{source}.{q(col)}{alias}")
        out_columns.append(out_name)
        out_types[out_name] = origin.type_of(col)
        if col in origin.nullable or (
            how in ("left", "outer") and origin is right
        ) or (how in ("right", "outer") and origin is left):
            out_nullable.add(out_name)

    for key in on:
        _add("tb1", key, key, left)
    for col in left_other:
        _add("tb1", col, col + suffixes[0] if col in collisions else col, left)
    for col in right_other:
        _add("tb2", col, col + suffixes[1] if col in collisions else col, right)

    # tuple identifiers from both inputs propagate (§5.1.2); on collision
    # (self join via an aggregated copy) the plain left identifier wins,
    # as in Listing 5's block_mlinid4_55
    out_ctids: dict[str, bool] = {}
    for ctid, aggregated in left.ctids.items():
        out_ctids[ctid] = aggregated
        items.append(f"tb1.{q(ctid)}")
    for ctid, aggregated in right.ctids.items():
        if ctid not in out_ctids:
            out_ctids[ctid] = aggregated
            items.append(f"tb2.{q(ctid)}")

    conditions = []
    for key in on:
        base = f"tb1.{q(key)} = tb2.{q(key)}"
        if key in left.nullable or key in right.nullable:
            base = (
                f"({base} OR (tb1.{q(key)} IS NULL AND tb2.{q(key)} IS NULL))"
            )
        conditions.append(base)
    body = (
        f"SELECT {', '.join(items)}\n"
        f"FROM {left.name} tb1 {join_kind} {right.name} tb2"
        f" ON {' AND '.join(conditions)}"
    )
    out = TableInfo(new_name, out_columns, out_types, out_ctids, out_nullable)
    return body, out


def translate_groupby_agg(
    info: TableInfo,
    keys: Sequence[str],
    aggregations: Sequence[tuple[str, str, str]],
    new_name: str,
) -> tuple[str, TableInfo]:
    """``groupby(keys).agg(out=(col, func))`` — §5.1.5.

    Tuple identifiers are folded into arrays with ``array_agg`` so later
    inspections can unnest them (Listing 3).
    """
    items: list[str] = []
    out_ctids: dict[str, bool] = {}
    for ctid in info.ctids:
        items.append(f"array_agg({q(ctid)}) AS {q(ctid)}")
        out_ctids[ctid] = True
    out_columns = list(keys)
    out_types = {k: info.type_of(k) for k in keys}
    for key in keys:
        items.append(q(key))
    for out_name, column, func in aggregations:
        sql_func = AGGREGATE_LOOKUP.get(func)
        if sql_func is None:
            raise TranslationError(
                f"aggregation {func!r} has no SQL translation"
            )
        items.append(f"{sql_func}({q(column)}) AS {q(out_name)}")
        out_columns.append(out_name)
        out_types[out_name] = "DOUBLE PRECISION"
    group_list = ", ".join(q(k) for k in keys)
    body = (
        f"SELECT {', '.join(items)}\nFROM {info.name}\nGROUP BY {group_list}"
    )
    out = TableInfo(
        new_name,
        out_columns,
        out_types,
        out_ctids,
        {c for c in info.nullable if c in keys},
    )
    return body, out


def translate_dropna(info: TableInfo, new_name: str) -> tuple[str, TableInfo]:
    """``data.dropna()`` — §5.1.6: conjunction of IS NOT NULL conditions."""
    out = info.derive(new_name)
    out.nullable = set()
    items = _select_columns(info) + _select_ctids(info)
    conditions = " AND ".join(f"{q(c)} IS NOT NULL" for c in info.columns)
    body = f"SELECT {', '.join(items)}\nFROM {info.name}\nWHERE {conditions}"
    return body, out


def translate_replace(
    info: TableInfo, to_replace: Any, value: Any, new_name: str
) -> tuple[str, TableInfo]:
    """``data.replace(a, b)`` — §5.1.7: anchored REGEXP_REPLACE.

    Whole-string replacement on every text column; other columns pass
    through untouched.
    """
    items = []
    for col in info.columns:
        if info.type_of(col) == "TEXT" and isinstance(to_replace, str):
            items.append(
                f"REGEXP_REPLACE({q(col)}, "
                f"{sql_literal('^' + to_replace + '$')}, "
                f"{sql_literal(value)}) AS {q(col)}"
            )
        else:
            items.append(q(col))
    items += _select_ctids(info)
    body = f"SELECT {', '.join(items)}\nFROM {info.name}"
    return body, info.derive(new_name)


def translate_setitem(
    info: TableInfo,
    column: str,
    expr: SeriesExpr,
    new_name: str,
) -> tuple[str, TableInfo]:
    """``data['x'] = <expr>`` — new or replaced column from an execution
    tree expression over the same table (the condensed Listing 11 form)."""
    if expr.parent.name != info.name:
        raise TranslationError(
            "assigned expression was built over a different table expression"
        )
    items = []
    for col in info.columns:
        if col != column:
            items.append(q(col))
    items.append(f"{expr.sql} AS {q(column)}")
    items += _select_ctids(info)
    out_columns = [c for c in info.columns if c != column] + [column]
    out = info.derive(new_name, out_columns)
    out.column_types[column] = expr.sql_type
    if expr.nullable:
        out.nullable.add(column)
    else:
        out.nullable.discard(column)
    body = f"SELECT {', '.join(items)}\nFROM {info.name}"
    return body, out


def translate_rowwise_setitem(
    info: TableInfo,
    column: str,
    expr: SeriesExpr,
    new_name: str,
) -> tuple[str, TableInfo]:
    """``tb1['new'] = tb2['col']`` — §5.1.8 row-wise assignment.

    pandas implicitly aligns two tables by row number; the SQL translation
    joins the two table expressions on their ``index_`` columns
    (Listing 14).  Both sources must carry an index column.
    """
    other = expr.parent
    if info.index_column is None or other.index_column is None:
        raise TranslationError(
            "row-wise operations across tables require index columns on "
            "both sides (§5.1.8); re-create the sources with row numbers"
        )
    # qualify the expression's column references against the other table
    expr_sql = expr.sql
    for col in other.columns:
        expr_sql = expr_sql.replace(q(col), f"tb2.{q(col)}")
    items = [f"tb1.{q(col)}" for col in info.columns if col != column]
    items.append(f"({expr_sql}) AS {q(column)}")
    items += _select_ctids(info, "tb1")
    out_columns = [c for c in info.columns if c != column] + [column]
    out = info.derive(new_name, out_columns)
    out.column_types[column] = expr.sql_type
    body = (
        f"SELECT {', '.join(items)}\n"
        f"FROM {info.name} tb1 INNER JOIN {other.name} tb2 "
        f"ON tb1.{q(info.index_column)} = tb2.{q(other.index_column)}"
    )
    return body, out
