"""Per-operation SQL translation rules (§5 of the paper)."""
