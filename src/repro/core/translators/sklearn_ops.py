"""SQL translations of the supported scikit-learn transformers (§5.2).

Every transformer splits into *fit* table expressions (computed once, the
prime materialisation candidates — Figure 6 of the paper) and a *transform*
expression applied to arbitrary parents, so the train/test consistency
property of scikit-learn carries over to SQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.naming import quote_identifier as q
from repro.core.table_info import TableInfo
from repro.core.translators.pandas_ops import sql_literal
from repro.errors import TranslationError

__all__ = [
    "FittedTransformer",
    "binarize_expression",
    "fit_imputer",
    "fit_kbins",
    "fit_onehot",
    "fit_scaler",
    "imputer_expression",
    "kbins_expression",
    "label_binarize_expression",
    "scaler_expression",
]


@dataclass
class FittedTransformer:
    """Fit-time state of one transformer: its fit views per input column."""

    kind: str
    #: column -> fit view name (imputer/scaler/kbins) or rank view (onehot)
    fit_views: dict[str, str] = field(default_factory=dict)
    #: extra per-transformer parameters needed at transform time
    params: dict[str, Any] = field(default_factory=dict)


# -- SimpleImputer (§5.2.1) ---------------------------------------------------


def fit_imputer(
    parent: TableInfo, column: str, strategy: str, fill_value: Any
) -> Optional[str]:
    """Body of the single-row fit view computing the substitute value.

    Returns None for ``constant`` (no fit view needed).  ``median`` has no
    translation (no percentile support); the backend falls back to Python.
    """
    col = q(column)
    if strategy == "most_frequent":
        return (
            f"SELECT value FROM (SELECT {col} AS value, count(*) AS cnt "
            f"FROM {parent.name} WHERE {col} IS NOT NULL GROUP BY {col}) t "
            f"ORDER BY cnt DESC, value LIMIT 1"
        )
    if strategy == "mean":
        return f"SELECT AVG({col}) AS value FROM {parent.name}"
    if strategy == "constant":
        return None
    raise TranslationError(
        f"SimpleImputer strategy {strategy!r} has no SQL translation"
    )


def imputer_expression(
    column: str, fit_view: Optional[str], strategy: str, fill_value: Any
) -> str:
    """``COALESCE(col, <substitute>)`` per Listing 15."""
    if strategy == "constant":
        substitute = sql_literal(fill_value)
    else:
        substitute = f"(SELECT value FROM {fit_view})"
    return f"COALESCE({q(column)}, {substitute})"


# -- OneHotEncoder (§5.2.2) ------------------------------------------------------


def fit_onehot(parent: TableInfo, column: str) -> str:
    """Rank view: distinct categories with their 1-based rank and total.

    The rank comes from a ``<=`` self join over the distinct categories
    (the paper suggests counting distinct entries or RANK; the self join
    needs no window functions and is tiny — one row per category).
    """
    col = q(column)
    distinct = (
        f"SELECT DISTINCT {col} AS value FROM {parent.name} "
        f"WHERE {col} IS NOT NULL"
    )
    return (
        f"SELECT a.value AS value, count(*) AS rank, "
        f"(SELECT count(DISTINCT {col}) FROM {parent.name}) AS total\n"
        f"FROM ({distinct}) a JOIN ({distinct}) b ON b.value <= a.value\n"
        f"GROUP BY a.value"
    )


def onehot_expression(fit_view: str, alias: str) -> str:
    """Binary-vector expression per Listing 16 (null/unknown -> all zeros)."""
    return (
        f"(CASE WHEN {alias}.value IS NULL "
        f"THEN array_fill(0, (SELECT count(*) FROM {fit_view})) "
        f"ELSE array_fill(0, {alias}.rank - 1) || 1 || "
        f"array_fill(0, {alias}.total - {alias}.rank) END)"
    )


# -- StandardScaler (§5.2.3) ---------------------------------------------------------


def fit_scaler(parent: TableInfo, column: str) -> str:
    col = q(column)
    return (
        f"SELECT AVG({col}) AS mean_value, STDDEV_POP({col}) AS std_value "
        f"FROM {parent.name}"
    )


def scaler_expression(column: str, fit_view: str) -> str:
    """``(x - mean) / stddev_pop`` per Listing 17; zero deviation maps to 1
    (scikit-learn's constant-column rule)."""
    return (
        f"(({q(column)}) - (SELECT mean_value FROM {fit_view})) / "
        f"COALESCE(NULLIF((SELECT std_value FROM {fit_view}), 0), 1)"
    )


# -- KBinsDiscretizer (§5.2.4) -----------------------------------------------------------


def fit_kbins(parent: TableInfo, column: str) -> str:
    col = q(column)
    return (
        f"SELECT MIN({col}) AS min_value, MAX({col}) AS max_value "
        f"FROM {parent.name}"
    )


def kbins_expression(column: str, fit_view: str, n_bins: int) -> str:
    """Uniform binning per Listing 18, clamped with LEAST/GREATEST."""
    step = (
        f"COALESCE(NULLIF(((SELECT max_value FROM {fit_view}) - "
        f"(SELECT min_value FROM {fit_view})) / {float(n_bins)!r}, 0), 1)"
    )
    raw = (
        f"FLOOR((({q(column)}) - (SELECT min_value FROM {fit_view})) / {step})"
    )
    return f"LEAST(GREATEST({raw}, 0), {n_bins - 1})"


# -- Binarizer / label_binarize (§5.2.5) ----------------------------------------------------


def binarize_expression(column_sql: str, threshold: float) -> str:
    """CASE translation (Listing 19; scikit-learn's strict ``>``)."""
    return (
        f"(CASE WHEN ({column_sql}) > {float(threshold)!r} THEN 1 ELSE 0 END)"
    )


def label_binarize_expression(column_sql: str, classes: list[Any]) -> str:
    """Binary label encoding: 1 for the positive (second) class."""
    if len(classes) != 2:
        raise TranslationError(
            "only binary label_binarize has a SQL translation"
        )
    return (
        f"(CASE WHEN ({column_sql}) = {sql_literal(classes[1])} "
        f"THEN 1 ELSE 0 END)"
    )
