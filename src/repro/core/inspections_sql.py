"""SQL-side implementations of the inspections (§3 of the paper).

``SQLHistogramForColumns`` generates and runs the ratio-measurement queries
of Listings 1-3/5: when the sensitive column survived into the current
table expression it is grouped directly; when only a tuple identifier
survived, a join back to the ctid-exposing view restores it; when the
identifier was aggregated, an ``unnest`` precedes the join.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.naming import quote_identifier as q
from repro.core.query_container import SQLQueryContainer
from repro.core.table_info import TableInfo

__all__ = ["ColumnOwner", "SQLHistogramForColumns", "first_rows_query"]


@dataclass(frozen=True)
class ColumnOwner:
    """Where a source column can be restored from: its ctid-exposing view."""

    ctid_column: str
    ctid_view: str


class SQLHistogramForColumns:
    """Generates/executes per-operator histogram queries for sensitive columns.

    Maintains the paper's dictionary from original pandas column names to
    the SQL table and tuple identifier that can restore them.
    """

    def __init__(
        self,
        container: SQLQueryContainer,
        column_owners: dict[str, ColumnOwner],
    ) -> None:
        self._container = container
        self._owners = column_owners

    def register_column(self, column: str, owner: ColumnOwner) -> None:
        self._owners.setdefault(column, owner)

    def histogram_query(self, info: TableInfo, column: str) -> Optional[str]:
        """The SELECT computing ``value -> count`` for one sensitive column."""
        if column in info.columns and not info.is_matrix:
            return (
                f"SELECT {q(column)}, count(*) FROM {info.name} "
                f"GROUP BY {q(column)}"
            )
        owner = self._owners.get(column)
        if owner is None or owner.ctid_column not in info.ctids:
            return None
        ctid = q(owner.ctid_column)
        if info.ctids[owner.ctid_column]:
            # aggregated identifier: unnest before restoring (Listing 3)
            current = (
                f"(SELECT unnest({ctid}) AS {ctid} FROM {info.name}) tb_curr"
            )
        else:
            current = f"{info.name} tb_curr"
        return (
            f"SELECT tb_orig.{q(column)}, count(*)\n"
            f"FROM {current} JOIN {owner.ctid_view} tb_orig "
            f"ON tb_curr.{ctid} = tb_orig.{ctid}\n"
            f"GROUP BY tb_orig.{q(column)}"
        )

    def compute(self, info: TableInfo, column: str) -> Optional[dict[Any, int]]:
        """Run the histogram query; None when the column is unrestorable."""
        query = self.histogram_query(info, column)
        if query is None:
            return None
        result = self._container.run_query(query, upto=info.name)
        return {row[0]: int(row[1]) for row in result.rows}


def first_rows_query(info: TableInfo, row_count: int) -> str:
    """Query behind MaterializeFirstOutputRows in SQL mode."""
    columns = [q(c) for c in info.columns] or ["*"]
    return f"SELECT {', '.join(columns)} FROM {info.name} LIMIT {row_count}"
