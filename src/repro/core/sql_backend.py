"""The SQL backend for the inspection framework (the paper's contribution).

Every patched pandas/sklearn call is translated to one SQL table expression
(one view or CTE per pipeline line, §4/§5); *dummy objects* — the same
operations executed on a small sample — keep flowing through the Python
pipeline so downstream calls can be intercepted and schemas deduced.  The
SQL mapping (``self.mapping``) associates each dummy with its
:class:`~repro.core.table_info.TableInfo` / :class:`SeriesExpr`.

Inspections are delegated to the database (``SQLHistogramForColumns``
et al.) and their results injected into the same structures the Python
backend fills, so checks evaluate identically.

At the extraction boundary (``train_test_split``, ``fit``, ``score``, or
any call without a translation) the real data is fetched from the database
and execution falls back to the original Python functions — the paper's
end-to-end mode.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Optional

import numpy as np

from repro.core.connectors import DBConnector
from repro.core.csv_schema import sniff_csv
from repro.core.inspections_sql import (
    ColumnOwner,
    SQLHistogramForColumns,
    first_rows_query,
)
from repro.core.naming import NameGenerator
from repro.core.naming import quote_identifier as q
from repro.core.query_container import SQLQueryContainer
from repro.core.table_info import SeriesExpr, TableInfo
from repro.core.translators import pandas_ops, sklearn_ops
from repro.errors import TranslationError
from repro.frame.dataframe import DataFrame
from repro.frame.series import Series
from repro.inspection.inspections import (
    HistogramForColumns,
    Inspection,
    MaterializeFirstOutputRows,
    RowLineage,
)
from repro.inspection.operators import DagNode, OperatorType
from repro.inspection.tracker import PythonBackend
from repro.learn.compose import ColumnTransformer
from repro.learn.impute import SimpleImputer
from repro.learn.preprocessing import (
    Binarizer,
    KBinsDiscretizer,
    OneHotEncoder,
    StandardScaler,
)

__all__ = ["SQLBackend"]

_BINOP_SQL = {
    "__gt__": ">",
    "__ge__": ">=",
    "__lt__": "<",
    "__le__": "<=",
    "__eq__": "=",
    "__ne__": "<>",
    "__add__": "+",
    "__sub__": "-",
    "__mul__": "*",
    "__truediv__": "/",
    "__and__": "AND",
    "__or__": "OR",
}
_REFLECTED = {
    "__radd__": "+",
    "__rsub__": "-",
    "__rmul__": "*",
    "__rtruediv__": "/",
}
_COMPARISONS = {">", ">=", "<", "<=", "=", "<>", "AND", "OR"}


class SQLBackend(PythonBackend):
    """Translate-and-offload backend; falls back to Python when needed."""

    def __init__(
        self,
        inspections: Iterable[Inspection],
        connector: DBConnector,
        mode: str = "CTE",
        materialize: bool = False,
        sample_rows: int = 10,
        cte_not_materialized: bool = False,
    ) -> None:
        super().__init__(inspections)
        connector.reset()
        self.connector = connector
        self.container = SQLQueryContainer(
            connector, mode, materialize, cte_not_materialized
        )
        self.names = NameGenerator()
        self.mapping: dict[int, TableInfo | SeriesExpr] = {}
        self.column_owners: dict[str, ColumnOwner] = {}
        self.sql_histograms = SQLHistogramForColumns(
            self.container, self.column_owners
        )
        self.sample_rows = sample_rows
        self.fitted: dict[int, sklearn_ops.FittedTransformer] = {}
        self._materialized: dict[int, Any] = {}
        self._did_extract = False
        self._final_select: Optional[str] = None

    # -- mapping helpers -----------------------------------------------------

    def _info(self, obj: Any) -> TableInfo | SeriesExpr | None:
        return self.mapping.get(id(obj))

    def _table_info(self, obj: Any) -> Optional[TableInfo]:
        info = self._info(obj)
        return info if isinstance(info, TableInfo) else None

    def _register(self, obj: Any, info: TableInfo | SeriesExpr) -> None:
        self.mapping[id(obj)] = info
        self._keepalive.append(obj)

    def generated_sql(self) -> str:
        """The complete generated SQL script (DDL + table expressions)."""
        return self.container.full_script(self._final_select)

    def plan_cache_stats(self) -> dict[str, int]:
        """Engine plan-cache counters for this backend's connection.

        Inspection queries are byte-identical across re-runs of the same
        pipeline, so the hit count shows how much parsing/planning the
        cache saved.
        """
        return self.connector.plan_cache_stats

    def exec_stats(self) -> dict[str, dict]:
        """Per-operator runtime counters (calls/rows/seconds/morsels) for
        this backend's connection, aggregated over every executed query.

        Populated when the connector was built with
        ``collect_exec_stats=True``; with morsel-driven parallelism active
        the morsel counts show which operators actually ran in parallel.
        """
        return self.connector.exec_stats

    # -- DAG recording with SQL-side inspections ------------------------------------

    def _record_sql(
        self,
        operator_type: OperatorType,
        description: str,
        inputs: list[Any],
        output: Any,
        info: TableInfo | SeriesExpr | None,
        lineno: Optional[int],
        columns: tuple[str, ...] = (),
    ) -> DagNode:
        node = DagNode(
            self._node_counter,
            operator_type,
            description,
            lineno=lineno,
            columns=columns,
        )
        self._node_counter += 1
        self.dag.add_node(node)
        for source in inputs:
            parent = self._object_nodes.get(id(source))
            if parent is not None:
                self.dag.add_edge(parent, node)
        if output is not None:
            self._object_nodes[id(output)] = node
            if info is not None:
                self._register(output, info)
        results: dict[Inspection, Any] = {}
        for inspection in self.inspections:
            results[inspection] = self._run_sql_inspection(inspection, info)
        self.inspection_results[node] = results
        return node

    def _run_sql_inspection(
        self, inspection: Inspection, info: TableInfo | SeriesExpr | None
    ) -> Any:
        if not isinstance(info, TableInfo):
            return {} if isinstance(inspection, HistogramForColumns) else None
        if isinstance(inspection, HistogramForColumns):
            histograms: dict[str, dict[Any, int]] = {}
            for column in inspection.sensitive_columns:
                counts = self.sql_histograms.compute(info, column)
                if counts is not None:
                    histograms[column] = counts
            return histograms
        if isinstance(inspection, MaterializeFirstOutputRows):
            query = first_rows_query(info, inspection.row_count)
            return self.container.run_query(query, upto=info.name).rows
        if isinstance(inspection, RowLineage):
            ctids = [q(c) for c in info.ctids]
            if not ctids:
                return []
            query = (
                f"SELECT {', '.join(ctids)} FROM {info.name} "
                f"LIMIT {inspection.row_count}"
            )
            result = self.container.run_query(query, upto=info.name)
            return [
                {"lineage": dict(zip(info.ctids, row))} for row in result.rows
            ]
        return None

    # -- extraction (materialisation boundary) ------------------------------------------

    def materialize_object(self, obj: Any) -> Any:
        """Fetch the real data behind a dummy object from the database."""
        info = self._info(obj)
        if info is None:
            return obj
        if id(obj) in self._materialized:
            return self._materialized[id(obj)]
        self._did_extract = True
        if isinstance(info, SeriesExpr):
            order = _order_by_ctids(info.parent)
            query = (
                f"SELECT {info.sql} AS value FROM {info.parent.name}{order}"
            )
            result = self.container.run_query(query, upto=info.parent.name)
            real: Any = Series([row[0] for row in result.rows], name=info.name)
        elif info.is_matrix:
            columns = ", ".join(q(c) for c in info.columns)
            query = f"SELECT {columns} FROM {info.name}{_order_by_ctids(info)}"
            result = self.container.run_query(query, upto=info.name)
            real = _rows_to_matrix(result.rows)
        else:
            columns = ", ".join(q(c) for c in info.columns)
            query = f"SELECT {columns} FROM {info.name}{_order_by_ctids(info)}"
            result = self.container.run_query(query, upto=info.name)
            data = {
                name: [row[j] for row in result.rows]
                for j, name in enumerate(info.columns)
            }
            real = DataFrame(data) if result.rows else DataFrame(
                {name: [] for name in info.columns}
            )
        self._materialized[id(obj)] = real
        self._keepalive.append(real)
        return real

    def finish(self) -> None:
        """Force execution of the final table expression when the pipeline
        never reached an extraction boundary (preprocessing-only runs)."""
        if not self._did_extract and self.container.blocks:
            last = self.container.blocks[-1].name
            self._final_select = f"SELECT * FROM {last}"
            self.container.run_query(self._final_select, upto=last)

    # -- pandas hooks --------------------------------------------------------------------

    def read_csv(self, original, path, na_values, lineno):
        op_id = self.names.next_op_id()
        base = os.path.splitext(os.path.basename(str(path)))[0]
        table = self.names.table_name(base, lineno, op_id)
        schema = sniff_csv(str(path), na_values, sample_limit=1000)
        column_defs = ", ".join(
            f"{q(c.name)} {c.sql_type}" for c in schema.columns
        )
        self.container.add_ddl(f"CREATE TABLE {table} ({column_defs})")
        copy_columns = ", ".join(q(c.name) for c in schema.columns)
        null_text = na_values if isinstance(na_values, str) else ""
        self.container.add_ddl(
            f"COPY {table} ({copy_columns}) FROM '{path}' WITH "
            f"(DELIMITER ',', NULL '{null_text}', FORMAT CSV, HEADER TRUE)"
        )
        ctid_view = self.names.ctid_column(table)
        self.container.add_block(
            ctid_view, f"SELECT *, ctid AS {q(ctid_view)} FROM {table}"
        )
        visible = [c.name for c in schema.columns if c.name != "index_"]
        info = TableInfo(
            ctid_view,
            visible,
            {c.name: c.sql_type for c in schema.columns},
            {ctid_view: False},
            {c.name for c in schema.columns if c.nullable},
            index_column="index_" if schema.has_index_column else None,
        )
        owner = ColumnOwner(ctid_view, ctid_view)
        for column in visible:
            self.sql_histograms.register_column(column, owner)
        with self.suppress():
            dummy = original(path, na_values=na_values, nrows=self.sample_rows)
        self._record_sql(
            OperatorType.DATA_SOURCE,
            f"read_csv({os.path.basename(str(path))})",
            [],
            dummy,
            info,
            lineno,
            tuple(visible),
        )
        return dummy

    def frame_getitem(self, original, frame, key, lineno):
        info = self._table_info(frame)
        if info is None:
            return super().frame_getitem(original, frame, key, lineno)
        with self.suppress():
            dummy = original(frame, key)
        if isinstance(key, str):
            expr = SeriesExpr(
                info,
                q(key),
                name=key,
                sql_type=info.type_of(key),
                nullable=key in info.nullable,
            )
            self._record_sql(
                OperatorType.PROJECTION,
                f"projection: [{key!r}]",
                [frame],
                dummy,
                expr,
                lineno,
                (key,),
            )
            return dummy
        if isinstance(key, (list, tuple)):
            name = self.names.block_name(self.names.next_op_id(), lineno)
            body, out = pandas_ops.translate_projection(info, list(key), name)
            self.container.add_block(name, body)
            self._record_sql(
                OperatorType.PROJECTION,
                f"projection: {list(key)}",
                [frame],
                dummy,
                out,
                lineno,
                tuple(key),
            )
            return dummy
        mask = self._info(key)
        if not isinstance(mask, SeriesExpr) or mask.parent.name != info.name:
            raise TranslationError(
                "selection mask must be an expression over the same table"
            )
        name = self.names.block_name(self.names.next_op_id(), lineno)
        body, out = pandas_ops.translate_selection(info, mask, name)
        self.container.add_block(name, body)
        self._record_sql(
            OperatorType.SELECTION,
            "selection",
            [frame, key],
            dummy,
            out,
            lineno,
            tuple(out.columns),
        )
        return dummy

    def frame_setitem(self, original, frame, key, value, lineno):
        info = self._table_info(frame)
        if info is None:
            return super().frame_setitem(original, frame, key, value, lineno)
        value_info = self._info(value)
        if isinstance(value_info, SeriesExpr):
            if value_info.parent.name != info.name:
                # §5.1.8 row-wise assignment across tables: join on index_
                with self.suppress():
                    original(frame, key, value)
                name = self.names.block_name(self.names.next_op_id(), lineno)
                body, out = pandas_ops.translate_rowwise_setitem(
                    info, key, value_info, name
                )
                self.container.add_block(name, body)
                self._record_sql(
                    OperatorType.PROJECTION_MODIFY,
                    f"row-wise assign column {key!r}",
                    [frame, value],
                    frame,
                    out,
                    lineno,
                    tuple(out.columns),
                )
                return None
            expr = value_info
        elif value is None or np.isscalar(value):
            expr = SeriesExpr(
                info,
                pandas_ops.sql_literal(value),
                sql_type="TEXT" if isinstance(value, str) else "DOUBLE PRECISION",
                nullable=value is None,
            )
        else:
            raise TranslationError(
                "only expression/scalar column assignments are translatable"
            )
        with self.suppress():
            original(frame, key, value)
        name = self.names.block_name(self.names.next_op_id(), lineno)
        body, out = pandas_ops.translate_setitem(info, key, expr, name)
        self.container.add_block(name, body)
        self._record_sql(
            OperatorType.PROJECTION_MODIFY,
            f"assign column {key!r}",
            [frame, value],
            frame,
            out,
            lineno,
            tuple(out.columns),
        )

    def frame_merge(self, original, left, right, on, how, suffixes, lineno):
        left_info = self._table_info(left)
        right_info = self._table_info(right)
        if left_info is None or right_info is None:
            return super().frame_merge(
                original, left, right, on, how, suffixes, lineno
            )
        keys = [on] if isinstance(on, str) else list(on or [])
        if not keys:
            raise TranslationError("cross merges have no SQL translation")
        name = self.names.block_name(self.names.next_op_id(), lineno)
        body, out = pandas_ops.translate_merge(
            left_info, right_info, keys, how, suffixes, name
        )
        self.container.add_block(name, body)
        with self.suppress():
            dummy = original(left, right, on=on, how=how, suffixes=suffixes)
        self._record_sql(
            OperatorType.JOIN,
            f"merge on {keys!r} ({how})",
            [left, right],
            dummy,
            out,
            lineno,
            tuple(out.columns),
        )
        return dummy

    def frame_dropna(self, original, frame, subset, lineno):
        info = self._table_info(frame)
        if info is None:
            return super().frame_dropna(original, frame, subset, lineno)
        if subset is not None:
            raise TranslationError("dropna(subset=...) is not translated")
        name = self.names.block_name(self.names.next_op_id(), lineno)
        body, out = pandas_ops.translate_dropna(info, name)
        self.container.add_block(name, body)
        with self.suppress():
            dummy = original(frame, subset=subset)
        self._record_sql(
            OperatorType.SELECTION,
            "dropna",
            [frame],
            dummy,
            out,
            lineno,
            tuple(out.columns),
        )
        return dummy

    def frame_replace(self, original, obj, to_replace, value, regex, lineno):
        info = self._info(obj)
        if info is None:
            return super().frame_replace(
                original, obj, to_replace, value, regex, lineno
            )
        with self.suppress():
            dummy = original(obj, to_replace, value, regex=regex)
        if isinstance(info, SeriesExpr):
            pattern = to_replace if regex else f"^{to_replace}$"
            expr = SeriesExpr(
                info.parent,
                f"REGEXP_REPLACE({info.sql}, "
                f"{pandas_ops.sql_literal(pattern)}, "
                f"{pandas_ops.sql_literal(value)})",
                name=info.name,
                sql_type="TEXT",
                nullable=info.nullable,
            )
            self._record_sql(
                OperatorType.PROJECTION_MODIFY,
                f"replace({to_replace!r})",
                [obj],
                dummy,
                expr,
                lineno,
            )
            return dummy
        name = self.names.block_name(self.names.next_op_id(), lineno)
        body, out = pandas_ops.translate_replace(info, to_replace, value, name)
        self.container.add_block(name, body)
        self._record_sql(
            OperatorType.PROJECTION_MODIFY,
            f"replace({to_replace!r})",
            [obj],
            dummy,
            out,
            lineno,
            tuple(out.columns),
        )
        return dummy

    def groupby_agg(self, original, groupby, spec, named, lineno):
        info = self._table_info(groupby.frame)
        if info is None:
            return super().groupby_agg(original, groupby, spec, named, lineno)
        aggregations: list[tuple[str, str, str]] = []
        if spec:
            for column, func in spec.items():
                aggregations.append((column, column, func))
        for out_name, (column, func) in named.items():
            aggregations.append((out_name, column, func))
        name = self.names.block_name(self.names.next_op_id(), lineno)
        body, out = pandas_ops.translate_groupby_agg(
            info, groupby.keys, aggregations, name
        )
        self.container.add_block(name, body)
        with self.suppress():
            dummy = original(groupby, spec, **named)
        self._record_sql(
            OperatorType.GROUP_BY_AGG,
            f"groupby {groupby.keys} agg",
            [groupby.frame],
            dummy,
            out,
            lineno,
            tuple(out.columns),
        )
        return dummy

    # -- series expression hooks (execution-tree condensation, §5.1.4) ------------

    def _operand_sql(self, operand: Any) -> tuple[str, Optional[TableInfo], bool]:
        """(sql, parent, nullable) for one binop operand."""
        info = self._info(operand)
        if isinstance(info, SeriesExpr):
            return info.sql, info.parent, info.nullable
        if isinstance(operand, Series) or isinstance(operand, DataFrame):
            raise TranslationError("operand has no SQL mapping")
        return pandas_ops.sql_literal(operand), None, operand is None

    def series_binop(self, original, op, left, right, lineno):
        sql_op = _BINOP_SQL.get(op) or _REFLECTED.get(op)
        mapped_left = isinstance(self._info(left), SeriesExpr)
        mapped_right = isinstance(self._info(right), SeriesExpr)
        if sql_op is None or not (mapped_left or mapped_right):
            return super().series_binop(original, op, left, right, lineno)
        try:
            left_sql, left_parent, left_null = self._operand_sql(left)
            right_sql, right_parent, right_null = self._operand_sql(right)
        except TranslationError:
            return super().series_binop(original, op, left, right, lineno)
        parent = left_parent or right_parent
        if (
            left_parent is not None
            and right_parent is not None
            and left_parent.name != right_parent.name
        ):
            raise TranslationError(
                "binary operation across different table expressions "
                "requires an index column (§5.1.8), which this pipeline "
                "did not request"
            )
        if op in _REFLECTED:
            left_sql, right_sql = right_sql, left_sql
        sql = f"({left_sql} {sql_op} {right_sql})"
        is_comparison = sql_op in _COMPARISONS
        expr = SeriesExpr(
            parent,
            sql,
            sql_type="BOOLEAN" if is_comparison else "DOUBLE PRECISION",
            nullable=left_null or right_null,
        )
        with self.suppress():
            dummy = original(left, right)
        self._record_sql(
            OperatorType.PROJECTION_MODIFY,
            f"series {op}",
            [left, right],
            dummy,
            expr,
            lineno,
        )
        return dummy

    def series_unop(self, original, op, operand, lineno):
        info = self._info(operand)
        if not isinstance(info, SeriesExpr) or op != "__invert__":
            return super().series_unop(original, op, operand, lineno)
        expr = SeriesExpr(
            info.parent,
            f"(NOT {info.sql})",
            sql_type="BOOLEAN",
            nullable=info.nullable,
        )
        with self.suppress():
            dummy = original(operand)
        self._record_sql(
            OperatorType.PROJECTION_MODIFY,
            f"series {op}",
            [operand],
            dummy,
            expr,
            lineno,
        )
        return dummy

    def series_isin(self, original, series, values, lineno):
        info = self._info(series)
        if not isinstance(info, SeriesExpr):
            return super().series_isin(original, series, values, lineno)
        rendered = ", ".join(pandas_ops.sql_literal(v) for v in values)
        expr = SeriesExpr(
            info.parent,
            f"({info.sql} IN ({rendered}))",
            sql_type="BOOLEAN",
            nullable=info.nullable,
        )
        with self.suppress():
            dummy = original(series, values)
        self._record_sql(
            OperatorType.PROJECTION_MODIFY,
            f"isin({list(values)!r})",
            [series],
            dummy,
            expr,
            lineno,
        )
        return dummy

    # -- sklearn hooks --------------------------------------------------------------------

    def label_binarize(self, original, y, classes, lineno):
        info = self._info(y)
        if not isinstance(info, SeriesExpr):
            return super().label_binarize(original, y, classes, lineno)
        expr_sql = sklearn_ops.label_binarize_expression(info.sql, list(classes))
        name = self.names.block_name(self.names.next_op_id(), lineno)
        ctids = ", ".join(q(c) for c in info.parent.ctids)
        suffix = f", {ctids}" if ctids else ""
        body = f"SELECT {expr_sql} AS \"label\"{suffix}\nFROM {info.parent.name}"
        out = TableInfo(
            name,
            ["label"],
            {"label": "INT"},
            dict(info.parent.ctids),
            set(),
            is_matrix=True,
        )
        self.container.add_block(name, body)
        with self.suppress():
            dummy = original(y, classes=classes)
        self._record_sql(
            OperatorType.PROJECTION_MODIFY,
            f"label_binarize(classes={list(classes)})",
            [y],
            dummy,
            out,
            lineno,
        )
        return dummy

    def transformer_fit_transform(self, original, transformer, X, y, lineno):
        if id(transformer) in self._inflight_transformers:
            return original(transformer, X, y)
        if isinstance(transformer, ColumnTransformer):
            if self._table_info(X) is not None:
                return self._column_transformer(transformer, X, lineno, fit=True)
            return super().transformer_fit_transform(
                original, transformer, X, y, lineno
            )
        info = self._table_info(X)
        if info is None:
            return super().transformer_fit_transform(
                original, transformer, X, y, lineno
            )
        return self._leaf_transform(
            transformer, X, info, lineno, lambda: original(transformer, X, y)
        )

    def transformer_transform(self, original, transformer, X, lineno):
        if id(transformer) in self._inflight_transformers:
            return original(transformer, X)
        if isinstance(transformer, ColumnTransformer):
            if self._table_info(X) is not None:
                return self._column_transformer(transformer, X, lineno, fit=False)
            return super().transformer_transform(original, transformer, X, lineno)
        info = self._table_info(X)
        if info is None:
            return super().transformer_transform(original, transformer, X, lineno)
        return self._leaf_transform(
            transformer, X, info, lineno, lambda: original(transformer, X)
        )

    def _fit_views_for(
        self, transformer: Any, parent: TableInfo, lineno: Optional[int]
    ) -> sklearn_ops.FittedTransformer:
        """Create (or reuse) the fit table expressions of one transformer.

        Fit views are the paper's prime materialisation candidates: they
        are computed once on the fitting data and referenced by every
        transform expression thereafter (Figure 6).
        """
        fitted = self.fitted.get(id(transformer))
        if fitted is not None:
            return fitted
        kind = type(transformer).__name__
        fitted = sklearn_ops.FittedTransformer(kind)
        for column in parent.columns:
            view_name = None
            if isinstance(transformer, SimpleImputer):
                body = sklearn_ops.fit_imputer(
                    parent, column, transformer.strategy, transformer.fill_value
                )
                if body is not None:
                    view_name = self.names.block_name(
                        self.names.next_op_id(), lineno
                    )
                    self.container.add_block(
                        view_name, body, materialization_candidate=True
                    )
            elif isinstance(transformer, OneHotEncoder):
                view_name = self.names.block_name(self.names.next_op_id(), lineno)
                self.container.add_block(
                    view_name,
                    sklearn_ops.fit_onehot(parent, column),
                    materialization_candidate=True,
                )
            elif isinstance(transformer, StandardScaler):
                view_name = self.names.block_name(self.names.next_op_id(), lineno)
                self.container.add_block(
                    view_name,
                    sklearn_ops.fit_scaler(parent, column),
                    materialization_candidate=True,
                )
            elif isinstance(transformer, KBinsDiscretizer):
                view_name = self.names.block_name(self.names.next_op_id(), lineno)
                self.container.add_block(
                    view_name,
                    sklearn_ops.fit_kbins(parent, column),
                    materialization_candidate=True,
                )
            if view_name is not None:
                fitted.fit_views[column] = view_name
        self.fitted[id(transformer)] = fitted
        return fitted

    def _leaf_transform(
        self,
        transformer: Any,
        X: Any,
        parent: TableInfo,
        lineno: Optional[int],
        run_original,
    ):
        """Translate one leaf transformer application to a table expression."""
        if isinstance(transformer, KBinsDiscretizer) and transformer.encode != "ordinal":
            raise TranslationError(
                "KBinsDiscretizer one-hot output has no SQL translation"
            )
        fitted = self._fit_views_for(transformer, parent, lineno)
        items: list[str] = []
        joins: list[str] = []
        out_types: dict[str, str] = {}
        for i, column in enumerate(parent.columns):
            if isinstance(transformer, SimpleImputer):
                expr = sklearn_ops.imputer_expression(
                    column,
                    fitted.fit_views.get(column),
                    transformer.strategy,
                    transformer.fill_value,
                )
                out_types[column] = parent.type_of(column)
            elif isinstance(transformer, OneHotEncoder):
                alias = f"fit{i}"
                view = fitted.fit_views[column]
                joins.append(
                    f"LEFT OUTER JOIN {view} {alias} "
                    f"ON tb.{q(column)} = {alias}.value"
                )
                expr = sklearn_ops.onehot_expression(view, alias)
                out_types[column] = "ARRAY"
            elif isinstance(transformer, StandardScaler):
                expr = sklearn_ops.scaler_expression(
                    column, fitted.fit_views[column]
                )
                out_types[column] = "DOUBLE PRECISION"
            elif isinstance(transformer, KBinsDiscretizer):
                expr = sklearn_ops.kbins_expression(
                    column, fitted.fit_views[column], transformer.n_bins
                )
                out_types[column] = "INT"
            elif isinstance(transformer, Binarizer):
                expr = sklearn_ops.binarize_expression(
                    f"tb.{q(column)}", transformer.threshold
                )
                out_types[column] = "INT"
            else:
                raise TranslationError(
                    f"{type(transformer).__name__} has no SQL translation"
                )
            items.append(f"{expr} AS {q(column)}")
        items += [f"tb.{q(c)}" for c in parent.ctids]
        name = self.names.block_name(self.names.next_op_id(), lineno)
        join_sql = ("\n" + "\n".join(joins)) if joins else ""
        body = f"SELECT {', '.join(items)}\nFROM {parent.name} tb{join_sql}"
        out = TableInfo(
            name,
            list(parent.columns),
            out_types,
            dict(parent.ctids),
            set(),
            is_matrix=True,
        )
        self.container.add_block(name, body)
        self._inflight_transformers.add(id(transformer))
        try:
            with self.suppress():
                dummy = run_original()
        finally:
            self._inflight_transformers.discard(id(transformer))
        self._record_sql(
            OperatorType.TRANSFORMER,
            f"{type(transformer).__name__} (SQL)",
            [X],
            dummy,
            out,
            lineno,
            tuple(parent.columns),
        )
        return dummy

    def _column_transformer(
        self, ct: ColumnTransformer, X: Any, lineno: Optional[int], fit: bool
    ):
        """Translate a ColumnTransformer application.

        Re-implements the fit-each/transform-each/hstack behaviour so each
        nested step passes through the patched functions; the final table
        expression joins the per-transformer blocks back together on the
        shared tuple identifiers.
        """
        self._inflight_transformers.add(id(ct))
        try:
            sub_results: list[tuple[str, TableInfo, Any]] = []
            dummies: list[np.ndarray] = []
            for name_t, transformer, columns in ct.transformers:
                X_slice = X[list(columns)]  # patched: records the projection
                if fit:
                    with self.suppress():
                        transformer.fit(X_slice)
                out = transformer.transform(X_slice)  # patched: builds blocks
                sub_info = self._table_info(out)
                if sub_info is None:
                    raise TranslationError(
                        f"sub-transformer {name_t!r} produced no SQL mapping"
                    )
                sub_results.append((name_t, sub_info, out))
                block = np.asarray(out, dtype=np.float64)
                if block.ndim == 1:
                    block = block.reshape(-1, 1)
                dummies.append(block)
            if fit:
                ct.fitted_ = True
        finally:
            self._inflight_transformers.discard(id(ct))

        base_name, base_info, _ = sub_results[0]
        shared_ctids = dict(base_info.ctids)
        for _, sub_info, _ in sub_results[1:]:
            if set(sub_info.ctids) != set(shared_ctids):
                raise TranslationError(
                    "column transformer branches track different identifiers"
                )
        if any(shared_ctids.values()):
            raise TranslationError(
                "cannot recombine branches over aggregated identifiers"
            )
        items: list[str] = []
        out_columns: list[str] = []
        out_types: dict[str, str] = {}
        for j, (name_t, sub_info, _) in enumerate(sub_results):
            alias = f"tb{j}"
            for column in sub_info.columns:
                out_name = f"{name_t}_{column}"
                items.append(f"{alias}.{q(column)} AS {q(out_name)}")
                out_columns.append(out_name)
                out_types[out_name] = sub_info.type_of(column)
        items += [f"tb0.{q(c)}" for c in shared_ctids]
        from_sql = f"{sub_results[0][1].name} tb0"
        for j, (_, sub_info, _) in enumerate(sub_results[1:], start=1):
            conditions = " AND ".join(
                f"tb0.{q(c)} = tb{j}.{q(c)}" for c in shared_ctids
            )
            from_sql += f"\nINNER JOIN {sub_info.name} tb{j} ON {conditions}"
        name = self.names.block_name(self.names.next_op_id(), lineno)
        body = f"SELECT {', '.join(items)}\nFROM {from_sql}"
        out = TableInfo(
            name, out_columns, out_types, shared_ctids, set(), is_matrix=True
        )
        self.container.add_block(name, body)
        result_dummy = (
            np.hstack(dummies) if dummies else np.zeros((0, 0))
        )
        self._record_sql(
            OperatorType.CONCATENATION,
            "ColumnTransformer (SQL)",
            [X] + [sub for _, _, sub in sub_results],
            result_dummy,
            out,
            lineno,
            tuple(out_columns),
        )
        return result_dummy

    # -- extraction boundaries ------------------------------------------------------------

    def train_test_split(self, original, arrays, kwargs, lineno):
        real = tuple(self.materialize_object(a) for a in arrays)
        return super().train_test_split(original, real, kwargs, lineno)

    def estimator_fit(self, original, estimator, X, y, lineno):
        return super().estimator_fit(
            original,
            estimator,
            self.materialize_object(X),
            self.materialize_object(y),
            lineno,
        )

    def estimator_score(self, original, estimator, X, y, lineno):
        return super().estimator_score(
            original,
            estimator,
            self.materialize_object(X),
            self.materialize_object(y),
            lineno,
        )


def _order_by_ctids(info: TableInfo) -> str:
    """ORDER BY clause aligning extracted rows across table expressions.

    SQL gives no row-order guarantee; ordering by the (plain) tuple
    identifiers makes every extraction of the same provenance rows line up
    — e.g. a feature matrix and its label column.
    """
    plain = [c for c, aggregated in info.ctids.items() if not aggregated]
    if not plain:
        return ""
    return " ORDER BY " + ", ".join(q(c) for c in plain)


def _rows_to_matrix(rows: list[tuple]) -> np.ndarray:
    """Flatten fetched rows (scalars and arrays) into a float matrix."""
    if not rows:
        return np.zeros((0, 0))
    flat_rows: list[list[float]] = []
    for row in rows:
        flat: list[float] = []
        for cell in row:
            if isinstance(cell, list):
                flat.extend(float(v) for v in cell)
            elif cell is None:
                flat.append(float("nan"))
            elif isinstance(cell, bool):
                flat.append(1.0 if cell else 0.0)
            else:
                flat.append(float(cell))
        flat_rows.append(flat)
    return np.asarray(flat_rows, dtype=np.float64)
