"""``repro.pipelines`` — the four evaluation pipelines of Table 1.

Each function renders runnable pipeline *source code* (a string) against a
data directory, because the inspection framework — like mlinspect —
consumes pipelines as unmodified Python source.  The ``upto`` parameter
truncates a pipeline at the stage boundaries the paper benchmarks
separately:

* ``"pandas"`` — only the pandas operations (§6.1);
* ``"sklearn"`` — plus the scikit-learn preprocessing (§6.2/§6.3);
* ``"full"``  — plus model training and scoring (§6.4).
"""

from repro.pipelines.sources import (
    PIPELINE_BUILDERS,
    adult_complex_source,
    adult_simple_source,
    compas_source,
    healthcare_source,
    taxi_source,
)

__all__ = [
    "PIPELINE_BUILDERS",
    "adult_complex_source",
    "adult_simple_source",
    "compas_source",
    "healthcare_source",
    "taxi_source",
]
