"""Source-code builders for the evaluation pipelines (Table 1).

The healthcare pipeline follows Listing 4 of the paper line by line; the
compas and adult pipelines follow the mlinspect example pipelines the paper
benchmarks.  Deviations forced by the offline substrate are marked with
``# substitution:`` comments (e.g. the Keras network becomes
``MLPClassifier``, the word2vec embedding of ``last_name`` is dropped).
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = [
    "PIPELINE_BUILDERS",
    "adult_complex_source",
    "adult_simple_source",
    "compas_source",
    "healthcare_source",
    "taxi_source",
]

_STAGES = ("pandas", "sklearn", "full")


def _check_stage(upto: str) -> None:
    if upto not in _STAGES:
        raise ReproError(f"upto must be one of {_STAGES}, got {upto!r}")


def healthcare_source(data_dir: str, upto: str = "full") -> str:
    """The healthcare pipeline (Listing 4 + training)."""
    _check_stage(upto)
    pandas_part = f'''\
import repro.frame as pd

COUNTIES_OF_INTEREST = ['county2', 'county3']

patients = pd.read_csv({data_dir + "/patients.csv"!r}, na_values='?')
histories = pd.read_csv({data_dir + "/histories.csv"!r}, na_values='?')

data = patients.merge(histories, on=['ssn'])
complications = data.groupby('age_group').agg(
    mean_complications=('complications', 'mean'))
data = data.merge(complications, on=['age_group'])
data['label'] = (
    data['complications'] > 1.2 * data['mean_complications'])
data = data[['smoker', 'last_name', 'county',
             'num_children', 'race', 'income', 'label']]
data = data[data['county'].isin(COUNTIES_OF_INTEREST)]
'''
    if upto == "pandas":
        return pandas_part
    sklearn_part = '''
from repro.learn import (ColumnTransformer, OneHotEncoder, Pipeline,
                         SimpleImputer, StandardScaler)

impute_and_one_hot = Pipeline([
    ('impute', SimpleImputer(strategy='most_frequent')),
    ('encode', OneHotEncoder(handle_unknown='ignore'))])
# substitution: the original featurisation also embeds 'last_name' with
# word2vec; no embedding substrate exists offline, so that column is
# projected away before featurisation instead.
featurisation = ColumnTransformer(transformers=[
    ('impute_and_one_hot', impute_and_one_hot, ['smoker', 'county', 'race']),
    ('numeric', StandardScaler(), ['num_children', 'income']),
])
features = featurisation.fit_transform(data)
labels = data['label']
'''
    if upto == "sklearn":
        return pandas_part + sklearn_part
    training_part = '''
from repro.learn import MLPClassifier, train_test_split

X_train, X_test, y_train, y_test = train_test_split(
    features, labels, test_size=0.2, random_state=42)
# substitution: Keras sequential network -> numpy MLPClassifier
neural_net = MLPClassifier(hidden_size=16, epochs=60, random_state=42)
neural_net.fit(X_train, y_train)
score = neural_net.score(X_test, y_test)
'''
    return pandas_part + sklearn_part + training_part


def compas_source(data_dir: str, upto: str = "full") -> str:
    """The compas pipeline (train on compas_train, score on compas_test)."""
    _check_stage(upto)
    pandas_part = f'''\
import repro.frame as pd

train = pd.read_csv({data_dir + "/compas_train.csv"!r}, na_values='?')

train = train[['sex', 'dob', 'age', 'c_charge_degree', 'race', 'score_text',
               'priors_count', 'days_b_screening_arrest', 'decile_score',
               'is_recid', 'two_year_recid', 'c_jail_in', 'c_jail_out']]
train = train[(train['days_b_screening_arrest'] <= 30)
              & (train['days_b_screening_arrest'] >= -30)]
train = train[train['is_recid'] != -1]
train = train[train['c_charge_degree'] != 'O']
train = train[train['score_text'] != 'N/A']
train = train.replace('Medium', 'Low')
'''
    if upto == "pandas":
        return pandas_part
    sklearn_part = '''
from repro.learn import (ColumnTransformer, KBinsDiscretizer, OneHotEncoder,
                         Pipeline, SimpleImputer, label_binarize)

train_labels = label_binarize(train['score_text'], classes=['High', 'Low'])
impute1_and_onehot = Pipeline([
    ('imputer1', SimpleImputer(strategy='most_frequent')),
    ('onehot', OneHotEncoder(handle_unknown='ignore'))])
impute2_and_bin = Pipeline([
    ('imputer2', SimpleImputer(strategy='mean')),
    ('discretizer', KBinsDiscretizer(n_bins=4, encode='ordinal',
                                     strategy='uniform'))])
featurizer = ColumnTransformer(transformers=[
    ('impute1_and_onehot', impute1_and_onehot, ['is_recid']),
    ('impute2_and_bin', impute2_and_bin, ['age']),
])
train_features = featurizer.fit_transform(train)
'''
    if upto == "sklearn":
        return pandas_part + sklearn_part
    training_part = f'''
from repro.learn import LogisticRegression

model = LogisticRegression()
model.fit(train_features, train_labels)

test = pd.read_csv({data_dir + "/compas_test.csv"!r}, na_values='?')
test = test[test['score_text'] != 'N/A']
test = test.replace('Medium', 'Low')
test_labels = label_binarize(test['score_text'], classes=['High', 'Low'])
test_features = featurizer.transform(test)
score = model.score(test_features, test_labels)
'''
    return pandas_part + sklearn_part + training_part


def adult_simple_source(data_dir: str, upto: str = "full") -> str:
    """The adult-simple pipeline (Table 1: read, dropna, binarize, scale)."""
    _check_stage(upto)
    pandas_part = f'''\
import repro.frame as pd

raw_data = pd.read_csv({data_dir + "/adult_train.csv"!r}, na_values='?')
data = raw_data.dropna()
'''
    if upto == "pandas":
        return pandas_part
    sklearn_part = '''
from repro.learn import StandardScaler, label_binarize

labels = label_binarize(data['income-per-year'], classes=['<=50K', '>50K'])
feature_data = data[['age', 'education-num', 'hours-per-week']]
features = StandardScaler().fit_transform(feature_data)
'''
    if upto == "sklearn":
        return pandas_part + sklearn_part
    training_part = '''
from repro.learn import DecisionTreeClassifier, train_test_split

X_train, X_test, y_train, y_test = train_test_split(
    features, labels, test_size=0.25, random_state=42)
model = DecisionTreeClassifier(max_depth=8)
model.fit(X_train, y_train)
score = model.score(X_test, y_test)
'''
    return pandas_part + sklearn_part + training_part


def adult_complex_source(data_dir: str, upto: str = "full") -> str:
    """The adult-complex pipeline (separate train/test files, MLP)."""
    _check_stage(upto)
    pandas_part = f'''\
import repro.frame as pd

train = pd.read_csv({data_dir + "/adult_train.csv"!r}, na_values='?')
'''
    if upto == "pandas":
        return pandas_part
    sklearn_part = '''
from repro.learn import (ColumnTransformer, OneHotEncoder, Pipeline,
                         SimpleImputer, StandardScaler, label_binarize)

train_labels = label_binarize(
    train['income-per-year'], classes=['<=50K', '>50K'])
nested_categorical = Pipeline([
    ('impute', SimpleImputer(strategy='most_frequent')),
    ('encode', OneHotEncoder(handle_unknown='ignore'))])
featurisation = ColumnTransformer(transformers=[
    ('categorical', nested_categorical,
     ['workclass', 'education', 'occupation']),
    ('numeric', StandardScaler(), ['age', 'hours-per-week']),
])
train_features = featurisation.fit_transform(train)
'''
    if upto == "sklearn":
        return pandas_part + sklearn_part
    training_part = f'''
from repro.learn import MLPClassifier

# substitution: Keras sequential network -> numpy MLPClassifier
model = MLPClassifier(hidden_size=16, epochs=15, random_state=42)
model.fit(train_features, train_labels)

test = pd.read_csv({data_dir + "/adult_test.csv"!r}, na_values='?')
test_labels = label_binarize(
    test['income-per-year'], classes=['<=50K', '>50K'])
test_features = featurisation.transform(test)
score = model.score(test_features, test_labels)
'''
    return pandas_part + sklearn_part + training_part


def taxi_source(data_dir: str, upto: str = "pandas") -> str:
    """The §6.6 taxi micro-pipeline: a single selection."""
    return f'''\
import repro.frame as pd

data = pd.read_csv({data_dir + "/taxi.csv"!r})
data = data[data['passenger_count'] > 1]
'''


PIPELINE_BUILDERS = {
    "healthcare": healthcare_source,
    "compas": compas_source,
    "adult_simple": adult_simple_source,
    "adult_complex": adult_complex_source,
    "taxi": taxi_source,
}
