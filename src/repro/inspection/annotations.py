"""Row-lineage annotations for tuple tracking in the Python path.

Each tracked dataframe/series/matrix carries, per *source table*, the
original row id of every current row — the Python counterpart of the
paper's propagated ``<view>_ctid`` columns.  After aggregations a row maps
to *many* source rows, mirrored by the SQL ``array_agg(ctid)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

__all__ = ["Lineage"]

_MISSING = -1


@dataclass
class Lineage:
    """Per-source row provenance for one tracked object.

    ``simple[source]`` is an int64 array: row position → original row id
    (-1 when the row has no counterpart, e.g. outer-join padding).
    ``grouped[source]`` is an object array of int lists after aggregation.
    """

    n_rows: int
    simple: dict[str, np.ndarray] = field(default_factory=dict)
    grouped: dict[str, np.ndarray] = field(default_factory=dict)

    @classmethod
    def source(cls, name: str, n_rows: int) -> "Lineage":
        return cls(n_rows, {name: np.arange(n_rows, dtype=np.int64)})

    @property
    def sources(self) -> list[str]:
        return list(self.simple) + list(self.grouped)

    def gather(self, positions: np.ndarray) -> "Lineage":
        """Lineage after a row subset / reorder / duplication.

        Positions of -1 (outer-join padding) map to missing lineage.
        """
        out = Lineage(len(positions))
        hole = positions < 0
        safe = np.where(hole, 0, positions)
        for name, ids in self.simple.items():
            gathered = ids[safe].copy()
            gathered[hole] = _MISSING
            out.simple[name] = gathered
        for name, groups in self.grouped.items():
            gathered_groups = groups[safe].copy()
            gathered_groups[hole] = None
            out.grouped[name] = gathered_groups
        return out

    def merged_with(self, other: "Lineage", n_rows: int) -> "Lineage":
        """Combine lineages of two join sides (already gathered).

        On source-name collision (self join) the left side wins — the SQL
        backend resolves the same situation through its execution tree.
        """
        out = Lineage(n_rows)
        out.simple.update(other.simple)
        out.simple.update(self.simple)
        out.grouped.update(other.grouped)
        out.grouped.update(self.grouped)
        return out

    def group(self, positions_per_group: Iterable[Iterable[int]]) -> "Lineage":
        """Lineage after aggregation: each output row covers many rows."""
        groups = [np.asarray(list(p), dtype=np.int64) for p in positions_per_group]
        out = Lineage(len(groups))
        for name, ids in self.simple.items():
            collected = np.empty(len(groups), dtype=object)
            for g, members in enumerate(groups):
                collected[g] = [int(ids[m]) for m in members if ids[m] != _MISSING]
            out.grouped[name] = collected
        for name, nested in self.grouped.items():
            collected = np.empty(len(groups), dtype=object)
            for g, members in enumerate(groups):
                flat: list[int] = []
                for m in members:
                    if nested[m] is not None:
                        flat.extend(nested[m])
                collected[g] = flat
            out.grouped[name] = collected
        return out

    def row_ids_for(self, source: str, position: int) -> list[int]:
        """Original row ids of *source* contributing to one output row."""
        if source in self.simple:
            row_id = int(self.simple[source][position])
            return [] if row_id == _MISSING else [row_id]
        if source in self.grouped:
            group = self.grouped[source][position]
            return list(group) if group is not None else []
        return []

    def copy(self) -> "Lineage":
        out = Lineage(self.n_rows)
        out.simple = {k: v.copy() for k, v in self.simple.items()}
        out.grouped = {k: v.copy() for k, v in self.grouped.items()}
        return out
