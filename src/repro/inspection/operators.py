"""Dataflow DAG node model (mlinspect's operator abstraction)."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional

__all__ = ["OperatorType", "DagNode"]


class OperatorType(Enum):
    """Kind of pipeline operation a DAG node represents."""

    DATA_SOURCE = auto()  # read_csv
    SELECTION = auto()  # boolean-mask getitem, dropna, isin filters
    PROJECTION = auto()  # column getitem
    PROJECTION_MODIFY = auto()  # setitem / replace / binary ops
    JOIN = auto()  # merge
    GROUP_BY_AGG = auto()  # groupby().agg()
    TRAIN_TEST_SPLIT = auto()
    TRANSFORMER = auto()  # sklearn-style fit_transform / transform
    CONCATENATION = auto()  # ColumnTransformer output stacking
    ESTIMATOR = auto()  # model fit
    SCORE = auto()  # model score

    @property
    def can_change_row_counts(self) -> bool:
        """Operators that can add/remove rows and hence introduce bias."""
        return self in (
            OperatorType.SELECTION,
            OperatorType.JOIN,
            OperatorType.GROUP_BY_AGG,
            OperatorType.TRAIN_TEST_SPLIT,
        )


@dataclass(frozen=True)
class DagNode:
    """One node of the extracted dataflow DAG.

    Equality/hash by ``node_id`` so nodes can key inspection-result maps.
    """

    node_id: int
    operator_type: OperatorType
    description: str
    source_code: str = ""
    lineno: Optional[int] = None
    columns: tuple[str, ...] = field(default=())

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DagNode) and other.node_id == self.node_id

    def __repr__(self) -> str:
        line = f", line {self.lineno}" if self.lineno else ""
        return f"DagNode({self.node_id}, {self.operator_type.name}{line}: {self.description})"
