"""Checks: pipeline-level verdicts computed from inspection results.

``NoBiasIntroducedFor`` implements the paper's central check: for every
operator that can change row counts, compare the distribution frequency
(ratio) of each sensitive column before and after; flag the operator when
any group's ratio moved by at least the threshold (the paper's example uses
25%).  ``NoIllegalFeatures`` flags blacklisted feature names entering
transformers/estimators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.inspection.inspections import HistogramForColumns, Inspection
from repro.inspection.operators import DagNode, OperatorType

__all__ = [
    "BiasDistributionChange",
    "Check",
    "CheckResult",
    "CheckStatus",
    "DEFAULT_ILLEGAL_FEATURES",
    "NoBiasIntroducedFor",
    "NoIllegalFeatures",
]


class CheckStatus(Enum):
    SUCCESS = "success"
    FAILURE = "failure"


@dataclass
class CheckResult:
    check: "Check"
    status: CheckStatus
    description: str = ""
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class BiasDistributionChange:
    """Ratio movement of one sensitive column at one operator."""

    node: DagNode
    column: str
    before: dict[Any, float]  # value -> ratio before the operator
    after: dict[Any, float]  # value -> ratio after the operator
    max_abs_change: float
    acceptable: bool

    def changes(self) -> dict[Any, float]:
        """Per-value ratio delta (after - before)."""
        keys = set(self.before) | set(self.after)
        return {
            key: self.after.get(key, 0.0) - self.before.get(key, 0.0)
            for key in keys
        }


class Check:
    """Base class; subclasses must be hashable value objects."""

    def required_inspections(self) -> list[Inspection]:
        return []

    def evaluate(
        self,
        dag,
        inspection_results: dict[DagNode, dict[Inspection, Any]],
    ) -> CheckResult:
        raise NotImplementedError


def _ratios(histogram: dict[Any, int]) -> dict[Any, float]:
    total = sum(histogram.values())
    if total == 0:
        return {}
    return {key: count / total for key, count in histogram.items()}


class NoBiasIntroducedFor(Check):
    """Fail when an operator shifts a sensitive ratio by >= threshold."""

    def __init__(
        self, sensitive_columns: list[str], threshold: float = 0.25
    ) -> None:
        self.sensitive_columns = tuple(sensitive_columns)
        self.threshold = threshold

    def __hash__(self) -> int:
        return hash((type(self), self.sensitive_columns, self.threshold))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NoBiasIntroducedFor)
            and other.sensitive_columns == self.sensitive_columns
            and other.threshold == self.threshold
        )

    def __repr__(self) -> str:
        return (
            f"NoBiasIntroducedFor({list(self.sensitive_columns)}, "
            f"threshold={self.threshold})"
        )

    def required_inspections(self) -> list[Inspection]:
        return [HistogramForColumns(list(self.sensitive_columns))]

    def evaluate(
        self,
        dag,
        inspection_results: dict[DagNode, dict[Inspection, Any]],
    ) -> CheckResult:
        histogram_inspection = HistogramForColumns(list(self.sensitive_columns))
        changes: list[BiasDistributionChange] = []
        failed: list[BiasDistributionChange] = []
        for node in sorted(dag.nodes, key=lambda n: n.node_id):
            if not node.operator_type.can_change_row_counts:
                continue
            parents = list(dag.predecessors(node))
            if not parents:
                continue
            after_histograms = inspection_results.get(node, {}).get(
                histogram_inspection
            )
            if not after_histograms:
                continue
            for column in self.sensitive_columns:
                after = after_histograms.get(column)
                if after is None:
                    continue
                before = self._parent_histogram(
                    parents, column, inspection_results, histogram_inspection
                )
                if before is None:
                    continue
                before_ratios = _ratios(before)
                after_ratios = _ratios(after)
                keys = set(before_ratios) | set(after_ratios)
                max_change = max(
                    (
                        abs(
                            after_ratios.get(k, 0.0) - before_ratios.get(k, 0.0)
                        )
                        for k in keys
                    ),
                    default=0.0,
                )
                change = BiasDistributionChange(
                    node,
                    column,
                    before_ratios,
                    after_ratios,
                    max_change,
                    acceptable=max_change < self.threshold,
                )
                changes.append(change)
                if not change.acceptable:
                    failed.append(change)
        status = CheckStatus.FAILURE if failed else CheckStatus.SUCCESS
        description = (
            "no bias introduced"
            if not failed
            else "; ".join(
                f"line {c.node.lineno}: column {c.column!r} ratio moved by "
                f"{c.max_abs_change:.3f}"
                for c in failed
            )
        )
        return CheckResult(
            self,
            status,
            description,
            details={"distribution_changes": changes, "failed": failed},
        )

    @staticmethod
    def _parent_histogram(
        parents: list[DagNode],
        column: str,
        inspection_results: dict[DagNode, dict[Inspection, Any]],
        inspection: HistogramForColumns,
    ) -> Optional[dict[Any, int]]:
        """Histogram before the operator.

        For joins (several parents) the paper compares against the side
        that owns the column; we pick the first parent that recorded a
        histogram for it.
        """
        for parent in parents:
            histograms = inspection_results.get(parent, {}).get(inspection)
            if histograms and column in histograms:
                return histograms[column]
        return None


#: features mlinspect considers illegal to train on out of the box
DEFAULT_ILLEGAL_FEATURES = frozenset(
    {"race", "gender", "sex", "religion", "ethnicity", "nationality"}
)


class NoIllegalFeatures(Check):
    """Fail when a blacklisted column feeds a transformer/estimator."""

    def __init__(self, additional_names: Optional[list[str]] = None) -> None:
        self.additional_names = tuple(additional_names or ())

    def __hash__(self) -> int:
        return hash((type(self), self.additional_names))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NoIllegalFeatures)
            and other.additional_names == self.additional_names
        )

    def __repr__(self) -> str:
        return f"NoIllegalFeatures({list(self.additional_names)})"

    def evaluate(
        self,
        dag,
        inspection_results: dict[DagNode, dict[Inspection, Any]],
    ) -> CheckResult:
        illegal = set(DEFAULT_ILLEGAL_FEATURES) | {
            name.lower() for name in self.additional_names
        }
        offending: dict[DagNode, list[str]] = {}
        for node in dag.nodes:
            if node.operator_type not in (
                OperatorType.TRANSFORMER,
                OperatorType.ESTIMATOR,
            ):
                continue
            bad = [c for c in node.columns if c.lower() in illegal]
            if bad:
                offending[node] = bad
        status = CheckStatus.FAILURE if offending else CheckStatus.SUCCESS
        description = (
            "no illegal features"
            if not offending
            else "; ".join(
                f"line {node.lineno}: {sorted(bad)}"
                for node, bad in offending.items()
            )
        )
        return CheckResult(
            self, status, description, details={"offending": offending}
        )
