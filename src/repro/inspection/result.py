"""Inspection run results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import networkx as nx

from repro.inspection.checks import Check, CheckResult, CheckStatus
from repro.inspection.inspections import Inspection
from repro.inspection.operators import DagNode

__all__ = ["InspectorResult"]


@dataclass
class InspectorResult:
    """Everything an inspected pipeline run produces.

    ``dag`` is the extracted dataflow DAG; the two dictionaries mirror
    mlinspect's interface (§4): one maps each DAG node to its inspection
    results, the other maps each check to its verdict.  For SQL-backed
    runs, ``sql_source`` holds the generated SQL script.
    """

    dag: nx.DiGraph
    dag_node_to_inspection_results: dict[DagNode, dict[Inspection, Any]]
    check_to_check_results: dict[Check, CheckResult]
    sql_source: Optional[str] = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def checks_passed(self) -> bool:
        return all(
            result.status is CheckStatus.SUCCESS
            for result in self.check_to_check_results.values()
        )

    def nodes_in_order(self) -> list[DagNode]:
        return sorted(self.dag.nodes, key=lambda node: node.node_id)

    def histograms_for(self, inspection: Inspection) -> dict[DagNode, Any]:
        """All per-node results of one inspection, in DAG-node order."""
        out = {}
        for node in self.nodes_in_order():
            results = self.dag_node_to_inspection_results.get(node, {})
            if inspection in results:
                out[node] = results[inspection]
        return out
