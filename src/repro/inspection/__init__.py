"""``repro.inspection`` — the mlinspect-style pipeline inspection framework.

Provides :class:`PipelineInspector` (the fluent entry point), the dataflow
DAG model, inspections (histograms, lineage, row materialisation), and
checks (bias introduction, illegal features).  Monkey patching intercepts
``repro.frame``/``repro.learn`` calls without modifying user pipelines.
"""

from repro.inspection.annotations import Lineage
from repro.inspection.backend import InspectionBackend
from repro.inspection.checks import (
    BiasDistributionChange,
    Check,
    CheckResult,
    CheckStatus,
    NoBiasIntroducedFor,
    NoIllegalFeatures,
)
from repro.inspection.inspections import (
    HistogramForColumns,
    Inspection,
    MaterializeFirstOutputRows,
    RowLineage,
)
from repro.inspection.inspector import PipelineInspector
from repro.inspection.operators import DagNode, OperatorType
from repro.inspection.result import InspectorResult

__all__ = [
    "BiasDistributionChange",
    "Check",
    "CheckResult",
    "CheckStatus",
    "DagNode",
    "HistogramForColumns",
    "Inspection",
    "InspectionBackend",
    "InspectorResult",
    "Lineage",
    "MaterializeFirstOutputRows",
    "NoBiasIntroducedFor",
    "NoIllegalFeatures",
    "OperatorType",
    "PipelineInspector",
    "RowLineage",
]
