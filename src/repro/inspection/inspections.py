"""Inspections: per-operator observers collecting runtime information.

These mirror mlinspect's three inspections (§3 of the paper):

* :class:`HistogramForColumns` — value counts of sensitive columns after
  every operator, restoring removed columns through row lineage (the
  Python counterpart of the ctid join in Listings 2/5);
* :class:`RowLineage` — per-row provenance for the first *k* rows;
* :class:`MaterializeFirstOutputRows` — the first *k* output rows.

Counting is deliberately row-at-a-time Python (dict updates per row): this
is how mlinspect's inspection visitors work and is the baseline the paper's
SQL offloading accelerates.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

import numpy as np

from repro.frame import is_na_scalar
from repro.frame.dataframe import DataFrame
from repro.frame.series import Series
from repro.inspection.annotations import Lineage
from repro.inspection.operators import DagNode

__all__ = [
    "HistogramForColumns",
    "Inspection",
    "MaterializeFirstOutputRows",
    "RowLineage",
    "SourceResolver",
]


class SourceResolver(Protocol):
    """Lookup interface into the original (source) tables."""

    def column_source(self, column: str) -> Optional[str]:
        """Name of the source table owning *column* (None if unknown)."""

    def source_values(self, source: str, column: str) -> np.ndarray:
        """The full original column array of a source table."""


class Inspection:
    """Base class; subclasses must be hashable value objects."""

    def visit(
        self,
        node: DagNode,
        data: Any,
        lineage: Optional[Lineage],
        resolver: SourceResolver,
    ) -> Any:
        raise NotImplementedError


def _named_columns(data: Any) -> dict[str, np.ndarray]:
    if isinstance(data, DataFrame):
        return {name: data.column_array(name) for name in data.columns}
    if isinstance(data, Series):
        name = data.name or "series"
        return {name: data.values}
    return {}


class HistogramForColumns(Inspection):
    """Distribution frequencies of sensitive columns after an operator."""

    def __init__(self, sensitive_columns: list[str]) -> None:
        self.sensitive_columns = tuple(sensitive_columns)

    def __hash__(self) -> int:
        return hash((type(self), self.sensitive_columns))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HistogramForColumns)
            and other.sensitive_columns == self.sensitive_columns
        )

    def __repr__(self) -> str:
        return f"HistogramForColumns({list(self.sensitive_columns)})"

    def visit(
        self,
        node: DagNode,
        data: Any,
        lineage: Optional[Lineage],
        resolver: SourceResolver,
    ) -> dict[str, dict[Any, int]]:
        histograms: dict[str, dict[Any, int]] = {}
        present = _named_columns(data)
        for column in self.sensitive_columns:
            if column in present:
                counts: dict[Any, int] = {}
                for value in present[column]:  # row-at-a-time, like mlinspect
                    key = None if is_na_scalar(value) else value
                    counts[key] = counts.get(key, 0) + 1
                histograms[column] = counts
                continue
            if lineage is None:
                continue
            source = resolver.column_source(column)
            if source is None or source not in lineage.sources:
                continue
            values = resolver.source_values(source, column)
            counts = {}
            for position in range(lineage.n_rows):
                for row_id in lineage.row_ids_for(source, position):
                    value = values[row_id]
                    key = None if is_na_scalar(value) else value
                    counts[key] = counts.get(key, 0) + 1
            histograms[column] = counts
        return histograms


class RowLineage(Inspection):
    """Materialise provenance of the first *row_count* rows per operator."""

    def __init__(self, row_count: int = 5) -> None:
        self.row_count = row_count

    def __hash__(self) -> int:
        return hash((type(self), self.row_count))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RowLineage) and other.row_count == self.row_count

    def __repr__(self) -> str:
        return f"RowLineage({self.row_count})"

    def visit(
        self,
        node: DagNode,
        data: Any,
        lineage: Optional[Lineage],
        resolver: SourceResolver,
    ) -> list[dict[str, Any]]:
        if lineage is None:
            return []
        rows = []
        named = _named_columns(data)
        for position in range(min(self.row_count, lineage.n_rows)):
            provenance = {
                source: lineage.row_ids_for(source, position)
                for source in lineage.sources
            }
            row_values = {name: values[position] for name, values in named.items()}
            rows.append({"row": row_values, "lineage": provenance})
        return rows


class MaterializeFirstOutputRows(Inspection):
    """Keep the first *row_count* output rows of every operator."""

    def __init__(self, row_count: int = 5) -> None:
        self.row_count = row_count

    def __hash__(self) -> int:
        return hash((type(self), self.row_count))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MaterializeFirstOutputRows)
            and other.row_count == self.row_count
        )

    def __repr__(self) -> str:
        return f"MaterializeFirstOutputRows({self.row_count})"

    def visit(
        self,
        node: DagNode,
        data: Any,
        lineage: Optional[Lineage],
        resolver: SourceResolver,
    ) -> Any:
        if isinstance(data, DataFrame):
            return data.head(self.row_count)
        if isinstance(data, Series):
            return data.head(self.row_count)
        if isinstance(data, np.ndarray):
            return data[: self.row_count].copy()
        return None
