"""`PipelineInspector` — the user-facing entry point (mirrors mlinspect).

Typical use (Listing 6 of the paper)::

    from repro.inspection import PipelineInspector
    from repro.inspection.checks import NoBiasIntroducedFor

    result = (
        PipelineInspector.on_pipeline_from_py_file("healthcare.py")
        .add_check(NoBiasIntroducedFor(["race", "age_group"]))
        .execute()                      # native Python execution, or:
        # .execute_in_sql(dbms_connector=conn, mode="VIEW", materialize=True)
    )
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import InspectionError
from repro.inspection.backend import InspectionBackend
from repro.inspection.checks import Check
from repro.inspection.inspections import Inspection
from repro.inspection.monkeypatch import patched_libraries
from repro.inspection.result import InspectorResult
from repro.inspection.tracker import PythonBackend

__all__ = ["PipelineInspector"]


class PipelineInspector:
    """Fluent builder configuring and running an inspected pipeline."""

    def __init__(self, source: str, filename: str) -> None:
        self._source = source
        self._filename = filename
        self._checks: list[Check] = []
        self._inspections: list[Inspection] = []

    # -- construction ---------------------------------------------------------

    @staticmethod
    def on_pipeline_from_py_file(path: str) -> "PipelineInspector":
        with open(path) as handle:
            return PipelineInspector(handle.read(), path)

    @staticmethod
    def on_pipeline_from_string(
        source: str, filename: str = "<pipeline>"
    ) -> "PipelineInspector":
        return PipelineInspector(source, filename)

    def add_check(self, check: Check) -> "PipelineInspector":
        self._checks.append(check)
        return self

    def add_checks(self, checks: list[Check]) -> "PipelineInspector":
        self._checks.extend(checks)
        return self

    def add_required_inspection(self, inspection: Inspection) -> "PipelineInspector":
        self._inspections.append(inspection)
        return self

    def add_required_inspections(
        self, inspections: list[Inspection]
    ) -> "PipelineInspector":
        self._inspections.extend(inspections)
        return self

    # -- execution -------------------------------------------------------------

    def _all_inspections(self) -> list[Inspection]:
        inspections: list[Inspection] = []
        for inspection in self._inspections:
            if inspection not in inspections:
                inspections.append(inspection)
        for check in self._checks:
            for inspection in check.required_inspections():
                if inspection not in inspections:
                    inspections.append(inspection)
        return inspections

    def _run_pipeline(self, backend: InspectionBackend) -> dict[str, Any]:
        code = compile(self._source, self._filename, "exec")
        pipeline_globals: dict[str, Any] = {
            "__name__": "__main__",
            "__file__": self._filename,
        }
        with patched_libraries(backend, self._filename):
            exec(code, pipeline_globals)  # noqa: S102 - running user pipelines is the point
        backend.finish()
        return pipeline_globals

    def execute(self) -> InspectorResult:
        """Run the pipeline natively with Python (mlinspect-style) inspection."""
        backend = PythonBackend(self._all_inspections())
        pipeline_globals = self._run_pipeline(backend)
        check_results = {
            check: check.evaluate(backend.dag, backend.inspection_results)
            for check in self._checks
        }
        return InspectorResult(
            backend.dag,
            backend.inspection_results,
            check_results,
            extras={"pipeline_globals": pipeline_globals},
        )

    def execute_in_sql(
        self,
        dbms_connector: Any = None,
        mode: str = "CTE",
        materialize: bool = False,
        sample_rows: int = 10,
        cte_not_materialized: bool = False,
    ) -> InspectorResult:
        """Run the pipeline with SQL offloading (the paper's contribution).

        ``dbms_connector`` is a connector from :mod:`repro.core.connectors`
        (defaults to an in-process PostgreSQL-profile connector); ``mode``
        chooses one view or one CTE per pipeline line (§3.4.1);
        ``materialize`` materialises reusable views/fitting parameters
        (§3.4.2).
        """
        from repro.core.connectors import PostgresqlConnector
        from repro.core.sql_backend import SQLBackend

        if mode not in ("CTE", "VIEW"):
            raise InspectionError("mode must be 'CTE' or 'VIEW'")
        connector = dbms_connector or PostgresqlConnector()
        backend = SQLBackend(
            self._all_inspections(),
            connector,
            mode=mode,
            materialize=materialize,
            sample_rows=sample_rows,
            cte_not_materialized=cte_not_materialized,
        )
        pipeline_globals = self._run_pipeline(backend)
        check_results = {
            check: check.evaluate(backend.dag, backend.inspection_results)
            for check in self._checks
        }
        return InspectorResult(
            backend.dag,
            backend.inspection_results,
            check_results,
            sql_source=backend.generated_sql(),
            extras={
                "backend": backend,
                "container": backend.container,
                "pipeline_globals": pipeline_globals,
            },
        )

    def to_sql(self, mode: str = "CTE", materialize: bool = False) -> str:
        """Generate the inspection-enabled SQL without executing it.

        Uses an in-process connector purely for schema deduction and
        returns the full generated SQL script (the paper's
        generate-without-execution feature).
        """
        result = self.execute_in_sql(mode=mode, materialize=materialize)
        assert result.sql_source is not None
        return result.sql_source
