"""Backend interface invoked by the monkey-patching layer.

Every patched library function routes through one of these hooks.  The
contract (from §4 of the paper): *each patched function returns exactly
what the original would return*, so inspection can never distort pipeline
results.  Two implementations exist:

* :class:`repro.inspection.tracker.PythonBackend` — runs the original
  operations and performs row-wise inspection in Python (mlinspect's
  default behaviour);
* :class:`repro.core.sql_backend.SQLBackend` — translates operations to
  SQL, offloads execution and inspection to a database system, and keeps
  sample-sized dummy objects flowing through the pipeline.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

__all__ = ["InspectionBackend"]


class InspectionBackend:
    """Hook surface; default implementations just call the original."""

    def __init__(self) -> None:
        self._suppress_depth = 0

    # -- re-entrancy control ------------------------------------------------

    @property
    def suppressed(self) -> bool:
        return self._suppress_depth > 0

    @contextmanager
    def suppress(self) -> Iterator[None]:
        """Run library-internal work without recording nested calls."""
        self._suppress_depth += 1
        try:
            yield
        finally:
            self._suppress_depth -= 1

    # -- lifecycle ------------------------------------------------------------

    def finish(self) -> None:
        """Called once after the pipeline source finished executing."""

    # -- pandas-level hooks -----------------------------------------------------

    def read_csv(self, original, path, na_values, lineno) -> Any:
        return original(path, na_values=na_values)

    def frame_created(self, frame, lineno) -> None:
        """A DataFrame was constructed directly in the pipeline source."""

    def frame_getitem(self, original, frame, key, lineno) -> Any:
        return original(frame, key)

    def frame_setitem(self, original, frame, key, value, lineno) -> None:
        return original(frame, key, value)

    def frame_merge(self, original, left, right, on, how, suffixes, lineno) -> Any:
        return original(left, right, on=on, how=how, suffixes=suffixes)

    def frame_dropna(self, original, frame, subset, lineno) -> Any:
        return original(frame, subset=subset)

    def frame_replace(self, original, obj, to_replace, value, regex, lineno) -> Any:
        return original(obj, to_replace, value, regex=regex)

    def groupby_agg(self, original, groupby, spec, named, lineno) -> Any:
        return original(groupby, spec, **named)

    def series_binop(self, original, op, left, right, lineno) -> Any:
        return original(left, right)

    def series_unop(self, original, op, operand, lineno) -> Any:
        return original(operand)

    def series_isin(self, original, series, values, lineno) -> Any:
        return original(series, values)

    # -- sklearn-level hooks -------------------------------------------------------

    def transformer_fit_transform(self, original, transformer, X, y, lineno) -> Any:
        return original(transformer, X, y)

    def transformer_transform(self, original, transformer, X, lineno) -> Any:
        return original(transformer, X)

    def label_binarize(self, original, y, classes, lineno) -> Any:
        return original(y, classes=classes)

    def train_test_split(self, original, arrays, kwargs, lineno) -> Any:
        return original(*arrays, **kwargs)

    def estimator_fit(self, original, estimator, X, y, lineno) -> Any:
        return original(estimator, X, y)

    def estimator_score(self, original, estimator, X, y, lineno) -> Any:
        return original(estimator, X, y)
