"""Python inspection backend: DAG extraction, lineage, row-wise inspections.

This is the mlinspect-equivalent execution mode: every patched call runs
the original library function, lineage annotations are propagated alongside
(the Python counterpart of the propagated ctid columns), and every
registered inspection visits the operator's output.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Optional

import numpy as np

import networkx as nx

from repro.frame import missing
from repro.frame.dataframe import DataFrame
from repro.frame.merge import merge_from_positions, merge_with_positions
from repro.frame.series import Series
from repro.inspection.annotations import Lineage
from repro.inspection.backend import InspectionBackend
from repro.inspection.inspections import Inspection
from repro.inspection.operators import DagNode, OperatorType
from repro.learn.model_selection import _take, split_positions

__all__ = ["PythonBackend"]


class PythonBackend(InspectionBackend):
    """Runs the pipeline natively while building DAG + inspection results."""

    def __init__(self, inspections: Iterable[Inspection]) -> None:
        super().__init__()
        self.inspections = list(inspections)
        self.dag = nx.DiGraph()
        self.inspection_results: dict[DagNode, dict[Inspection, Any]] = {}
        self._node_counter = 0
        self._object_nodes: dict[int, DagNode] = {}
        self._lineages: dict[int, Lineage] = {}
        self._keepalive: list[Any] = []  # pin ids so they stay unique
        self._source_columns: dict[str, dict[str, np.ndarray]] = {}
        self._column_sources: dict[str, str] = {}
        self._source_counter = 0
        #: transformer instances currently inside a recorded call, so the
        #: internal fit_transform -> transform re-entry records one node
        self._inflight_transformers: set[int] = set()

    # -- SourceResolver protocol ------------------------------------------------

    def column_source(self, column: str) -> Optional[str]:
        return self._column_sources.get(column)

    def source_values(self, source: str, column: str) -> np.ndarray:
        return self._source_columns[source][column]

    # -- bookkeeping ---------------------------------------------------------------

    def lineage_of(self, obj: Any) -> Optional[Lineage]:
        return self._lineages.get(id(obj))

    def node_of(self, obj: Any) -> Optional[DagNode]:
        return self._object_nodes.get(id(obj))

    def _record(
        self,
        operator_type: OperatorType,
        description: str,
        inputs: list[Any],
        output: Any,
        lineage: Optional[Lineage],
        lineno: Optional[int],
        columns: tuple[str, ...] = (),
    ) -> DagNode:
        node = DagNode(
            self._node_counter,
            operator_type,
            description,
            lineno=lineno,
            columns=columns,
        )
        self._node_counter += 1
        self.dag.add_node(node)
        for source in inputs:
            parent = self._object_nodes.get(id(source))
            if parent is not None:
                self.dag.add_edge(parent, node)
        if output is not None:
            self._object_nodes[id(output)] = node
            self._keepalive.append(output)
            if lineage is not None:
                self._lineages[id(output)] = lineage
        results: dict[Inspection, Any] = {}
        with self.suppress():  # inspections must not record nodes
            for inspection in self.inspections:
                results[inspection] = inspection.visit(node, output, lineage, self)
        self.inspection_results[node] = results
        return node

    @staticmethod
    def _columns_of(obj: Any) -> tuple[str, ...]:
        if isinstance(obj, DataFrame):
            return tuple(obj.columns)
        if isinstance(obj, Series) and obj.name:
            return (obj.name,)
        return ()

    # -- pandas hooks ---------------------------------------------------------------------

    def _register_source(
        self,
        frame: DataFrame,
        base: str,
        description: str,
        lineno: Optional[int],
    ) -> None:
        source = f"{base}_{self._source_counter}"
        self._source_counter += 1
        self._source_columns[source] = {
            name: frame.column_array(name).copy() for name in frame.columns
        }
        for name in frame.columns:
            self._column_sources.setdefault(name, source)
        lineage = Lineage.source(source, len(frame))
        self._record(
            OperatorType.DATA_SOURCE,
            description,
            [],
            frame,
            lineage,
            lineno,
            self._columns_of(frame),
        )

    def read_csv(self, original, path, na_values, lineno):
        with self.suppress():
            frame = original(path, na_values=na_values)
        base = os.path.splitext(os.path.basename(str(path)))[0]
        self._register_source(
            frame, base, f"read_csv({os.path.basename(str(path))})", lineno
        )
        return frame

    def frame_created(self, frame, lineno):
        self._register_source(frame, "dataframe", "DataFrame(...)", lineno)

    def frame_getitem(self, original, frame, key, lineno):
        result = original(frame, key)
        parent_lineage = self.lineage_of(frame)
        if isinstance(key, str):
            lineage = parent_lineage.copy() if parent_lineage else None
            self._record(
                OperatorType.PROJECTION,
                f"projection: [{key!r}]",
                [frame],
                result,
                lineage,
                lineno,
                self._columns_of(result),
            )
        elif isinstance(key, (list, tuple)):
            lineage = parent_lineage.copy() if parent_lineage else None
            self._record(
                OperatorType.PROJECTION,
                f"projection: {list(key)}",
                [frame],
                result,
                lineage,
                lineno,
                self._columns_of(result),
            )
        else:
            mask = key._bool_values() if isinstance(key, Series) else np.asarray(key)
            positions = np.flatnonzero(mask)
            lineage = (
                parent_lineage.gather(positions) if parent_lineage else None
            )
            self._record(
                OperatorType.SELECTION,
                "selection",
                [frame, key],
                result,
                lineage,
                lineno,
                self._columns_of(result),
            )
        return result

    def frame_setitem(self, original, frame, key, value, lineno):
        original(frame, key, value)
        lineage = self.lineage_of(frame)
        self._record(
            OperatorType.PROJECTION_MODIFY,
            f"assign column {key!r}",
            [frame, value],
            frame,
            lineage.copy() if lineage else None,
            lineno,
            self._columns_of(frame),
        )

    def frame_merge(self, original, left, right, on, how, suffixes, lineno):
        left_pos, right_pos = merge_with_positions(left, right, on=on, how=how)
        with self.suppress():
            result = merge_from_positions(
                left, right, left_pos, right_pos, on, how, suffixes
            )
        left_lineage = self.lineage_of(left)
        right_lineage = self.lineage_of(right)
        lineage = None
        if left_lineage is not None and right_lineage is not None:
            lineage = left_lineage.gather(left_pos).merged_with(
                right_lineage.gather(right_pos), len(left_pos)
            )
        elif left_lineage is not None:
            lineage = left_lineage.gather(left_pos)
        self._record(
            OperatorType.JOIN,
            f"merge on {on!r} ({how})",
            [left, right],
            result,
            lineage,
            lineno,
            self._columns_of(result),
        )
        return result

    def frame_dropna(self, original, frame, subset, lineno):
        with self.suppress():
            result = original(frame, subset=subset)
        names = list(subset) if subset is not None else frame.columns
        keep = np.ones(len(frame), dtype=bool)
        for name in names:
            keep &= ~missing.isnull_array(frame.column_array(name))
        positions = np.flatnonzero(keep)
        parent_lineage = self.lineage_of(frame)
        lineage = parent_lineage.gather(positions) if parent_lineage else None
        self._record(
            OperatorType.SELECTION,
            "dropna",
            [frame],
            result,
            lineage,
            lineno,
            self._columns_of(result),
        )
        return result

    def frame_replace(self, original, obj, to_replace, value, regex, lineno):
        with self.suppress():
            result = original(obj, to_replace, value, regex=regex)
        parent_lineage = self.lineage_of(obj)
        self._record(
            OperatorType.PROJECTION_MODIFY,
            f"replace({to_replace!r})",
            [obj],
            result,
            parent_lineage.copy() if parent_lineage else None,
            lineno,
            self._columns_of(result),
        )
        return result

    def groupby_agg(self, original, groupby, spec, named, lineno):
        with self.suppress():
            result = original(groupby, spec, **named)
        parent_lineage = self.lineage_of(groupby.frame)
        lineage = None
        if parent_lineage is not None:
            lineage = parent_lineage.group(groupby.groups().values())
        self._record(
            OperatorType.GROUP_BY_AGG,
            f"groupby {groupby.keys} agg",
            [groupby.frame],
            result,
            lineage,
            lineno,
            self._columns_of(result),
        )
        return result

    def series_binop(self, original, op, left, right, lineno):
        result = original(left, right)
        tracked = left if isinstance(left, Series) else right
        parent_lineage = self.lineage_of(tracked)
        self._record(
            OperatorType.PROJECTION_MODIFY,
            f"series {op}",
            [left, right],
            result,
            parent_lineage.copy() if parent_lineage else None,
            lineno,
            self._columns_of(result),
        )
        return result

    def series_unop(self, original, op, operand, lineno):
        result = original(operand)
        parent_lineage = self.lineage_of(operand)
        self._record(
            OperatorType.PROJECTION_MODIFY,
            f"series {op}",
            [operand],
            result,
            parent_lineage.copy() if parent_lineage else None,
            lineno,
            self._columns_of(result),
        )
        return result

    def series_isin(self, original, series, values, lineno):
        result = original(series, values)
        parent_lineage = self.lineage_of(series)
        self._record(
            OperatorType.PROJECTION_MODIFY,
            f"isin({list(values)!r})",
            [series],
            result,
            parent_lineage.copy() if parent_lineage else None,
            lineno,
            self._columns_of(result),
        )
        return result

    # -- sklearn hooks --------------------------------------------------------------------

    def transformer_fit_transform(self, original, transformer, X, y, lineno):
        if id(transformer) in self._inflight_transformers:
            return original(transformer, X, y)
        self._inflight_transformers.add(id(transformer))
        try:
            result = original(transformer, X, y)
        finally:
            self._inflight_transformers.discard(id(transformer))
        parent_lineage = self.lineage_of(X)
        self._record(
            OperatorType.TRANSFORMER,
            f"{type(transformer).__name__}.fit_transform",
            [X],
            result,
            parent_lineage.copy() if parent_lineage else None,
            lineno,
            self._columns_of(X),
        )
        return result

    def transformer_transform(self, original, transformer, X, lineno):
        if id(transformer) in self._inflight_transformers:
            return original(transformer, X)
        self._inflight_transformers.add(id(transformer))
        try:
            result = original(transformer, X)
        finally:
            self._inflight_transformers.discard(id(transformer))
        parent_lineage = self.lineage_of(X)
        self._record(
            OperatorType.TRANSFORMER,
            f"{type(transformer).__name__}.transform",
            [X],
            result,
            parent_lineage.copy() if parent_lineage else None,
            lineno,
            self._columns_of(X),
        )
        return result

    def label_binarize(self, original, y, classes, lineno):
        result = original(y, classes=classes)
        parent_lineage = self.lineage_of(y)
        self._record(
            OperatorType.PROJECTION_MODIFY,
            f"label_binarize(classes={list(classes)})",
            [y],
            result,
            parent_lineage.copy() if parent_lineage else None,
            lineno,
            self._columns_of(y),
        )
        return result

    def train_test_split(self, original, arrays, kwargs, lineno):
        n = len(arrays[0])
        train_positions, test_positions = split_positions(
            n,
            kwargs.get("test_size", 0.25),
            kwargs.get("random_state"),
            kwargs.get("shuffle", True),
        )
        outputs: list[Any] = []
        for array in arrays:
            parent_lineage = self.lineage_of(array)
            for positions, part in (
                (train_positions, "train"),
                (test_positions, "test"),
            ):
                piece = _take(array, positions)
                lineage = (
                    parent_lineage.gather(positions) if parent_lineage else None
                )
                self._record(
                    OperatorType.TRAIN_TEST_SPLIT,
                    f"train_test_split ({part})",
                    [array],
                    piece,
                    lineage,
                    lineno,
                    self._columns_of(piece),
                )
                outputs.append(piece)
        return outputs

    def estimator_fit(self, original, estimator, X, y, lineno):
        result = original(estimator, X, y)
        self._record(
            OperatorType.ESTIMATOR,
            f"{type(estimator).__name__}.fit",
            [X, y],
            estimator,
            None,
            lineno,
            self._columns_of(X),
        )
        return result

    def estimator_score(self, original, estimator, X, y, lineno):
        result = original(estimator, X, y)
        self._record(
            OperatorType.SCORE,
            f"{type(estimator).__name__}.score",
            [X, y],
            None,
            None,
            lineno,
        )
        return result
