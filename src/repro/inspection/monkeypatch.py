"""Monkey-patching of ``repro.frame`` and ``repro.learn``.

Mirrors mlinspect's approach (§4 of the paper): instead of modifying user
code, relevant library functions are swapped for wrappers at runtime.  Each
wrapper resolves the pipeline source line that triggered the call, then
routes through the active :class:`~repro.inspection.backend.InspectionBackend`;
nested calls execute in Python's default order, and suppressed (library-
internal) calls fall through to the originals.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Any, Iterator, Optional

import repro.frame as frame_module
import repro.frame.io as frame_io
import repro.learn as learn_module
import repro.learn.model_selection as model_selection_module
import repro.learn.preprocessing as preprocessing_module
from repro.frame.dataframe import DataFrame
from repro.frame.groupby import GroupBy
from repro.frame.series import Series
from repro.inspection.backend import InspectionBackend
from repro.learn.compose import ColumnTransformer
from repro.learn.impute import SimpleImputer
from repro.learn.linear_model import LogisticRegression, SGDClassifier
from repro.learn.neural_network import MLPClassifier
from repro.learn.preprocessing import (
    Binarizer,
    KBinsDiscretizer,
    OneHotEncoder,
    StandardScaler,
)
from repro.learn.tree import DecisionTreeClassifier

__all__ = ["patched_libraries", "TRANSFORMER_CLASSES", "ESTIMATOR_CLASSES"]

TRANSFORMER_CLASSES = (
    SimpleImputer,
    OneHotEncoder,
    StandardScaler,
    KBinsDiscretizer,
    Binarizer,
    ColumnTransformer,
)

ESTIMATOR_CLASSES = (
    LogisticRegression,
    SGDClassifier,
    MLPClassifier,
    DecisionTreeClassifier,
)

_SERIES_BINOPS = (
    "__gt__", "__ge__", "__lt__", "__le__", "__eq__", "__ne__",
    "__add__", "__radd__", "__sub__", "__rsub__", "__mul__", "__rmul__",
    "__truediv__", "__rtruediv__", "__and__", "__or__",
)


def _pipeline_lineno(filename: Optional[str]) -> Optional[int]:
    """Line in the user pipeline source that (transitively) made this call."""
    if filename is None:
        return None
    frame = sys._getframe(2)
    while frame is not None:
        if frame.f_code.co_filename == filename:
            return frame.f_lineno
        frame = frame.f_back
    return None


class _Patcher:
    def __init__(self, backend: InspectionBackend, filename: Optional[str]) -> None:
        self._backend = backend
        self._filename = filename
        self._saved: list[tuple[Any, str, Any]] = []

    def _swap(self, target: Any, attribute: str, replacement: Any) -> None:
        self._saved.append((target, attribute, getattr(target, attribute)))
        setattr(target, attribute, replacement)

    def restore(self) -> None:
        for target, attribute, original in reversed(self._saved):
            setattr(target, attribute, original)
        self._saved.clear()

    def install(self) -> None:
        backend = self._backend
        lineno = lambda: _pipeline_lineno(self._filename)  # noqa: E731

        # ---- repro.frame -------------------------------------------------
        original_read_csv = frame_io.read_csv

        def read_csv(path, na_values=None, sep=",", nrows=None):
            if backend.suppressed:
                return original_read_csv(
                    path, na_values=na_values, sep=sep, nrows=nrows
                )
            return backend.read_csv(original_read_csv, path, na_values, lineno())

        self._swap(frame_io, "read_csv", read_csv)
        self._swap(frame_module, "read_csv", read_csv)

        original_init = DataFrame.__init__

        def frame_init(self, data=None, index=None):
            original_init(self, data=data, index=index)
            if not backend.suppressed:
                backend.frame_created(self, lineno())

        self._swap(DataFrame, "__init__", frame_init)

        original_getitem = DataFrame.__getitem__

        def frame_getitem(self, key):
            if backend.suppressed:
                return original_getitem(self, key)
            return backend.frame_getitem(original_getitem, self, key, lineno())

        self._swap(DataFrame, "__getitem__", frame_getitem)

        original_setitem = DataFrame.__setitem__

        def frame_setitem(self, key, value):
            if backend.suppressed:
                return original_setitem(self, key, value)
            return backend.frame_setitem(
                original_setitem, self, key, value, lineno()
            )

        self._swap(DataFrame, "__setitem__", frame_setitem)

        original_merge = DataFrame.merge

        def frame_merge(self, right, on=None, how="inner", suffixes=("_x", "_y")):
            if backend.suppressed:
                return original_merge(self, right, on=on, how=how, suffixes=suffixes)
            return backend.frame_merge(
                lambda left, r, on, how, suffixes: original_merge(
                    left, r, on=on, how=how, suffixes=suffixes
                ),
                self,
                right,
                on,
                how,
                suffixes,
                lineno(),
            )

        self._swap(DataFrame, "merge", frame_merge)

        original_dropna = DataFrame.dropna

        def frame_dropna(self, subset=None):
            if backend.suppressed:
                return original_dropna(self, subset=subset)
            return backend.frame_dropna(
                lambda f, subset=None: original_dropna(f, subset=subset),
                self,
                subset,
                lineno(),
            )

        self._swap(DataFrame, "dropna", frame_dropna)

        for holder, method in ((DataFrame, "replace"), (Series, "replace")):
            original_replace = getattr(holder, method)

            def frame_replace(
                self, to_replace, value=None, regex=False, _orig=original_replace
            ):
                if backend.suppressed:
                    return _orig(self, to_replace, value, regex=regex)
                return backend.frame_replace(
                    lambda o, t, v, regex=False, _o=_orig: _o(o, t, v, regex=regex),
                    self,
                    to_replace,
                    value,
                    regex,
                    lineno(),
                )

            self._swap(holder, method, frame_replace)

        original_agg = GroupBy.agg

        def groupby_agg(self, spec=None, **named):
            if backend.suppressed:
                return original_agg(self, spec, **named)
            return backend.groupby_agg(original_agg, self, spec, named, lineno())

        self._swap(GroupBy, "agg", groupby_agg)

        for op_name in _SERIES_BINOPS:
            original_op = getattr(Series, op_name)

            def series_binop(self, other, _orig=original_op, _name=op_name):
                if backend.suppressed:
                    return _orig(self, other)
                return backend.series_binop(_orig, _name, self, other, lineno())

            self._swap(Series, op_name, series_binop)

        original_invert = Series.__invert__

        def series_invert(self):
            if backend.suppressed:
                return original_invert(self)
            return backend.series_unop(original_invert, "__invert__", self, lineno())

        self._swap(Series, "__invert__", series_invert)

        original_isin = Series.isin

        def series_isin(self, values):
            if backend.suppressed:
                return original_isin(self, values)
            return backend.series_isin(original_isin, self, values, lineno())

        self._swap(Series, "isin", series_isin)

        # ---- repro.learn -------------------------------------------------------
        for cls in TRANSFORMER_CLASSES:
            original_fit_transform = cls.fit_transform

            def fit_transform(self, X, y=None, _orig=original_fit_transform):
                if backend.suppressed:
                    return _orig(self, X, y)
                return backend.transformer_fit_transform(
                    _orig, self, X, y, lineno()
                )

            self._swap(cls, "fit_transform", fit_transform)

            original_transform = cls.transform

            def transform(self, X, _orig=original_transform):
                if backend.suppressed:
                    return _orig(self, X)
                return backend.transformer_transform(_orig, self, X, lineno())

            self._swap(cls, "transform", transform)

        original_label_binarize = preprocessing_module.label_binarize

        def label_binarize(y, classes):
            if backend.suppressed:
                return original_label_binarize(y, classes=classes)
            return backend.label_binarize(
                lambda y, classes: original_label_binarize(y, classes=classes),
                y,
                classes,
                lineno(),
            )

        self._swap(preprocessing_module, "label_binarize", label_binarize)
        self._swap(learn_module, "label_binarize", label_binarize)

        original_split = model_selection_module.train_test_split

        def train_test_split(*arrays, **kwargs):
            if backend.suppressed:
                return original_split(*arrays, **kwargs)
            return backend.train_test_split(
                original_split, arrays, kwargs, lineno()
            )

        self._swap(model_selection_module, "train_test_split", train_test_split)
        self._swap(learn_module, "train_test_split", train_test_split)

        for cls in ESTIMATOR_CLASSES:
            original_fit = cls.fit

            def fit(self, X, y, _orig=original_fit):
                if backend.suppressed:
                    return _orig(self, X, y)
                return backend.estimator_fit(_orig, self, X, y, lineno())

            self._swap(cls, "fit", fit)

            original_score = cls.score

            def score(self, X, y, _orig=original_score):
                if backend.suppressed:
                    return _orig(self, X, y)
                return backend.estimator_score(_orig, self, X, y, lineno())

            self._swap(cls, "score", score)


@contextmanager
def patched_libraries(
    backend: InspectionBackend, pipeline_filename: Optional[str] = None
) -> Iterator[None]:
    """Context manager installing (and always restoring) the patches."""
    patcher = _Patcher(backend, pipeline_filename)
    patcher.install()
    try:
        yield
    finally:
        patcher.restore()
