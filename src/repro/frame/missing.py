"""Null handling for the dataframe substrate.

The column model mirrors pandas 1.x:

* float64 columns encode nulls as ``NaN``;
* object columns (strings, arrays, mixed values) encode nulls as ``None``
  (``NaN`` objects are normalised to ``None`` on construction);
* int64 and bool columns cannot hold nulls — introducing a null promotes an
  int column to float64 and a bool column to object.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

__all__ = [
    "NA",
    "is_na_scalar",
    "isnull_array",
    "normalise_array",
    "promote_for_null",
]

#: Sentinel used in user-facing APIs for "missing" (mirrors ``np.nan``).
NA = float("nan")


def is_na_scalar(value: Any) -> bool:
    """Return True when *value* represents a missing scalar (None or NaN)."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, np.floating) and np.isnan(value):
        return True
    return False


def isnull_array(values: np.ndarray) -> np.ndarray:
    """Element-wise null test returning a bool ndarray."""
    if values.dtype.kind == "f":
        return np.isnan(values)
    if values.dtype == object:
        return np.fromiter(
            (is_na_scalar(v) for v in values), dtype=bool, count=len(values)
        )
    return np.zeros(len(values), dtype=bool)


def normalise_array(values: np.ndarray) -> np.ndarray:
    """Canonicalise an array so nulls follow the column model.

    Object arrays get NaN objects replaced by ``None``; other dtypes are
    returned unchanged.
    """
    if values.dtype == object:
        out = values.copy()
        for i, v in enumerate(out):
            if v is not None and is_na_scalar(v):
                out[i] = None
        return out
    return values


def promote_for_null(values: np.ndarray) -> np.ndarray:
    """Return an array of a dtype that can represent nulls.

    int -> float64, bool -> object; float and object stay as they are.
    """
    kind = values.dtype.kind
    if kind in ("i", "u"):
        return values.astype(np.float64)
    if kind == "b":
        return values.astype(object)
    return values
