"""CSV input with pandas-style type inference.

``read_csv`` infers int64 / float64 / object column types from the content,
honours ``na_values`` (plus the empty string), and detects the
index-column-without-header layout used by the compas and adult datasets
(the header row has one field fewer than the data rows; the surplus first
column holds pandas row numbers and becomes the index).
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, Sequence

import numpy as np

from repro.errors import FrameError
from repro.frame.dataframe import DataFrame

__all__ = ["read_csv", "infer_column_type"]


def _parse_int(text: str) -> int | None:
    try:
        return int(text)
    except ValueError:
        return None


def _parse_float(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None


def infer_column_type(values: Iterable[str | None]) -> str:
    """Classify a column of raw strings as ``'int'``, ``'float'`` or ``'str'``.

    Nulls are ignored; an all-null column is classified as ``'str'``.
    """
    seen_any = False
    could_be_int = True
    could_be_float = True
    for text in values:
        if text is None:
            continue
        seen_any = True
        if could_be_int and _parse_int(text) is None:
            could_be_int = False
        if not could_be_int and could_be_float and _parse_float(text) is None:
            could_be_float = False
        if not could_be_float:
            break
    if not seen_any:
        return "str"
    if could_be_int:
        return "int"
    if could_be_float:
        return "float"
    return "str"


def _build_column(raw: list[str | None], kind: str) -> np.ndarray:
    has_null = any(v is None for v in raw)
    if kind == "int" and not has_null:
        return np.array([int(v) for v in raw], dtype=np.int64)
    if kind in ("int", "float"):
        return np.array(
            [float(v) if v is not None else np.nan for v in raw], dtype=np.float64
        )
    out = np.empty(len(raw), dtype=object)
    for i, v in enumerate(raw):
        out[i] = v
    return out


def read_csv(
    path: str | os.PathLike,
    na_values: str | Sequence[str] | None = None,
    sep: str = ",",
    nrows: int | None = None,
) -> DataFrame:
    """Load a CSV file with a header row into a :class:`DataFrame`.

    ``nrows`` limits the number of data rows read (the SQL backend uses
    this to deduce schemas from a small sample, §4 of the paper).
    """
    nulls = {""}
    if na_values is not None:
        if isinstance(na_values, str):
            nulls.add(na_values)
        else:
            nulls.update(na_values)

    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=sep)
        try:
            header = next(reader)
        except StopIteration:
            raise FrameError(f"empty CSV file: {path}") from None
        if nrows is None:
            rows = list(reader)
        else:
            rows = []
            for row in reader:
                if len(rows) >= nrows:
                    break
                rows.append(row)

    has_index_column = bool(rows) and len(rows[0]) == len(header) + 1
    names = list(header)
    n_fields = len(names) + (1 if has_index_column else 0)

    raw_columns: list[list[str | None]] = [[] for _ in range(n_fields)]
    for line_no, row in enumerate(rows, start=2):
        if not row:
            continue  # pandas skips blank lines by default
        if len(row) != n_fields:
            raise FrameError(
                f"{path}: line {line_no} has {len(row)} fields, "
                f"expected {n_fields}"
            )
        for j, cell in enumerate(row):
            raw_columns[j].append(None if cell in nulls else cell)

    index = None
    if has_index_column:
        index_raw = raw_columns.pop(0)
        if any(v is None for v in index_raw) or infer_column_type(index_raw) != "int":
            raise FrameError(f"{path}: detected index column is not integral")
        index = np.array([int(v) for v in index_raw], dtype=np.int64)

    columns: dict[str, np.ndarray] = {}
    for name, raw in zip(names, raw_columns):
        columns[name] = _build_column(raw, infer_column_type(raw))
    frame = DataFrame(columns)
    if index is not None:
        frame._index = index
    elif not columns:
        frame._index = np.arange(len(rows), dtype=np.int64)
    return frame
