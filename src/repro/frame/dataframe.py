"""Two-dimensional labelled table, mirroring ``pandas.DataFrame``.

Columns are numpy arrays; the row index is an int64 label array that
survives selections (as in pandas) so that lineage-style inspections can
relate filtered rows back to their origin.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import FrameError
from repro.frame import missing
from repro.frame.series import Series

__all__ = ["DataFrame"]


class DataFrame:
    """An ordered collection of equally long named columns."""

    __slots__ = ("_columns", "_index")

    def __init__(
        self,
        data: Mapping[str, Any] | "DataFrame" | None = None,
        index: np.ndarray | None = None,
    ) -> None:
        self._columns: dict[str, np.ndarray] = {}
        if isinstance(data, DataFrame):
            for name in data.columns:
                self._columns[name] = data._columns[name].copy()
            self._index = data._index.copy() if index is None else np.asarray(index)
            return
        n_rows: int | None = None
        if data:
            for name, values in data.items():
                column = Series(values).values
                if n_rows is None:
                    n_rows = len(column)
                elif len(column) != n_rows:
                    raise FrameError(
                        f"column {name!r} has length {len(column)}, "
                        f"expected {n_rows}"
                    )
                self._columns[str(name)] = column
        if index is None:
            self._index = np.arange(n_rows or 0, dtype=np.int64)
        else:
            self._index = np.asarray(index, dtype=np.int64)
            if n_rows is not None and len(self._index) != n_rows:
                raise FrameError("index length does not match column length")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def _from_arrays(
        cls, columns: dict[str, np.ndarray], index: np.ndarray
    ) -> "DataFrame":
        """Internal zero-copy constructor (arrays are adopted, not copied)."""
        frame = cls.__new__(cls)
        frame._columns = columns
        frame._index = index
        return frame

    # -- basic protocol ---------------------------------------------------------

    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    @property
    def index(self) -> np.ndarray:
        return self._index

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self), len(self._columns))

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DataFrame(rows={len(self)}, columns={self.columns})"

    def copy(self) -> "DataFrame":
        return DataFrame(self)

    def column_array(self, name: str) -> np.ndarray:
        """Direct (shared) access to a column's backing array."""
        try:
            return self._columns[name]
        except KeyError:
            raise FrameError(f"no such column: {name!r}") from None

    # -- selection / projection -------------------------------------------------

    def __getitem__(self, key: Any) -> "Series | DataFrame":
        if isinstance(key, str):
            return Series(
                self.column_array(key), name=key, index=self._index
            )
        if isinstance(key, (list, tuple)):
            cols: dict[str, np.ndarray] = {}
            for name in key:
                cols[name] = self.column_array(name)
            return DataFrame._from_arrays(cols, self._index)
        if isinstance(key, Series):
            mask = key._bool_values()
            return self._filter(mask)
        if isinstance(key, np.ndarray) and key.dtype.kind == "b":
            return self._filter(key)
        raise FrameError(f"unsupported selection key: {type(key).__name__}")

    def _filter(self, mask: np.ndarray) -> "DataFrame":
        if len(mask) != len(self):
            raise FrameError(
                f"boolean mask length {len(mask)} does not match rows {len(self)}"
            )
        cols = {name: arr[mask] for name, arr in self._columns.items()}
        return DataFrame._from_arrays(cols, self._index[mask])

    def __setitem__(self, name: str, value: Any) -> None:
        if isinstance(value, Series):
            if len(value) != len(self) and len(self._columns):
                raise FrameError(
                    f"cannot assign series of length {len(value)} "
                    f"to frame with {len(self)} rows"
                )
            self._columns[name] = value.values.copy()
        elif isinstance(value, np.ndarray):
            if value.ndim != 1 or (self._columns and len(value) != len(self)):
                raise FrameError("assigned array must be 1-D of matching length")
            self._columns[name] = missing.normalise_array(value.copy())
        elif np.isscalar(value) or value is None:
            self._columns[name] = Series([value] * len(self)).values
        else:
            self._columns[name] = Series(value).values
        if not len(self._index) and len(self._columns) == 1:
            self._index = np.arange(len(self._columns[name]), dtype=np.int64)

    # -- row access (used by the inspection framework) ----------------------------

    def row(self, position: int) -> tuple:
        return tuple(arr[position] for arr in self._columns.values())

    def iterrows(self) -> Iterator[tuple[int, tuple]]:
        arrays = list(self._columns.values())
        for pos, label in enumerate(self._index):
            yield int(label), tuple(arr[pos] for arr in arrays)

    def head(self, n: int = 5) -> "DataFrame":
        cols = {name: arr[:n] for name, arr in self._columns.items()}
        return DataFrame._from_arrays(cols, self._index[:n])

    # -- pandas-style operations ---------------------------------------------------

    def merge(
        self,
        right: "DataFrame",
        on: str | Sequence[str] | None = None,
        how: str = "inner",
        suffixes: tuple[str, str] = ("_x", "_y"),
    ) -> "DataFrame":
        from repro.frame.merge import merge as _merge

        return _merge(self, right, on=on, how=how, suffixes=suffixes)

    def groupby(self, by: str | Sequence[str]):
        from repro.frame.groupby import GroupBy

        keys = [by] if isinstance(by, str) else list(by)
        for key in keys:
            if key not in self._columns:
                raise FrameError(f"groupby key {key!r} is not a column")
        return GroupBy(self, keys)

    def dropna(self, subset: Sequence[str] | None = None) -> "DataFrame":
        names = list(subset) if subset is not None else self.columns
        keep = np.ones(len(self), dtype=bool)
        for name in names:
            keep &= ~missing.isnull_array(self.column_array(name))
        return self._filter(keep)

    def replace(
        self, to_replace: Any, value: Any = None, regex: bool = False
    ) -> "DataFrame":
        cols: dict[str, np.ndarray] = {}
        for name, arr in self._columns.items():
            if arr.dtype == object:
                cols[name] = (
                    Series(arr, name=name).replace(to_replace, value, regex=regex)
                ).values
            else:
                cols[name] = arr.copy()
        return DataFrame._from_arrays(cols, self._index.copy())

    def rename(self, columns: Mapping[str, str]) -> "DataFrame":
        cols = {columns.get(name, name): arr for name, arr in self._columns.items()}
        return DataFrame._from_arrays(cols, self._index.copy())

    def drop(self, columns: str | Sequence[str]) -> "DataFrame":
        dropped = {columns} if isinstance(columns, str) else set(columns)
        unknown = dropped - set(self._columns)
        if unknown:
            raise FrameError(f"cannot drop unknown columns: {sorted(unknown)}")
        cols = {
            name: arr for name, arr in self._columns.items() if name not in dropped
        }
        return DataFrame._from_arrays(cols, self._index.copy())

    def reset_index(self, drop: bool = True) -> "DataFrame":
        if not drop:
            raise FrameError("reset_index(drop=False) is not supported")
        cols = {name: arr.copy() for name, arr in self._columns.items()}
        return DataFrame._from_arrays(cols, np.arange(len(self), dtype=np.int64))

    def sort_values(self, by: str, ascending: bool = True) -> "DataFrame":
        series = self[by]
        nulls = missing.isnull_array(series.values)
        order = np.argsort(series.values[~nulls], kind="stable")
        positions = np.flatnonzero(~nulls)[order]
        if not ascending:
            positions = positions[::-1]
        positions = np.concatenate([positions, np.flatnonzero(nulls)])
        cols = {name: arr[positions] for name, arr in self._columns.items()}
        return DataFrame._from_arrays(cols, self._index[positions])

    # -- conversion -------------------------------------------------------------

    def __array__(self, dtype: Any = None, copy: Any = None) -> np.ndarray:
        """numpy interop: a frame coerces to its dense value matrix."""
        return self.to_numpy(dtype=dtype or np.float64)

    def to_numpy(self, dtype: Any = np.float64) -> np.ndarray:
        """Dense matrix of all columns; nulls become NaN for float dtypes."""
        out = np.empty((len(self), len(self._columns)), dtype=dtype)
        for j, arr in enumerate(self._columns.values()):
            if dtype == object:
                out[:, j] = arr
            else:
                column = arr.astype(np.float64) if arr.dtype != np.float64 else arr
                out[:, j] = column
        return out

    def to_dict(self) -> dict[str, list]:
        return {
            name: Series(arr).tolist() for name, arr in self._columns.items()
        }

    def equals(self, other: "DataFrame") -> bool:
        if self.columns != other.columns or len(self) != len(other):
            return False
        for name in self.columns:
            a, b = self._columns[name], other._columns[name]
            null_a = missing.isnull_array(a)
            null_b = missing.isnull_array(b)
            if not np.array_equal(null_a, null_b):
                return False
            for i in np.flatnonzero(~null_a):
                if a[i] != b[i]:
                    return False
        return True


def concat(frames: Iterable[DataFrame]) -> DataFrame:
    """Row-wise concatenation of frames with identical column sets."""
    frames = list(frames)
    if not frames:
        raise FrameError("concat needs at least one frame")
    columns = frames[0].columns
    for frame in frames[1:]:
        if frame.columns != columns:
            raise FrameError("concat requires identical columns in all frames")
    cols: dict[str, np.ndarray] = {}
    for name in columns:
        pieces = [frame.column_array(name) for frame in frames]
        target = object if any(p.dtype == object for p in pieces) else None
        if target is object:
            pieces = [p.astype(object) for p in pieces]
        cols[name] = np.concatenate(pieces)
    index = np.arange(sum(len(f) for f in frames), dtype=np.int64)
    return DataFrame._from_arrays(cols, index)
