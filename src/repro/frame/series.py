"""One-dimensional labelled column, mirroring ``pandas.Series``.

Only behaviour exercised by the paper's pipelines is implemented, but that
behaviour follows pandas semantics:

* comparisons involving nulls evaluate to ``False``;
* arithmetic involving nulls propagates null;
* binary operations between two series align positionally (the pipelines
  only combine columns of the same frame, where positional and label
  alignment coincide).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.errors import FrameError
from repro.frame import missing

__all__ = ["Series"]

#: sentinel distinguishing "no NA key in the replace mapping" from
#: replacing nulls *with* None (a legal, if pointless, request)
_NO_NA_REPLACEMENT = object()


def _coerce_values(data: Any) -> np.ndarray:
    """Build a canonical 1-D value array from arbitrary input data."""
    if isinstance(data, Series):
        return data.values.copy()
    if isinstance(data, np.ndarray):
        values = data
    else:
        items = list(data)
        has_null = any(missing.is_na_scalar(v) for v in items)
        non_null = [v for v in items if not missing.is_na_scalar(v)]
        if non_null and all(isinstance(v, bool) for v in non_null):
            dtype = object if has_null else bool
        elif non_null and all(
            isinstance(v, (int, np.integer)) and not isinstance(v, bool)
            for v in non_null
        ):
            dtype = np.float64 if has_null else np.int64
        elif non_null and all(
            isinstance(v, (int, float, np.integer, np.floating))
            and not isinstance(v, bool)
            for v in non_null
        ):
            dtype = np.float64
        else:
            dtype = object
        if dtype == object:
            values = np.empty(len(items), dtype=object)
            for i, v in enumerate(items):
                values[i] = None if missing.is_na_scalar(v) else v
            return values
        values = np.array(
            [np.nan if missing.is_na_scalar(v) else v for v in items], dtype=dtype
        )
        return values
    if values.ndim != 1:
        raise FrameError(f"Series data must be 1-D, got shape {values.shape}")
    if values.dtype.kind in ("U", "S"):
        values = values.astype(object)
    return missing.normalise_array(values)


class Series:
    """A named, indexed column of values backed by a numpy array."""

    __slots__ = ("_values", "_name", "_index")

    def __init__(
        self,
        data: Any,
        name: str | None = None,
        index: np.ndarray | None = None,
    ) -> None:
        self._values = _coerce_values(data)
        self._name = name
        if index is None:
            self._index = np.arange(len(self._values), dtype=np.int64)
        else:
            self._index = np.asarray(index, dtype=np.int64)
            if len(self._index) != len(self._values):
                raise FrameError(
                    "index length does not match data length: "
                    f"{len(self._index)} != {len(self._values)}"
                )

    # -- basic protocol ----------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The underlying numpy array (shared, not copied)."""
        return self._values

    @property
    def name(self) -> str | None:
        return self._name

    @property
    def index(self) -> np.ndarray:
        """Integer row labels surviving from the original frame."""
        return self._index

    @property
    def dtype(self) -> np.dtype:
        return self._values.dtype

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        head = ", ".join(repr(v) for v in self._values[:8])
        more = ", ..." if len(self) > 8 else ""
        return f"Series(name={self._name!r}, n={len(self)}, [{head}{more}])"

    def copy(self) -> "Series":
        return Series(self._values.copy(), name=self._name, index=self._index.copy())

    def rename(self, name: str) -> "Series":
        return Series(self._values, name=name, index=self._index)

    def to_numpy(self) -> np.ndarray:
        return self._values.copy()

    def __array__(self, dtype: Any = None, copy: Any = None) -> np.ndarray:
        """numpy interop so e.g. ``np.asarray(series, dtype=float)`` works."""
        values = self._values
        if values.dtype == object and dtype is not None:
            values = np.array(
                [np.nan if missing.is_na_scalar(v) else v for v in values]
            )
        return values.astype(dtype) if dtype is not None else values.copy()

    def tolist(self) -> list:
        return [None if missing.is_na_scalar(v) else v for v in self._values]

    def head(self, n: int = 5) -> "Series":
        return Series(self._values[:n], name=self._name, index=self._index[:n])

    def astype(self, dtype: Any) -> "Series":
        if dtype in (str, "str"):
            out = np.empty(len(self), dtype=object)
            nulls = self.isnull().values
            for i, v in enumerate(self._values):
                out[i] = None if nulls[i] else str(v)
            return Series(out, name=self._name, index=self._index)
        return Series(
            self._values.astype(dtype), name=self._name, index=self._index
        )

    # -- null handling -----------------------------------------------------

    def isnull(self) -> "Series":
        return Series(
            missing.isnull_array(self._values), name=self._name, index=self._index
        )

    isna = isnull

    def notnull(self) -> "Series":
        return Series(
            ~missing.isnull_array(self._values), name=self._name, index=self._index
        )

    notna = notnull

    def fillna(self, value: Any) -> "Series":
        nulls = missing.isnull_array(self._values)
        if not nulls.any():
            return self.copy()
        out = self._values.copy()
        if out.dtype.kind == "f" and isinstance(value, (int, float)):
            out[nulls] = float(value)
        else:
            out = out.astype(object)
            out[nulls] = value
        return Series(out, name=self._name, index=self._index)

    def dropna(self) -> "Series":
        keep = ~missing.isnull_array(self._values)
        return Series(self._values[keep], name=self._name, index=self._index[keep])

    # -- element-wise operations --------------------------------------------

    def _other_values(self, other: Any) -> tuple[np.ndarray | Any, bool]:
        """Return (values, is_elementwise) for a binary-op right operand."""
        if isinstance(other, Series):
            if len(other) != len(self):
                raise FrameError(
                    "cannot align series of different lengths: "
                    f"{len(self)} and {len(other)}"
                )
            return other.values, True
        if isinstance(other, np.ndarray):
            if other.ndim != 1 or len(other) != len(self):
                raise FrameError("operand array must be 1-D of the same length")
            return other, True
        return other, False

    def _compare(self, other: Any, op: Callable[[Any, Any], bool]) -> "Series":
        rhs, elementwise = self._other_values(other)
        lhs = self._values
        out = np.zeros(len(lhs), dtype=bool)
        null_l = missing.isnull_array(lhs)
        if elementwise:
            null_r = missing.isnull_array(rhs)
            valid = ~(null_l | null_r)
            if lhs.dtype != object and rhs.dtype != object:
                with np.errstate(invalid="ignore"):
                    out[valid] = op(lhs[valid], rhs[valid])
            else:
                idx = np.flatnonzero(valid)
                for i in idx:
                    out[i] = bool(op(lhs[i], rhs[i]))
        else:
            if missing.is_na_scalar(rhs):
                return Series(out, name=self._name, index=self._index)
            valid = ~null_l
            if lhs.dtype != object:
                with np.errstate(invalid="ignore"):
                    out[valid] = op(lhs[valid], rhs)
            else:
                for i in np.flatnonzero(valid):
                    try:
                        out[i] = bool(op(lhs[i], rhs))
                    except TypeError:
                        out[i] = False
        return Series(out, name=self._name, index=self._index)

    def __eq__(self, other: Any) -> "Series":  # type: ignore[override]
        return self._compare(other, lambda a, b: a == b)

    def __ne__(self, other: Any) -> "Series":  # type: ignore[override]
        result = self._compare(other, lambda a, b: a == b)
        nulls = missing.isnull_array(self._values)
        if isinstance(other, (Series, np.ndarray)):
            rhs = other.values if isinstance(other, Series) else other
            nulls = nulls | missing.isnull_array(rhs)
        out = ~result.values
        out[nulls] = False
        return Series(out, name=self._name, index=self._index)

    def __lt__(self, other: Any) -> "Series":
        return self._compare(other, lambda a, b: a < b)

    def __le__(self, other: Any) -> "Series":
        return self._compare(other, lambda a, b: a <= b)

    def __gt__(self, other: Any) -> "Series":
        return self._compare(other, lambda a, b: a > b)

    def __ge__(self, other: Any) -> "Series":
        return self._compare(other, lambda a, b: a >= b)

    def _arith(self, other: Any, op: Callable, reflected: bool = False) -> "Series":
        rhs, elementwise = self._other_values(other)
        lhs = self._values
        null_l = missing.isnull_array(lhs)
        if elementwise:
            null_r = missing.isnull_array(rhs)
        else:
            if missing.is_na_scalar(rhs):
                out = np.full(len(lhs), np.nan)
                return Series(out, name=self._name, index=self._index)
            null_r = np.zeros(len(lhs), dtype=bool)
        any_null = null_l | null_r
        a, b = (rhs, lhs) if reflected else (lhs, rhs)
        if lhs.dtype != object and (not elementwise or rhs.dtype != object):
            with np.errstate(invalid="ignore", divide="ignore"):
                result = op(a, b)
            result = np.asarray(result)
            if any_null.any():
                result = missing.promote_for_null(result)
                if result.dtype.kind == "f":
                    result[any_null] = np.nan
                else:
                    result = result.astype(object)
                    result[any_null] = None
            return Series(result, name=self._name, index=self._index)
        out = np.empty(len(lhs), dtype=object)
        for i in range(len(lhs)):
            if any_null[i]:
                out[i] = None
            elif elementwise:
                out[i] = op(rhs[i], lhs[i]) if reflected else op(lhs[i], rhs[i])
            else:
                out[i] = op(rhs, lhs[i]) if reflected else op(lhs[i], rhs)
        return Series(out, name=self._name, index=self._index)

    def __add__(self, other: Any) -> "Series":
        return self._arith(other, lambda a, b: a + b)

    def __radd__(self, other: Any) -> "Series":
        return self._arith(other, lambda a, b: a + b, reflected=True)

    def __sub__(self, other: Any) -> "Series":
        return self._arith(other, lambda a, b: a - b)

    def __rsub__(self, other: Any) -> "Series":
        return self._arith(other, lambda a, b: a - b, reflected=True)

    def __mul__(self, other: Any) -> "Series":
        return self._arith(other, lambda a, b: a * b)

    def __rmul__(self, other: Any) -> "Series":
        return self._arith(other, lambda a, b: a * b, reflected=True)

    def __truediv__(self, other: Any) -> "Series":
        return self._arith(other, lambda a, b: a / b)

    def __rtruediv__(self, other: Any) -> "Series":
        return self._arith(other, lambda a, b: a / b, reflected=True)

    def __mod__(self, other: Any) -> "Series":
        return self._arith(other, lambda a, b: a % b)

    def __neg__(self) -> "Series":
        return self._arith(-1, lambda a, b: a * b)

    def _bool_values(self) -> np.ndarray:
        if self._values.dtype.kind == "b":
            return self._values
        if self._values.dtype == object:
            nulls = missing.isnull_array(self._values)
            out = np.zeros(len(self), dtype=bool)
            for i in np.flatnonzero(~nulls):
                out[i] = bool(self._values[i])
            return out
        raise FrameError(
            f"cannot interpret dtype {self._values.dtype} as boolean mask"
        )

    def __and__(self, other: Any) -> "Series":
        rhs = other._bool_values() if isinstance(other, Series) else other
        return Series(self._bool_values() & rhs, name=self._name, index=self._index)

    def __or__(self, other: Any) -> "Series":
        rhs = other._bool_values() if isinstance(other, Series) else other
        return Series(self._bool_values() | rhs, name=self._name, index=self._index)

    def __invert__(self) -> "Series":
        return Series(~self._bool_values(), name=self._name, index=self._index)

    # -- pandas-style helpers -------------------------------------------------

    def isin(self, values: Iterable[Any]) -> "Series":
        """Membership test; nulls never match (pandas semantics)."""
        lookup = set()
        for v in values:
            if not missing.is_na_scalar(v):
                lookup.add(v)
        nulls = missing.isnull_array(self._values)
        out = np.zeros(len(self), dtype=bool)
        for i in np.flatnonzero(~nulls):
            out[i] = self._values[i] in lookup
        return Series(out, name=self._name, index=self._index)

    def replace(self, to_replace: Any, value: Any = None, regex: bool = False) -> "Series":
        """Replace whole values; with ``regex=True`` match full strings."""
        if isinstance(to_replace, dict):
            mapping = to_replace
        else:
            mapping = {to_replace: value}
        out = self._values.astype(object).copy()
        if regex:
            compiled = [(re.compile(str(k)), v) for k, v in mapping.items()]
            for i, cell in enumerate(out):
                if isinstance(cell, str):
                    for pattern, repl in compiled:
                        new = pattern.sub(str(repl), cell)
                        if new != cell:
                            out[i] = new
                            break
        else:
            # NA keys (None / NaN) never match a dict lookup — NaN hashes but
            # compares unequal to the boxed NaN cells, None was skipped — so
            # route null cells through a dedicated replacement value.
            na_replacement = next(
                (v for k, v in mapping.items() if missing.is_na_scalar(k)),
                _NO_NA_REPLACEMENT,
            )
            nulls = missing.isnull_array(self._values)
            for i, cell in enumerate(out):
                if nulls[i]:
                    if na_replacement is not _NO_NA_REPLACEMENT:
                        out[i] = na_replacement
                elif cell in mapping:
                    out[i] = mapping[cell]
        # Re-infer the dtype from the replaced values: pandas keeps int64
        # when ints replace ints rather than degrading to object.
        return Series(list(out), name=self._name, index=self._index)

    def map(self, mapping: dict | Callable) -> "Series":
        func = mapping if callable(mapping) else lambda v: mapping.get(v)
        out = np.empty(len(self), dtype=object)
        nulls = missing.isnull_array(self._values)
        for i, v in enumerate(self._values):
            out[i] = None if nulls[i] else func(v)
        return Series(out, name=self._name, index=self._index)

    def unique(self) -> list:
        seen: dict[Any, None] = {}
        has_null = False
        for v in self._values:
            if missing.is_na_scalar(v):
                has_null = True
            else:
                seen.setdefault(v, None)
        result = list(seen)
        if has_null:
            result.append(None)
        return result

    def nunique(self) -> int:
        return len([v for v in self.unique() if v is not None])

    def value_counts(self) -> dict:
        """Counts per non-null value, most frequent first (stable)."""
        counts: dict[Any, int] = {}
        for v in self._values:
            if not missing.is_na_scalar(v):
                counts[v] = counts.get(v, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))

    # -- aggregations ----------------------------------------------------------

    def _non_null(self) -> np.ndarray:
        return self._values[~missing.isnull_array(self._values)]

    def count(self) -> int:
        return int((~missing.isnull_array(self._values)).sum())

    def sum(self) -> Any:
        vals = self._non_null()
        return vals.sum() if len(vals) else 0

    def mean(self) -> float:
        vals = self._non_null().astype(np.float64)
        return float(vals.mean()) if len(vals) else float("nan")

    def median(self) -> float:
        vals = self._non_null().astype(np.float64)
        return float(np.median(vals)) if len(vals) else float("nan")

    def std(self, ddof: int = 1) -> float:
        vals = self._non_null().astype(np.float64)
        if len(vals) <= ddof:
            return float("nan")
        return float(vals.std(ddof=ddof))

    def min(self) -> Any:
        vals = self._non_null()
        return vals.min() if len(vals) else None

    def max(self) -> Any:
        vals = self._non_null()
        return vals.max() if len(vals) else None

    def mode(self) -> Any:
        """Most frequent non-null value (smallest on ties, like sklearn)."""
        counts = self.value_counts()
        if not counts:
            return None
        best = max(counts.values())
        candidates = [k for k, c in counts.items() if c == best]
        try:
            return min(candidates)
        except TypeError:
            return candidates[0]
