"""Group-by and aggregation with pandas semantics.

Differences from pandas that are deliberate and documented:

* results always carry the group keys as regular columns (pandas
  ``as_index=False``), because the SQL translation produces them as columns;
* group keys are sorted ascending (pandas ``sort=True`` default);
* null group keys are dropped (pandas ``dropna=True`` default).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import FrameError
from repro.frame import missing
from repro.frame.dataframe import DataFrame
from repro.frame.series import Series

__all__ = ["GroupBy", "AGGREGATE_FUNCTIONS"]


def _agg_mean(values: np.ndarray) -> float:
    return Series(values).mean()


def _agg_sum(values: np.ndarray) -> Any:
    return Series(values).sum()


def _agg_count(values: np.ndarray) -> int:
    return Series(values).count()


def _agg_min(values: np.ndarray) -> Any:
    return Series(values).min()


def _agg_max(values: np.ndarray) -> Any:
    return Series(values).max()


def _agg_std(values: np.ndarray) -> float:
    # pandas agg('std') uses the sample standard deviation (ddof=1)
    return Series(values).std(ddof=1)


def _agg_median(values: np.ndarray) -> float:
    return Series(values).median()


def _agg_size(values: np.ndarray) -> int:
    return len(values)


#: pandas aggregation name -> implementation.  The SQL backend has the
#: matching lookup table that renames these to SQL aggregates (§5.1.5).
AGGREGATE_FUNCTIONS: dict[str, Callable[[np.ndarray], Any]] = {
    "mean": _agg_mean,
    "sum": _agg_sum,
    "count": _agg_count,
    "min": _agg_min,
    "max": _agg_max,
    "std": _agg_std,
    "median": _agg_median,
    "size": _agg_size,
}


class GroupBy:
    """Deferred group-by handle, materialised by :meth:`agg`."""

    def __init__(self, frame: DataFrame, keys: Sequence[str]) -> None:
        self._frame = frame
        self._keys = list(keys)
        self._groups: dict[tuple, list[int]] | None = None

    @property
    def keys(self) -> list[str]:
        return list(self._keys)

    @property
    def frame(self) -> DataFrame:
        return self._frame

    def groups(self) -> dict[tuple, list[int]]:
        """Group key tuple -> row positions, sorted by key."""
        if self._groups is None:
            arrays = [self._frame.column_array(k) for k in self._keys]
            null_mask = np.zeros(len(self._frame), dtype=bool)
            for arr in arrays:
                null_mask |= missing.isnull_array(arr)
            buckets: dict[tuple, list[int]] = {}
            for i in np.flatnonzero(~null_mask):
                key = tuple(arr[i] for arr in arrays)
                buckets.setdefault(key, []).append(int(i))
            try:
                ordered = sorted(buckets)
            except TypeError:
                ordered = sorted(buckets, key=lambda k: tuple(str(v) for v in k))
            self._groups = {key: buckets[key] for key in ordered}
        return self._groups

    def _resolve(self, column: str, func: str | Callable) -> Callable[[np.ndarray], Any]:
        if callable(func):
            return func
        try:
            return AGGREGATE_FUNCTIONS[func]
        except KeyError:
            raise FrameError(f"unknown aggregation function: {func!r}") from None

    def agg(self, spec: dict | None = None, **named: tuple[str, str]) -> DataFrame:
        """Aggregate groups.

        Accepts pandas named-aggregation syntax
        ``agg(out=('col', 'func'))`` or a dict ``agg({'col': 'func'})``.
        """
        requests: list[tuple[str, str, str | Callable]] = []
        if spec:
            for column, func in spec.items():
                requests.append((column, column, func))
        for out_name, pair in named.items():
            if not (isinstance(pair, tuple) and len(pair) == 2):
                raise FrameError(
                    "named aggregation values must be ('column', 'func') tuples"
                )
            requests.append((out_name, pair[0], pair[1]))
        if not requests:
            raise FrameError("agg requires at least one aggregation")

        groups = self.groups()
        columns: dict[str, list] = {k: [] for k in self._keys}
        for out_name, _, _ in requests:
            columns[out_name] = []
        for key, positions in groups.items():
            for k, value in zip(self._keys, key):
                columns[k].append(value)
            pos = np.asarray(positions)
            for out_name, column, func in requests:
                values = self._frame.column_array(column)[pos]
                columns[out_name].append(self._resolve(column, func)(values))
        return DataFrame({name: vals for name, vals in columns.items()})
