"""Hash-join based ``merge`` with pandas semantics.

pandas treats null as a joinable value (a null key on the left matches a
null key on the right) — the paper mimics this in SQL by extending the join
condition with ``(l.c IS NULL AND r.c IS NULL)``.  The hash join below
normalises nulls to a sentinel so they compare equal.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FrameError
from repro.frame import missing
from repro.frame.dataframe import DataFrame

__all__ = ["merge", "merge_from_positions", "merge_with_positions"]

_NULL_KEY = object()  # sentinel making null join keys equal to each other


def _key_tuple(arrays: list[np.ndarray], position: int) -> tuple:
    out = []
    for arr in arrays:
        value = arr[position]
        if missing.is_na_scalar(value):
            out.append(_NULL_KEY)
        else:
            out.append(value)
    return tuple(out)


def merge_with_positions(
    left: DataFrame,
    right: DataFrame,
    on: str | Sequence[str] | None = None,
    how: str = "inner",
) -> tuple[np.ndarray, np.ndarray]:
    """Compute join row positions.

    Returns ``(left_positions, right_positions)`` with -1 marking an outer
    row without a partner.  Inner joins preserve left-row order, matching
    pandas.
    """
    if how == "cross":
        n_left, n_right = len(left), len(right)
        left_pos = np.repeat(np.arange(n_left), n_right)
        right_pos = np.tile(np.arange(n_right), n_left)
        return left_pos, right_pos
    if on is None:
        raise FrameError("merge requires 'on' columns (except how='cross')")
    keys = [on] if isinstance(on, str) else list(on)
    for key in keys:
        if key not in left:
            raise FrameError(f"merge key {key!r} missing from left frame")
        if key not in right:
            raise FrameError(f"merge key {key!r} missing from right frame")
    left_arrays = [left.column_array(k) for k in keys]
    right_arrays = [right.column_array(k) for k in keys]

    table: dict[tuple, list[int]] = {}
    for j in range(len(right)):
        table.setdefault(_key_tuple(right_arrays, j), []).append(j)

    left_pos: list[int] = []
    right_pos: list[int] = []
    matched_right: set[int] = set()
    for i in range(len(left)):
        partners = table.get(_key_tuple(left_arrays, i))
        if partners:
            for j in partners:
                left_pos.append(i)
                right_pos.append(j)
                matched_right.add(j)
        elif how in ("left", "outer"):
            left_pos.append(i)
            right_pos.append(-1)
    if how in ("right", "outer"):
        for j in range(len(right)):
            if j not in matched_right:
                left_pos.append(-1)
                right_pos.append(j)
    elif how not in ("inner", "left"):
        raise FrameError(f"unsupported join type: {how!r}")
    return (
        np.asarray(left_pos, dtype=np.int64),
        np.asarray(right_pos, dtype=np.int64),
    )


def _take(arr: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Gather with -1 producing null."""
    has_missing = (positions < 0).any()
    safe = np.where(positions < 0, 0, positions)
    out = arr[safe]
    if has_missing:
        out = missing.promote_for_null(out)
        if out.dtype.kind == "f":
            out[positions < 0] = np.nan
        else:
            out = out.astype(object)
            out[positions < 0] = None
    return out


def merge(
    left: DataFrame,
    right: DataFrame,
    on: str | Sequence[str] | None = None,
    how: str = "inner",
    suffixes: tuple[str, str] = ("_x", "_y"),
) -> DataFrame:
    """Join two frames on equal key values (pandas ``DataFrame.merge``)."""
    left_pos, right_pos = merge_with_positions(left, right, on=on, how=how)
    return merge_from_positions(left, right, left_pos, right_pos, on, how, suffixes)


def merge_from_positions(
    left: DataFrame,
    right: DataFrame,
    left_pos: np.ndarray,
    right_pos: np.ndarray,
    on: str | Sequence[str] | None = None,
    how: str = "inner",
    suffixes: tuple[str, str] = ("_x", "_y"),
) -> DataFrame:
    """Assemble the merge result from precomputed row positions.

    Split out so lineage tracking can reuse the position arrays without
    running the hash join twice.
    """
    keys = [] if on is None else ([on] if isinstance(on, str) else list(on))
    key_set = set(keys)

    columns: dict[str, np.ndarray] = {}
    left_names = left.columns
    right_names = [c for c in right.columns if c not in key_set]
    collisions = (set(left_names) - key_set) & set(right_names)

    for name in left_names:
        source = left.column_array(name)
        if name in key_set:
            values = _take(source, left_pos)
            if how in ("right", "outer"):
                fallback = _take(right.column_array(name), right_pos)
                fill = missing.isnull_array(values)
                if fill.any():
                    values = values.astype(object)
                    values[fill] = fallback[fill]
            columns[name] = values
        else:
            out_name = name + suffixes[0] if name in collisions else name
            columns[out_name] = _take(source, left_pos)
    for name in right_names:
        out_name = name + suffixes[1] if name in collisions else name
        columns[out_name] = _take(right.column_array(name), right_pos)
    index = np.arange(len(left_pos), dtype=np.int64)
    return DataFrame._from_arrays(columns, index)
