"""``repro.frame`` — a numpy-backed dataframe library with pandas semantics.

This package is the input language of the SQL transpiler.  It implements the
pandas operations listed in Table 1 of the paper (``read_csv``, ``merge``,
``groupby``/``agg``, projection and selection via ``__getitem__``,
arithmetic and boolean operators, ``isin``, ``dropna``, ``replace``) with
pandas null semantics, and is monkey-patchable in the same way mlinspect
patches pandas.

Usage mirrors pandas::

    from repro import frame as pd

    data = pd.read_csv("patients.csv", na_values="?")
    data = data[data["county"].isin(["county2", "county3"])]
"""

from repro.frame.dataframe import DataFrame, concat
from repro.frame.groupby import GroupBy
from repro.frame.io import read_csv
from repro.frame.merge import merge
from repro.frame.missing import NA, is_na_scalar
from repro.frame.series import Series

__all__ = [
    "DataFrame",
    "GroupBy",
    "NA",
    "Series",
    "concat",
    "is_na_scalar",
    "merge",
    "read_csv",
]
