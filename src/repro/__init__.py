"""Reproduction of *Blue Elephants Inspecting Pandas* (EDBT 2023).

The package is organised as a set of substrates plus the paper's core
contribution:

``repro.frame``
    A numpy-backed dataframe library with pandas semantics (the transpiler's
    input language).
``repro.learn``
    A scikit-learn-style preprocessing and model library.
``repro.sqldb``
    An in-process SQL database engine with two execution profiles that stand
    in for PostgreSQL (materialising) and Umbra (pipelined).
``repro.inspection``
    An mlinspect-style pipeline inspection framework (monkey patching,
    dataflow DAG, inspections and checks).
``repro.core``
    The SQL backend: transpilation of pipelines to SQL with tuple tracking
    and in-database bias inspection.
``repro.datasets``
    Seeded synthetic generators for the healthcare, compas, adult and
    NYC-taxi datasets used in the paper's evaluation.
``repro.pipelines``
    The four evaluation pipelines (Table 1 of the paper) as runnable source.
"""

__version__ = "1.0.0"

from repro import frame  # noqa: F401  (re-export for convenience)

__all__ = ["frame", "__version__"]
