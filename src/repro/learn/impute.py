"""Missing-value imputation (scikit-learn's ``SimpleImputer``).

The fitting step computes one substitute per column (§5.2.1 of the paper);
the SQL translation reproduces the same statistic with an aggregating
subquery wrapped in ``COALESCE``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.frame import missing
from repro.frame.series import Series
from repro.learn.base import BaseEstimator, TransformerMixin, as_matrix, check_is_fitted

__all__ = ["SimpleImputer"]

_STRATEGIES = ("mean", "median", "most_frequent", "constant")


class SimpleImputer(BaseEstimator, TransformerMixin):
    """Replace nulls with a per-column statistic computed at fit time.

    Parameters follow scikit-learn: ``strategy`` is one of ``mean``,
    ``median``, ``most_frequent`` or ``constant`` (with ``fill_value``).
    """

    def __init__(self, strategy: str = "mean", fill_value: Any = None) -> None:
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; use one of {_STRATEGIES}")
        self.strategy = strategy
        self.fill_value = fill_value
        self.statistics_: list[Any] | None = None

    def _column_statistic(self, column: np.ndarray) -> Any:
        series = Series(column)
        if self.strategy == "mean":
            return series.mean()
        if self.strategy == "median":
            return series.median()
        if self.strategy == "most_frequent":
            return series.mode()
        return self.fill_value

    def fit(self, X: Any, y: Any = None) -> "SimpleImputer":
        matrix = as_matrix(X)
        self.statistics_ = [
            self._column_statistic(matrix[:, j]) for j in range(matrix.shape[1])
        ]
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "statistics_")
        matrix = as_matrix(X).copy()
        if matrix.shape[1] != len(self.statistics_):
            raise ValueError(
                f"fitted on {len(self.statistics_)} columns, "
                f"got {matrix.shape[1]}"
            )
        for j, substitute in enumerate(self.statistics_):
            column = matrix[:, j]
            for i in range(len(column)):
                if missing.is_na_scalar(column[i]):
                    matrix[i, j] = substitute
        return matrix
