"""Evaluation metrics."""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["accuracy_score", "log_loss"]


def _flatten_labels(y: Any) -> np.ndarray:
    arr = np.asarray(y)
    if arr.ndim == 2 and arr.shape[1] == 1:
        arr = arr.ravel()
    return arr


def accuracy_score(y_true: Any, y_pred: Any) -> float:
    """Fraction of exactly matching labels."""
    t = _flatten_labels(y_true)
    p = _flatten_labels(y_pred)
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    if len(t) == 0:
        return 0.0
    return float(np.mean(t.astype(np.float64) == p.astype(np.float64)))


def log_loss(y_true: Any, proba: Any, eps: float = 1e-12) -> float:
    """Binary cross-entropy of predicted probabilities."""
    t = _flatten_labels(y_true).astype(np.float64)
    p = np.clip(_flatten_labels(proba).astype(np.float64), eps, 1.0 - eps)
    return float(-np.mean(t * np.log(p) + (1.0 - t) * np.log(1.0 - p)))
