"""Estimator base classes mirroring the scikit-learn fit/transform contract."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import NotFittedError
from repro.frame.dataframe import DataFrame
from repro.frame.series import Series

__all__ = ["BaseEstimator", "TransformerMixin", "check_is_fitted", "as_matrix"]


def as_matrix(X: Any) -> np.ndarray:
    """Coerce DataFrame / Series / array-like input to a 2-D object matrix.

    Transformers work on object matrices so that string categories and
    nulls survive; numeric transformers cast as needed.
    """
    if isinstance(X, DataFrame):
        return X.to_numpy(dtype=object)
    if isinstance(X, Series):
        return X.values.astype(object).reshape(-1, 1)
    arr = np.asarray(X)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"expected 2-D input, got shape {arr.shape}")
    return arr.astype(object)


class BaseEstimator:
    """Minimal parameter container matching sklearn's introspection style."""

    def get_params(self) -> dict[str, Any]:
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and not key.endswith("_")
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


class TransformerMixin:
    """Provides ``fit_transform`` for transformers defining fit + transform."""

    def fit_transform(self, X: Any, y: Any = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


def check_is_fitted(estimator: Any, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless *attribute* exists on the estimator."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} must be fitted before use "
            f"(missing {attribute!r})"
        )
