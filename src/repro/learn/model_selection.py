"""Dataset splitting utilities (scikit-learn ``train_test_split``)."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import LearnError
from repro.frame.dataframe import DataFrame
from repro.frame.series import Series

__all__ = ["split_positions", "train_test_split"]


def _take(data: Any, positions: np.ndarray) -> Any:
    if isinstance(data, DataFrame):
        cols = {name: data.column_array(name)[positions] for name in data.columns}
        return DataFrame._from_arrays(cols, data.index[positions])
    if isinstance(data, Series):
        return Series(
            data.values[positions], name=data.name, index=data.index[positions]
        )
    return np.asarray(data)[positions]


def split_positions(
    n: int,
    test_size: float = 0.25,
    random_state: int | None = None,
    shuffle: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Row positions for (train, test); deterministic given random_state."""
    if not 0.0 < test_size < 1.0:
        raise LearnError("test_size must be a fraction in (0, 1)")
    n_test = max(1, int(round(n * test_size)))
    positions = np.arange(n)
    if shuffle:
        rng = np.random.default_rng(random_state)
        rng.shuffle(positions)
    return positions[n_test:], positions[:n_test]


def train_test_split(
    *arrays: Any,
    test_size: float = 0.25,
    random_state: int | None = None,
    shuffle: bool = True,
) -> list[Any]:
    """Split each input into a train and a test part along rows.

    Returns ``[a_train, a_test, b_train, b_test, ...]`` like sklearn.
    """
    if not arrays:
        raise LearnError("train_test_split requires at least one array")
    n = len(arrays[0])
    for arr in arrays[1:]:
        if len(arr) != n:
            raise LearnError("all inputs must have the same number of rows")
    train_positions, test_positions = split_positions(
        n, test_size, random_state, shuffle
    )
    out: list[Any] = []
    for arr in arrays:
        out.append(_take(arr, train_positions))
        out.append(_take(arr, test_positions))
    return out
