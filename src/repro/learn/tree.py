"""A small CART decision-tree classifier (used by the adult-simple pipeline)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import NotFittedError
from repro.learn.base import BaseEstimator
from repro.learn.metrics import accuracy_score

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    prediction: float
    feature: int | None = None
    threshold: float | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


class DecisionTreeClassifier(BaseEstimator):
    """Binary CART with gini impurity and axis-aligned threshold splits."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        max_thresholds: int = 32,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_thresholds = max_thresholds
        self._root: _Node | None = None

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float, float] | None:
        n, d = X.shape
        parent_counts = np.array([(y == 0).sum(), (y == 1).sum()])
        parent_gini = _gini(parent_counts)
        best: tuple[int, float, float] | None = None
        for j in range(d):
            column = X[:, j]
            values = np.unique(column)
            if len(values) < 2:
                continue
            if len(values) > self.max_thresholds:
                quantiles = np.linspace(0, 1, self.max_thresholds + 2)[1:-1]
                candidates = np.unique(np.quantile(column, quantiles))
            else:
                candidates = (values[:-1] + values[1:]) / 2.0
            for threshold in candidates:
                left = column <= threshold
                n_left = int(left.sum())
                if n_left == 0 or n_left == n:
                    continue
                y_left, y_right = y[left], y[~left]
                gain = parent_gini - (
                    n_left / n * _gini(np.array([(y_left == 0).sum(), (y_left == 1).sum()]))
                    + (n - n_left) / n * _gini(
                        np.array([(y_right == 0).sum(), (y_right == 1).sum()])
                    )
                )
                if best is None or gain > best[2]:
                    best = (j, float(threshold), float(gain))
        if best is None or best[2] <= 1e-12:
            return None
        return best

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        prediction = float(y.mean()) if len(y) else 0.0
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or prediction in (0.0, 1.0)
        ):
            return _Node(prediction)
        split = self._best_split(X, y)
        if split is None:
            return _Node(prediction)
        feature, threshold, _ = split
        mask = X[:, feature] <= threshold
        return _Node(
            prediction,
            feature=feature,
            threshold=threshold,
            left=self._grow(X[mask], y[mask], depth + 1),
            right=self._grow(X[~mask], y[~mask], depth + 1),
        )

    def fit(self, X: Any, y: Any) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y, dtype=np.float64).ravel()
        self._root = self._grow(X, y, depth=0)
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        p1 = np.empty(len(X))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            p1[i] = node.prediction
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: Any) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] > 0.5).astype(np.int64)

    def score(self, X: Any, y: Any) -> float:
        return accuracy_score(y, self.predict(X))

    def to_tuples(self) -> tuple:
        """The fitted tree as nested tuples ``(prediction, feature,
        threshold, left, right)`` — an immutable, picklable form suitable
        for catalog storage (``TRAIN``) and structural comparison."""
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")

        def encode(node: _Node) -> tuple:
            if node.is_leaf:
                return (node.prediction, None, None, None, None)
            return (
                node.prediction,
                node.feature,
                node.threshold,
                encode(node.left),
                encode(node.right),
            )

        return encode(self._root)

    @classmethod
    def from_tuples(cls, tree: tuple, **params: Any) -> "DecisionTreeClassifier":
        """Rehydrate a fitted tree from :meth:`to_tuples` output."""

        def decode(encoded: tuple) -> _Node:
            prediction, feature, threshold, left, right = encoded
            if feature is None:
                return _Node(float(prediction))
            return _Node(
                float(prediction),
                feature=int(feature),
                threshold=float(threshold),
                left=decode(left),
                right=decode(right),
            )

        estimator = cls(**params)
        estimator._root = decode(tree)
        return estimator
