"""Linear classifiers trained with gradient descent.

``LogisticRegression`` uses full-batch gradient descent with L2
regularisation (deterministic given the data); ``SGDClassifier`` uses
seeded stochastic updates.  Both expose the sklearn predict/score surface
used by the compas and adult pipelines.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import NotFittedError
from repro.learn.base import BaseEstimator
from repro.learn.metrics import accuracy_score

__all__ = ["LinearRegression", "LogisticRegression", "SGDClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.tanh(0.5 * z))


def _prepare_xy(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    y = np.asarray(y, dtype=np.float64).ravel()
    if len(X) != len(y):
        raise ValueError("X and y must have the same number of rows")
    return X, y


class _BinaryLinearClassifier(BaseEstimator):
    """Shared surface of the binary linear classifiers."""

    coef_: np.ndarray | None = None
    intercept_: float | None = None

    def decision_function(self, X: Any) -> np.ndarray:
        if self.coef_ is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: Any) -> np.ndarray:
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: Any) -> np.ndarray:
        return (self.decision_function(X) > 0.0).astype(np.int64)

    def score(self, X: Any, y: Any) -> float:
        return accuracy_score(y, self.predict(X))

    @classmethod
    def from_coefficients(
        cls, coef: Any, intercept: float, **params: Any
    ) -> "_BinaryLinearClassifier":
        """Rehydrate a fitted estimator from stored weights (the path a
        catalog-stored ``TRAIN`` model takes back into ``repro.learn``)."""
        estimator = cls(**params)
        estimator.coef_ = np.asarray(coef, dtype=np.float64).ravel()
        estimator.intercept_ = float(intercept)
        return estimator


class LogisticRegression(_BinaryLinearClassifier):
    """Binary logistic regression via full-batch gradient descent."""

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 500,
        learning_rate: float = 0.5,
        tol: float = 1e-6,
    ) -> None:
        self.C = C
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.tol = tol

    def fit(self, X: Any, y: Any) -> "LogisticRegression":
        X, y = _prepare_xy(X, y)
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        l2 = 1.0 / (self.C * n)
        for _ in range(self.max_iter):
            p = _sigmoid(X @ w + b)
            error = p - y
            grad_w = X.T @ error / n + l2 * w
            grad_b = float(error.mean())
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
            if np.abs(grad_w).max(initial=abs(grad_b)) < self.tol:
                break
        self.coef_ = w
        self.intercept_ = b
        return self


class LinearRegression(_BinaryLinearClassifier):
    """Least-squares regression via full-batch gradient descent.

    Same loop shape as :class:`LogisticRegression` (deterministic given
    the data) so the in-database trainer can reproduce it with SQL
    aggregates; ``predict`` returns the continuous response.
    """

    def __init__(
        self,
        max_iter: int = 500,
        learning_rate: float = 0.1,
        tol: float = 1e-6,
    ) -> None:
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.tol = tol

    def fit(self, X: Any, y: Any) -> "LinearRegression":
        X, y = _prepare_xy(X, y)
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.max_iter):
            error = X @ w + b - y
            grad_w = X.T @ error / n
            grad_b = float(error.mean())
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
            if np.abs(grad_w).max(initial=abs(grad_b)) < self.tol:
                break
        self.coef_ = w
        self.intercept_ = b
        return self

    def predict(self, X: Any) -> np.ndarray:
        return self.decision_function(X)

    def score(self, X: Any, y: Any) -> float:
        """Coefficient of determination (R²), sklearn-style."""
        y = np.asarray(y, dtype=np.float64).ravel()
        residual = float(((y - self.predict(X)) ** 2).sum())
        total = float(((y - y.mean()) ** 2).sum())
        return 1.0 - residual / total if total else 0.0


class SGDClassifier(_BinaryLinearClassifier):
    """Logistic-loss stochastic gradient descent classifier."""

    def __init__(
        self,
        alpha: float = 1e-4,
        max_iter: int = 20,
        eta0: float = 0.1,
        random_state: int | None = None,
    ) -> None:
        self.alpha = alpha
        self.max_iter = max_iter
        self.eta0 = eta0
        self.random_state = random_state

    def fit(self, X: Any, y: Any) -> "SGDClassifier":
        X, y = _prepare_xy(X, y)
        n, d = X.shape
        rng = np.random.default_rng(self.random_state)
        w = np.zeros(d)
        b = 0.0
        step = 0
        for _ in range(self.max_iter):
            order = rng.permutation(n)
            for i in order:
                step += 1
                eta = self.eta0 / (1.0 + 0.01 * step)
                p = _sigmoid(float(X[i] @ w + b))
                error = p - y[i]
                w -= eta * (error * X[i] + self.alpha * w)
                b -= eta * error
        self.coef_ = w
        self.intercept_ = b
        return self
