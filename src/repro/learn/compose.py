"""Column-wise transformer composition (scikit-learn ``ColumnTransformer``)."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import LearnError
from repro.frame.dataframe import DataFrame
from repro.learn.base import BaseEstimator, TransformerMixin

__all__ = ["ColumnTransformer"]


class ColumnTransformer(BaseEstimator, TransformerMixin):
    """Apply different transformers to different columns of a DataFrame.

    ``transformers`` is a list of ``(name, transformer, columns)`` triples;
    outputs are horizontally stacked in list order, matching sklearn.
    """

    def __init__(self, transformers: Sequence[tuple[str, Any, Sequence[str]]]) -> None:
        names = [name for name, _, _ in transformers]
        if len(set(names)) != len(names):
            raise LearnError("transformer names must be unique")
        self.transformers = list(transformers)
        self.fitted_: bool | None = None

    def _slice(self, X: DataFrame, columns: Sequence[str]) -> DataFrame:
        if not isinstance(X, DataFrame):
            raise LearnError("ColumnTransformer requires a DataFrame input")
        return X[list(columns)]

    def fit(self, X: DataFrame, y: Any = None) -> "ColumnTransformer":
        for _, transformer, columns in self.transformers:
            transformer.fit(self._slice(X, columns))
        self.fitted_ = True
        return self

    def transform(self, X: DataFrame) -> np.ndarray:
        if self.fitted_ is None:
            raise LearnError("ColumnTransformer must be fitted before transform")
        blocks = []
        for _, transformer, columns in self.transformers:
            block = np.asarray(
                transformer.transform(self._slice(X, columns)), dtype=np.float64
            )
            if block.ndim == 1:
                block = block.reshape(-1, 1)
            blocks.append(block)
        if not blocks:
            return np.zeros((len(X), 0))
        return np.hstack(blocks)

    def fit_transform(self, X: DataFrame, y: Any = None) -> np.ndarray:
        return self.fit(X, y).transform(X)
