"""``repro.learn`` — a scikit-learn-style preprocessing and model library.

Implements the transformers of §5.2 of the paper (`SimpleImputer`,
`OneHotEncoder`, `StandardScaler`, `KBinsDiscretizer`, `Binarizer`,
`label_binarize`) plus composition (`ColumnTransformer`, `Pipeline`),
splitting, metrics and the downstream models used by the evaluation
pipelines (logistic regression, SGD, decision tree, a small MLP standing in
for the Keras network).
"""

from repro.learn.base import BaseEstimator, TransformerMixin
from repro.learn.compose import ColumnTransformer
from repro.learn.impute import SimpleImputer
from repro.learn.linear_model import (
    LinearRegression,
    LogisticRegression,
    SGDClassifier,
)
from repro.learn.metrics import accuracy_score, log_loss
from repro.learn.model_selection import train_test_split
from repro.learn.neural_network import MLPClassifier
from repro.learn.pipeline import Pipeline
from repro.learn.preprocessing import (
    Binarizer,
    FunctionTransformer,
    KBinsDiscretizer,
    LabelBinarizer,
    OneHotEncoder,
    StandardScaler,
    label_binarize,
)
from repro.learn.tree import DecisionTreeClassifier

__all__ = [
    "BaseEstimator",
    "Binarizer",
    "ColumnTransformer",
    "DecisionTreeClassifier",
    "FunctionTransformer",
    "KBinsDiscretizer",
    "LabelBinarizer",
    "LinearRegression",
    "LogisticRegression",
    "MLPClassifier",
    "OneHotEncoder",
    "Pipeline",
    "SGDClassifier",
    "SimpleImputer",
    "StandardScaler",
    "TransformerMixin",
    "accuracy_score",
    "label_binarize",
    "log_loss",
    "train_test_split",
]
