"""A small feed-forward neural network (stand-in for the paper's Keras model).

The healthcare pipeline trains a neural classifier after preprocessing; the
paper only needs *a* trainable model downstream of the transpiled pipeline.
``MLPClassifier`` is a numpy implementation of a single-hidden-layer ReLU
network with a sigmoid output trained by Adam on binary cross-entropy.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import NotFittedError
from repro.learn.base import BaseEstimator
from repro.learn.metrics import accuracy_score

__all__ = ["MLPClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.tanh(0.5 * z))


class MLPClassifier(BaseEstimator):
    """One-hidden-layer ReLU network with sigmoid output, trained by Adam."""

    def __init__(
        self,
        hidden_size: int = 16,
        epochs: int = 50,
        batch_size: int = 32,
        learning_rate: float = 1e-2,
        random_state: int | None = None,
    ) -> None:
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.random_state = random_state
        self._params: dict[str, np.ndarray] | None = None

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        p = self._params
        hidden = np.maximum(0.0, X @ p["W1"] + p["b1"])
        out = _sigmoid(hidden @ p["W2"] + p["b2"]).ravel()
        return hidden, out

    def fit(self, X: Any, y: Any) -> "MLPClassifier":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y, dtype=np.float64).ravel()
        n, d = X.shape
        rng = np.random.default_rng(self.random_state)
        h = self.hidden_size
        self._params = {
            "W1": rng.normal(0.0, np.sqrt(2.0 / max(d, 1)), size=(d, h)),
            "b1": np.zeros(h),
            "W2": rng.normal(0.0, np.sqrt(1.0 / h), size=(h, 1)),
            "b2": np.zeros(1),
        }
        moments = {k: (np.zeros_like(v), np.zeros_like(v)) for k, v in self._params.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                Xb, yb = X[batch], y[batch]
                hidden, out = self._forward(Xb)
                m = len(batch)
                delta_out = (out - yb).reshape(-1, 1) / m
                grads = {
                    "W2": hidden.T @ delta_out,
                    "b2": delta_out.sum(axis=0),
                }
                delta_hidden = (delta_out @ self._params["W2"].T) * (hidden > 0)
                grads["W1"] = Xb.T @ delta_hidden
                grads["b1"] = delta_hidden.sum(axis=0)
                step += 1
                for key, grad in grads.items():
                    m1, m2 = moments[key]
                    m1[:] = beta1 * m1 + (1 - beta1) * grad
                    m2[:] = beta2 * m2 + (1 - beta2) * grad * grad
                    m1_hat = m1 / (1 - beta1**step)
                    m2_hat = m2 / (1 - beta2**step)
                    self._params[key] -= (
                        self.learning_rate * m1_hat / (np.sqrt(m2_hat) + eps)
                    )
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        if self._params is None:
            raise NotFittedError("MLPClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        _, out = self._forward(X)
        return np.column_stack([1.0 - out, out])

    def predict(self, X: Any) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] > 0.5).astype(np.int64)

    def score(self, X: Any, y: Any) -> float:
        return accuracy_score(y, self.predict(X))
