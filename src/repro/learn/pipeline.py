"""Chained estimator pipeline (scikit-learn ``Pipeline``)."""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import LearnError
from repro.learn.base import BaseEstimator

__all__ = ["Pipeline"]


class Pipeline(BaseEstimator):
    """Sequentially apply transformers, ending in an optional estimator.

    All steps but the last must provide ``fit``/``transform``; the final
    step may be a transformer or a predictor (``fit``/``predict``/``score``).
    """

    def __init__(self, steps: Sequence[tuple[str, Any]]) -> None:
        if not steps:
            raise LearnError("Pipeline requires at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise LearnError("step names must be unique")
        self.steps = list(steps)

    @property
    def named_steps(self) -> dict[str, Any]:
        return dict(self.steps)

    def _transform_until_last(self, X: Any) -> Any:
        for _, step in self.steps[:-1]:
            X = step.transform(X)
        return X

    def fit(self, X: Any, y: Any = None) -> "Pipeline":
        for _, step in self.steps[:-1]:
            X = step.fit_transform(X, y)
        self.steps[-1][1].fit(X, y)
        return self

    def transform(self, X: Any) -> Any:
        X = self._transform_until_last(X)
        return self.steps[-1][1].transform(X)

    def fit_transform(self, X: Any, y: Any = None) -> Any:
        for _, step in self.steps[:-1]:
            X = step.fit_transform(X, y)
        return self.steps[-1][1].fit_transform(X, y)

    def predict(self, X: Any) -> Any:
        X = self._transform_until_last(X)
        return self.steps[-1][1].predict(X)

    def predict_proba(self, X: Any) -> Any:
        X = self._transform_until_last(X)
        return self.steps[-1][1].predict_proba(X)

    def score(self, X: Any, y: Any) -> float:
        X = self._transform_until_last(X)
        return self.steps[-1][1].score(X, y)
