"""Feature preprocessing transformers (scikit-learn subset of §5.2).

Each transformer here has an SQL translation in
``repro.core.translators.sklearn_ops``; tests assert that the SQL output is
numerically identical to these reference implementations.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.frame import missing
from repro.learn.base import BaseEstimator, TransformerMixin, as_matrix, check_is_fitted

__all__ = [
    "Binarizer",
    "FunctionTransformer",
    "KBinsDiscretizer",
    "LabelBinarizer",
    "OneHotEncoder",
    "StandardScaler",
    "label_binarize",
]


class OneHotEncoder(BaseEstimator, TransformerMixin):
    """Encode categorical columns as dense one-hot vectors.

    Categories are the sorted distinct non-null values seen at fit time
    (sklearn's default ``categories='auto'``); unknown values at transform
    time raise unless ``handle_unknown='ignore'``.
    """

    def __init__(self, sparse: bool = False, handle_unknown: str = "error") -> None:
        if sparse:
            raise ValueError("sparse output is not supported; use sparse=False")
        self.sparse = sparse
        self.handle_unknown = handle_unknown
        self.categories_: list[list[Any]] | None = None

    def fit(self, X: Any, y: Any = None) -> "OneHotEncoder":
        matrix = as_matrix(X)
        categories = []
        for j in range(matrix.shape[1]):
            distinct = {
                v for v in matrix[:, j] if not missing.is_na_scalar(v)
            }
            try:
                categories.append(sorted(distinct))
            except TypeError:
                categories.append(sorted(distinct, key=str))
        self.categories_ = categories
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "categories_")
        matrix = as_matrix(X)
        if matrix.shape[1] != len(self.categories_):
            raise ValueError("column count changed between fit and transform")
        blocks = []
        for j, categories in enumerate(self.categories_):
            positions = {c: k for k, c in enumerate(categories)}
            block = np.zeros((matrix.shape[0], len(categories)))
            for i, value in enumerate(matrix[:, j]):
                if missing.is_na_scalar(value):
                    continue
                k = positions.get(value)
                if k is None:
                    if self.handle_unknown == "ignore":
                        continue
                    raise ValueError(f"unknown category {value!r} in column {j}")
                block[i, k] = 1.0
            blocks.append(block)
        return np.hstack(blocks) if blocks else np.zeros((matrix.shape[0], 0))


class StandardScaler(BaseEstimator, TransformerMixin):
    """Standard score ``z = (x - mean) / stddev_pop`` (§5.2.3)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: Any, y: Any = None) -> "StandardScaler":
        matrix = as_matrix(X).astype(np.float64)
        if matrix.shape[0] == 0:
            self.mean_ = np.zeros(matrix.shape[1])
            self.scale_ = np.ones(matrix.shape[1])
            return self
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            self.mean_ = np.nanmean(matrix, axis=0)
            # sklearn uses the population standard deviation (ddof=0) and
            # maps zero deviation to 1 so constant columns pass unscaled.
            scale = np.nanstd(matrix, axis=0, ddof=0)
        self.mean_ = np.nan_to_num(self.mean_)
        scale = np.nan_to_num(scale)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "mean_")
        matrix = as_matrix(X).astype(np.float64)
        return (matrix - self.mean_) / self.scale_


class KBinsDiscretizer(BaseEstimator, TransformerMixin):
    """Uniform-width binning (§5.2.4), with ordinal or one-hot output.

    Only ``strategy='uniform'`` is implemented — the same restriction the
    paper states for its SQL translation.
    """

    def __init__(
        self,
        n_bins: int = 5,
        encode: str = "ordinal",
        strategy: str = "uniform",
    ) -> None:
        if strategy != "uniform":
            raise ValueError("only strategy='uniform' is implemented")
        if encode not in ("ordinal", "onehot-dense"):
            raise ValueError("encode must be 'ordinal' or 'onehot-dense'")
        if n_bins < 2:
            raise ValueError("n_bins must be at least 2")
        self.n_bins = n_bins
        self.encode = encode
        self.strategy = strategy
        self.min_: np.ndarray | None = None
        self.max_: np.ndarray | None = None

    def fit(self, X: Any, y: Any = None) -> "KBinsDiscretizer":
        matrix = as_matrix(X).astype(np.float64)
        self.min_ = np.nanmin(matrix, axis=0)
        self.max_ = np.nanmax(matrix, axis=0)
        return self

    def bin_indices(self, X: Any) -> np.ndarray:
        """Ordinal bin per value: ``floor((x - min) / step)`` clamped to range."""
        check_is_fitted(self, "min_")
        matrix = as_matrix(X).astype(np.float64)
        step = (self.max_ - self.min_) / self.n_bins
        step = np.where(step == 0.0, 1.0, step)
        raw = np.floor((matrix - self.min_) / step)
        return np.clip(raw, 0, self.n_bins - 1)

    def transform(self, X: Any) -> np.ndarray:
        bins = self.bin_indices(X)
        if self.encode == "ordinal":
            return bins
        rows, cols = bins.shape
        out = np.zeros((rows, cols * self.n_bins))
        for j in range(cols):
            for i in range(rows):
                if not np.isnan(bins[i, j]):
                    out[i, j * self.n_bins + int(bins[i, j])] = 1.0
        return out


class Binarizer(BaseEstimator, TransformerMixin):
    """Threshold values to {0, 1}: 1 when ``x > threshold`` (sklearn rule).

    Note Listing 19 in the paper prints ``>=``; we follow scikit-learn's
    strict inequality, and the SQL translator emits the matching predicate.
    """

    def __init__(self, threshold: float = 0.0) -> None:
        self.threshold = threshold

    def fit(self, X: Any, y: Any = None) -> "Binarizer":
        return self

    def transform(self, X: Any) -> np.ndarray:
        matrix = as_matrix(X).astype(np.float64)
        return (matrix > self.threshold).astype(np.float64)


class LabelBinarizer(BaseEstimator, TransformerMixin):
    """Binarise labels; binary problems produce a single 0/1 column."""

    def __init__(self) -> None:
        self.classes_: list[Any] | None = None

    def fit(self, y: Any, _: Any = None) -> "LabelBinarizer":
        values = np.asarray(y).ravel()
        self.classes_ = sorted({v for v in values if not missing.is_na_scalar(v)})
        return self

    def transform(self, y: Any) -> np.ndarray:
        check_is_fitted(self, "classes_")
        return label_binarize(y, classes=self.classes_)


def label_binarize(y: Any, classes: Sequence[Any]) -> np.ndarray:
    """Functional label binarisation (sklearn ``label_binarize``)."""
    values = np.asarray(list(y), dtype=object).ravel()
    classes = list(classes)
    if len(classes) == 2:
        out = np.zeros((len(values), 1))
        for i, v in enumerate(values):
            if v == classes[1]:
                out[i, 0] = 1.0
        return out
    out = np.zeros((len(values), len(classes)))
    positions = {c: j for j, c in enumerate(classes)}
    for i, v in enumerate(values):
        j = positions.get(v)
        if j is not None:
            out[i, j] = 1.0
    return out


class FunctionTransformer(BaseEstimator, TransformerMixin):
    """Apply an arbitrary callable (identity by default)."""

    def __init__(self, func: Callable | None = None) -> None:
        self.func = func

    def fit(self, X: Any, y: Any = None) -> "FunctionTransformer":
        return self

    def transform(self, X: Any) -> Any:
        return X if self.func is None else self.func(X)
