"""Shared CSV-writing helpers for the synthetic dataset generators.

The paper evaluates on the mlinspect example datasets (healthcare, compas,
adult) and the NYC taxi dataset, none of which ship with this offline
reproduction.  The generators in this package are *parametric*: instead of
replicating a fixed file to reach a target size (one of the paper's two
scaling approaches), they synthesise any requested cardinality directly
while preserving the properties the evaluated queries depend on — schemas
(Table 2), join-key relationships, null patterns, and sensitive-group
cardinalities.
"""

from __future__ import annotations

import csv
import os
from typing import Any, Iterable, Sequence

__all__ = ["write_csv", "default_data_dir"]


def default_data_dir() -> str:
    """Directory for generated dataset files (override: REPRO_DATA_DIR)."""
    path = os.environ.get("REPRO_DATA_DIR")
    if not path:
        path = os.path.join(os.path.expanduser("~"), ".cache", "repro-data")
    os.makedirs(path, exist_ok=True)
    return path


def write_csv(
    path: str,
    header: Sequence[str],
    rows: Iterable[Sequence[Any]],
    include_row_numbers: bool = False,
) -> str:
    """Write a CSV file; optionally with the pandas-style unnamed index.

    ``include_row_numbers=True`` reproduces the compas/adult layout noted
    in §6 of the paper: the first column holds row numbers and has no
    header field.
    """
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for i, row in enumerate(rows):
            out = ["" if value is None else value for value in row]
            if include_row_numbers:
                out = [i] + out
            writer.writerow(out)
    return path
