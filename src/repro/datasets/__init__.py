"""``repro.datasets`` — seeded synthetic generators for the evaluation data.

Each generator writes CSV files with the schema of Table 2 of the paper and
returns the file paths.  ``ensure_*`` helpers cache generated files under a
size/seed-specific directory so benchmarks do not regenerate on every run.
"""

from __future__ import annotations

import os

from repro.datasets.adult import ADULT_COLUMNS, generate_adult
from repro.datasets.compas import COMPAS_COLUMNS, generate_compas
from repro.datasets.generate import default_data_dir, write_csv
from repro.datasets.healthcare import (
    AGE_GROUPS,
    COUNTIES,
    COUNTIES_OF_INTEREST,
    RACES,
    generate_healthcare,
)
from repro.datasets.taxi import TAXI_COLUMNS, generate_taxi

__all__ = [
    "ADULT_COLUMNS",
    "AGE_GROUPS",
    "COMPAS_COLUMNS",
    "COUNTIES",
    "COUNTIES_OF_INTEREST",
    "RACES",
    "TAXI_COLUMNS",
    "default_data_dir",
    "ensure_adult",
    "ensure_compas",
    "ensure_healthcare",
    "ensure_taxi",
    "generate_adult",
    "generate_compas",
    "generate_healthcare",
    "generate_taxi",
    "write_csv",
]


def _cache_dir(name: str, size: int, seed: int) -> tuple[str, bool]:
    directory = os.path.join(default_data_dir(), f"{name}_{size}_{seed}")
    exists = os.path.isdir(directory) and bool(os.listdir(directory))
    os.makedirs(directory, exist_ok=True)
    return directory, exists


def ensure_healthcare(n_patients: int = 889, seed: int = 0) -> dict[str, str]:
    directory, cached = _cache_dir("healthcare", n_patients, seed)
    if cached:
        return {
            "patients": os.path.join(directory, "patients.csv"),
            "histories": os.path.join(directory, "histories.csv"),
        }
    return generate_healthcare(directory, n_patients, seed)


def ensure_compas(
    n_train: int = 2167, n_test: int = 1000, seed: int = 0
) -> dict[str, str]:
    directory, cached = _cache_dir("compas", n_train, seed)
    if cached:
        return {
            "train": os.path.join(directory, "compas_train.csv"),
            "test": os.path.join(directory, "compas_test.csv"),
        }
    return generate_compas(directory, n_train, n_test, seed)


def ensure_adult(
    n_train: int = 9771, n_test: int = 2443, seed: int = 0
) -> dict[str, str]:
    directory, cached = _cache_dir("adult", n_train, seed)
    if cached:
        return {
            "train": os.path.join(directory, "adult_train.csv"),
            "test": os.path.join(directory, "adult_test.csv"),
        }
    return generate_adult(directory, n_train, n_test, seed)


def ensure_taxi(n_rows: int = 100_000, seed: int = 0) -> str:
    directory, cached = _cache_dir("taxi", n_rows, seed)
    path = os.path.join(directory, "taxi.csv")
    if cached and os.path.exists(path):
        return path
    return generate_taxi(directory, n_rows, seed)
