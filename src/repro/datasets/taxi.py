"""Synthetic NYC-taxi trip data (for the §6.6 column-scaling experiment)."""

from __future__ import annotations

import os

import numpy as np

from repro.datasets.generate import write_csv

__all__ = ["TAXI_COLUMNS", "generate_taxi"]

TAXI_COLUMNS = [
    "VendorID",
    "passenger_count",
    "trip_distance",
    "PULocationID",
    "DOLocationID",
    "payment_type",
    "fare_amount",
    "tip_amount",
    "total_amount",
]


def generate_taxi(directory: str, n_rows: int = 100_000, seed: int = 0) -> str:
    """Write ``taxi.csv``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    rng = np.random.default_rng(seed)
    passenger_count = rng.choice(
        [1, 2, 3, 4, 5, 6], size=n_rows, p=[0.72, 0.14, 0.05, 0.03, 0.04, 0.02]
    )
    trip_distance = np.round(rng.lognormal(0.7, 0.8, size=n_rows), 2)
    pu = rng.integers(1, 266, size=n_rows)
    do = rng.integers(1, 266, size=n_rows)
    payment = rng.choice([1, 2, 3, 4], size=n_rows, p=[0.7, 0.27, 0.02, 0.01])
    fare = np.round(2.5 + trip_distance * 2.6 + rng.normal(0, 1, size=n_rows), 2)
    tip = np.round(np.maximum(0.0, fare * rng.uniform(0, 0.3, size=n_rows)), 2)

    def rows():
        for i in range(n_rows):
            yield [
                1 + (i % 2),
                int(passenger_count[i]),
                float(trip_distance[i]),
                int(pu[i]),
                int(do[i]),
                int(payment[i]),
                float(fare[i]),
                float(tip[i]),
                float(np.round(fare[i] + tip[i], 2)),
            ]

    return write_csv(os.path.join(directory, "taxi.csv"), TAXI_COLUMNS, rows())
