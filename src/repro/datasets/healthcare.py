"""Synthetic healthcare dataset (patients + histories, Table 2).

Distributions are chosen so the healthcare pipeline behaves like the
paper's running example: counties correlate with age group, so the final
``county IN (...)`` selection shifts the ``age_group`` ratios (the
technical bias of Figure 3/4) while the ``race`` ratios move less.
"""

from __future__ import annotations

import os

import numpy as np

from repro.datasets.generate import write_csv

__all__ = [
    "AGE_GROUPS",
    "COUNTIES",
    "COUNTIES_OF_INTEREST",
    "RACES",
    "generate_healthcare",
]

RACES = ["race1", "race2", "race3"]
COUNTIES = ["county1", "county2", "county3", "county4"]
COUNTIES_OF_INTEREST = ["county2", "county3"]
AGE_GROUPS = ["age_group_1", "age_group_2", "age_group_3", "age_group_4"]

_FIRST_NAMES = ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"]
_LAST_NAMES = ["smith", "jones", "lee", "brown", "garcia", "chen", "patel", "kim"]

#: P(county | age_group): younger groups cluster in county1/county4, older
#: ones in the counties of interest — the source of the age_group bias.
_COUNTY_BY_AGE = {
    "age_group_1": [0.67, 0.01, 0.02, 0.30],
    "age_group_2": [0.40, 0.12, 0.12, 0.36],
    "age_group_3": [0.10, 0.45, 0.35, 0.10],
    "age_group_4": [0.04, 0.50, 0.42, 0.04],
}


def generate_healthcare(
    directory: str, n_patients: int = 889, seed: int = 0
) -> dict[str, str]:
    """Write ``patients.csv`` and ``histories.csv``; returns their paths.

    ``histories`` has one row per patient ssn plus ~1% orphan rows, so the
    ssn merge is realistic (not a pure 1:1 identity join).
    """
    rng = np.random.default_rng(seed)
    os.makedirs(directory, exist_ok=True)

    age_groups = rng.choice(AGE_GROUPS, size=n_patients, p=[0.33, 0.27, 0.25, 0.15])
    counties = np.array(
        [
            rng.choice(COUNTIES, p=_COUNTY_BY_AGE[age_group])
            for age_group in age_groups
        ]
    )
    races = rng.choice(RACES, size=n_patients, p=[0.35, 0.45, 0.20])
    # dashes keep ssn a text column in every reader (and in SQL sniffing)
    ssns = [f"{i // 10000:05d}-{i % 10000:04d}" for i in range(n_patients)]

    patient_rows = []
    for i in range(n_patients):
        patient_rows.append(
            [
                i,
                rng.choice(_FIRST_NAMES),
                rng.choice(_LAST_NAMES),
                races[i],
                counties[i],
                int(rng.poisson(1.2)),
                round(float(rng.lognormal(10.5, 0.6)), 2),
                age_groups[i],
                ssns[i],
            ]
        )
    patients_path = write_csv(
        os.path.join(directory, "patients.csv"),
        [
            "id",
            "first_name",
            "last_name",
            "race",
            "county",
            "num_children",
            "income",
            "age_group",
            "ssn",
        ],
        patient_rows,
    )

    # complications rise with age group and (strongly) with smoking, so the
    # pipeline's label (complications above 1.2x the age-group mean) is
    # learnable from the featurised columns; smoker has ~10% '?' missing
    age_to_rate = {g: 0.5 + 0.8 * k for k, g in enumerate(AGE_GROUPS)}
    history_rows = []
    order = rng.permutation(n_patients)
    for i in order:
        smoker = rng.choice(["yes", "no", "?"], p=[0.25, 0.65, 0.10])
        rate = age_to_rate[age_groups[i]] * (2.4 if smoker == "yes" else 0.7)
        complications = int(rng.poisson(rate))
        history_rows.append([smoker, complications, ssns[i]])
    n_orphans = max(1, n_patients // 100)
    for j in range(n_orphans):
        history_rows.append(["no", 0, f"xxxxx-{j:04d}"])
    histories_path = write_csv(
        os.path.join(directory, "histories.csv"),
        ["smoker", "complications", "ssn"],
        history_rows,
    )
    return {"patients": patients_path, "histories": histories_path}
