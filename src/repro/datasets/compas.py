"""Synthetic COMPAS dataset (train + test files, Table 2 schema).

The full 40+ column schema is generated so projections behave like the
original wide CSV (the width is what makes PostgreSQL's CTE
materialisation expensive in §6.1); only the columns the compas pipeline
actually touches carry meaningful distributions.
"""

from __future__ import annotations

import os

import numpy as np

from repro.datasets.generate import write_csv

__all__ = ["COMPAS_COLUMNS", "generate_compas"]

#: Table 2's compas schema (abridged names kept verbatim where used).
COMPAS_COLUMNS = [
    "id", "name", "first", "last", "compas_screening_date", "sex", "dob",
    "age", "age_cat", "race", "juv_fel_count", "decile_score",
    "juv_misd_count", "juv_other_count", "priors_count",
    "days_b_screening_arrest", "c_jail_in", "c_jail_out", "c_case_number",
    "c_offense_date", "c_arrest_date", "c_days_from_compas",
    "c_charge_degree", "c_charge_desc", "is_recid", "r_case_number",
    "r_charge_degree", "r_days_from_arrest", "r_offense_date",
    "r_charge_desc", "r_jail_in", "r_jail_out", "violent_recid",
    "is_violent_recid", "vr_case_number", "vr_charge_degree",
    "vr_offense_date", "vr_charge_desc", "type_of_assessment",
    "decile_score.1", "score_text", "screening_date",
    "v_type_of_assessment", "v_decile_score", "v_score_text",
    "v_screening_date", "in_custody", "out_custody", "priors_count.1",
    "start", "end", "event", "two_year_recid",
]

_RACES = [
    "African-American", "Caucasian", "Hispanic", "Other", "Asian",
    "Native American",
]
_RACE_P = [0.45, 0.32, 0.12, 0.07, 0.03, 0.01]


def _rows(rng: np.random.Generator, n: int):
    for i in range(n):
        age = int(np.clip(rng.normal(34, 11), 18, 90))
        race = rng.choice(_RACES, p=_RACE_P)
        sex = rng.choice(["Male", "Female"], p=[0.8, 0.2])
        charge_degree = rng.choice(["F", "M", "O"], p=[0.62, 0.35, 0.03])
        days_b = (
            None
            if rng.random() < 0.04
            else int(np.clip(rng.normal(0, 40), -400, 400))
        )
        is_recid = int(rng.choice([-1, 0, 1], p=[0.05, 0.6, 0.35]))
        priors = int(rng.poisson(2.2))
        # latent risk drives decile and score_text so the downstream
        # classifier (features: is_recid one-hot + age bins) has signal
        risk = (
            0.06 * (45 - age) + 0.9 * max(is_recid, 0) + 0.25 * priors
            + rng.normal(0, 0.8)
        )
        decile = int(np.clip(round(3 + 2 * risk), 1, 10))
        if rng.random() < 0.03:
            score_text = "N/A"
        elif decile >= 8:
            score_text = "High"
        elif decile >= 5:
            score_text = "Medium"
        else:
            score_text = "Low"
        row = {name: "" for name in COMPAS_COLUMNS}
        row.update(
            {
                "id": i,
                "name": f"person {i}",
                "first": f"first{i % 97}",
                "last": f"last{i % 89}",
                "compas_screening_date": "2013-01-01",
                "sex": sex,
                "dob": f"19{int(rng.integers(40, 99)):02d}-01-01",
                "age": age,
                "age_cat": "25 - 45" if 25 <= age <= 45 else "Other",
                "race": race,
                "juv_fel_count": int(rng.poisson(0.1)),
                "decile_score": decile,
                "juv_misd_count": int(rng.poisson(0.1)),
                "juv_other_count": int(rng.poisson(0.1)),
                "priors_count": priors,
                "days_b_screening_arrest": days_b,
                "c_jail_in": "2013-01-01 03:00:00",
                "c_jail_out": "2013-01-02 03:00:00",
                "c_case_number": f"case{i}",
                "c_days_from_compas": int(rng.integers(0, 30)),
                "c_charge_degree": charge_degree,
                "c_charge_desc": "Battery",
                "is_recid": is_recid,
                "type_of_assessment": "Risk of Recidivism",
                "decile_score.1": decile,
                "score_text": score_text,
                "screening_date": "2013-01-01",
                "v_type_of_assessment": "Risk of Violence",
                "v_decile_score": int(rng.integers(1, 11)),
                "v_score_text": score_text,
                "v_screening_date": "2013-01-01",
                "in_custody": "2013-01-01",
                "out_custody": "2013-01-02",
                "priors_count.1": priors,
                "start": 0,
                "end": int(rng.integers(1, 1200)),
                "event": int(rng.integers(0, 2)),
                "two_year_recid": int(max(is_recid, 0)),
            }
        )
        yield [row[name] for name in COMPAS_COLUMNS]


def generate_compas(
    directory: str, n_train: int = 2167, n_test: int = 1000, seed: int = 0
) -> dict[str, str]:
    """Write ``compas_train.csv``/``compas_test.csv`` (with row-number column)."""
    os.makedirs(directory, exist_ok=True)
    train = write_csv(
        os.path.join(directory, "compas_train.csv"),
        COMPAS_COLUMNS,
        _rows(np.random.default_rng(seed), n_train),
        include_row_numbers=True,
    )
    test = write_csv(
        os.path.join(directory, "compas_test.csv"),
        COMPAS_COLUMNS,
        _rows(np.random.default_rng(seed + 1), n_test),
        include_row_numbers=True,
    )
    return {"train": train, "test": test}
