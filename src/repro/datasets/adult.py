"""Synthetic Adult (census income) dataset (Table 2 schema)."""

from __future__ import annotations

import os

import numpy as np

from repro.datasets.generate import write_csv

__all__ = ["ADULT_COLUMNS", "generate_adult"]

ADULT_COLUMNS = [
    "age", "workclass", "fnlwgt", "education", "education-num",
    "marital-status", "occupation", "relationship", "race", "sex",
    "capital-gain", "capital-loss", "hours-per-week", "native-country",
    "income-per-year",
]

_WORKCLASSES = ["Private", "Self-emp", "Government", "Unemployed"]
_EDUCATIONS = ["HS-grad", "Some-college", "Bachelors", "Masters", "Doctorate"]
_OCCUPATIONS = ["Craft", "Sales", "Exec-managerial", "Prof-specialty", "Service"]
_RACES = ["White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"]
_COUNTRIES = ["United-States", "Mexico", "Philippines", "Germany", "Canada"]


def _rows(rng: np.random.Generator, n: int):
    for _ in range(n):
        age = int(np.clip(rng.normal(38, 13), 17, 90))
        education_num = int(rng.integers(4, 17))
        hours = int(np.clip(rng.normal(40, 11), 1, 99))
        capital_gain = int(rng.choice([0, rng.integers(100, 20000)], p=[0.92, 0.08]))
        # income correlates with education, age, hours -> learnable labels
        score = (
            0.25 * (education_num - 9)
            + 0.05 * (age - 38)
            + 0.04 * (hours - 40)
            + (1.5 if capital_gain > 0 else 0.0)
            + rng.normal(0, 1.0)
        )
        income = ">50K" if score > 0.8 else "<=50K"
        workclass = None if rng.random() < 0.06 else rng.choice(_WORKCLASSES)
        occupation = None if rng.random() < 0.06 else rng.choice(_OCCUPATIONS)
        yield [
            age,
            workclass if workclass is not None else "?",
            int(rng.integers(20_000, 400_000)),
            rng.choice(_EDUCATIONS),
            education_num,
            rng.choice(["Married", "Never-married", "Divorced"]),
            occupation if occupation is not None else "?",
            rng.choice(["Husband", "Wife", "Own-child", "Not-in-family"]),
            rng.choice(_RACES, p=[0.85, 0.09, 0.03, 0.01, 0.02]),
            rng.choice(["Male", "Female"], p=[0.67, 0.33]),
            capital_gain,
            int(rng.choice([0, rng.integers(100, 4000)], p=[0.95, 0.05])),
            hours,
            rng.choice(_COUNTRIES, p=[0.9, 0.04, 0.02, 0.02, 0.02]),
            income,
        ]


def generate_adult(
    directory: str, n_train: int = 9771, n_test: int = 2443, seed: int = 0
) -> dict[str, str]:
    """Write ``adult_train.csv``/``adult_test.csv`` (with row-number column)."""
    os.makedirs(directory, exist_ok=True)
    train = write_csv(
        os.path.join(directory, "adult_train.csv"),
        ADULT_COLUMNS,
        _rows(np.random.default_rng(seed), n_train),
        include_row_numbers=True,
    )
    test = write_csv(
        os.path.join(directory, "adult_test.csv"),
        ADULT_COLUMNS,
        _rows(np.random.default_rng(seed + 1), n_test),
        include_row_numbers=True,
    )
    return {"train": train, "test": test}
