"""Physical plan representation shared by planner and executor.

Concurrency contract: once built (and pruned by the optimizer), a plan is
immutable.  The executor never mutates plan nodes, which is what makes a
cached plan safe to re-execute — including concurrently from morsel worker
threads, which share one plan while the driving thread dispatches row
ranges (see :mod:`repro.sqldb.parallel`).  Per-execution state lives in
``ExecContext`` and ``Batch`` objects only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sqldb.vector import Vector

__all__ = [
    "Aggregate",
    "AggregateItem",
    "Batch",
    "CompiledExpr",
    "CteRef",
    "column_passthrough",
    "combine_conjuncts",
    "Distinct",
    "Filter",
    "IndexJoin",
    "IndexScan",
    "Join",
    "Limit",
    "OneRow",
    "OutputColumn",
    "PlanNode",
    "Project",
    "ScanSnapshot",
    "ScanTable",
    "Sort",
    "UnionAll",
    "Window",
    "WindowItem",
]


@dataclass
class Batch:
    """A set of equally long column vectors keyed by unique plan keys."""

    length: int
    columns: dict[str, Vector] = field(default_factory=dict)


@dataclass(frozen=True)
class OutputColumn:
    """SQL-visible column name plus its unique key inside batches."""

    name: str
    key: str
    hidden: bool = False  # system columns (ctid) excluded from SELECT *


@dataclass
class CompiledExpr:
    """A bound scalar expression: batch -> vector, with its key footprint."""

    fn: Callable
    refs: frozenset[str]
    text: str = "?"  # best-effort SQL text for EXPLAIN output
    #: source batch key when this expression is a bare column pass-through;
    #: lets the optimizer remap predicates through projections
    is_column: Optional[str] = None
    #: shape metadata for selectivity estimation and index matching:
    #: ``(op, key, operand)`` where op is a comparison operator,
    #: "isnull"/"notnull", "between" (operand = (lo, hi)), "in" (operand =
    #: tuple of literal values) or "const" (operand = the literal value)
    cmp: Optional[tuple] = None

    def __call__(self, batch: Batch, ctx) -> Vector:
        return self.fn(batch, ctx)


class PlanNode:
    """Base class; every node carries an output schema."""

    schema: list[OutputColumn]

    def children(self) -> list["PlanNode"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def walk(self):
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def to_text(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.to_text(indent + 1))
        return "\n".join(lines)


@dataclass
class ScanTable(PlanNode):
    table_name: str
    schema: list[OutputColumn] = field(default_factory=list)
    #: column name in storage -> batch key
    keys: dict[str, str] = field(default_factory=dict)

    def label(self) -> str:
        return f"ScanTable({self.table_name})"


@dataclass
class IndexScan(PlanNode):
    """Base-table access through a secondary index.

    The executor probes the index and gathers only the matching rows; the
    ascending-position contract of :class:`~repro.sqldb.catalog.Index`
    lookups makes the output row order identical to ``ScanTable`` +
    ``Filter`` over the same predicate.
    """

    table_name: str
    index_name: str
    #: probe spec: ``("eq", (v, ...))`` one value per index column,
    #: ``("in", (v, ...))`` membership over a single-column index, or
    #: ``("range", (lo, lo_incl, hi, hi_incl))`` over a sorted index
    lookup: tuple = ()
    schema: list[OutputColumn] = field(default_factory=list)
    #: column name in storage -> batch key
    keys: dict[str, str] = field(default_factory=dict)

    def label(self) -> str:
        kind = self.lookup[0] if self.lookup else "?"
        return (
            f"IndexScan({self.table_name} using {self.index_name}, {kind})"
        )


@dataclass
class IndexJoin(PlanNode):
    """Index-nested-loop join: probe the inner table's index per left row.

    Replaces an equi-``Join`` whose build side is a bare base-table scan
    covered by an index on the join columns.  Output ordering matches the
    hash join exactly: left-row order, ascending inner row positions
    within each key.
    """

    left: PlanNode
    table_name: str  # inner base table, reached through the index
    index_name: str
    kind: str  # inner | left
    #: outer-side key expressions, one per index column (in index order)
    left_keys: list = field(default_factory=list)
    #: inner column name in storage -> batch key
    keys: dict[str, str] = field(default_factory=dict)
    residual: Optional[CompiledExpr] = None
    schema: list[OutputColumn] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.left]

    def label(self) -> str:
        return (
            f"IndexJoin({self.kind}, {self.table_name} "
            f"using {self.index_name})"
        )


@dataclass
class ScanSnapshot(PlanNode):
    """Scan of a materialised view's cached result."""

    view_name: str
    schema: list[OutputColumn] = field(default_factory=list)
    keys: dict[str, str] = field(default_factory=dict)  # snapshot key -> batch key

    def label(self) -> str:
        return f"ScanSnapshot({self.view_name})"


@dataclass
class CteRef(PlanNode):
    """Reference to a shared CTE/view plan (computed once per query).

    ``barrier=True`` marks a PostgreSQL-12-style materialised CTE: an
    optimisation barrier whose plan is kept at full width (no column
    pruning through it).  ``barrier=False`` marks an inlined CTE or view:
    the shared plan is pruned by the union of all references' needs
    (holistic optimisation).
    """

    cte_name: str
    plan: PlanNode
    #: plan output key -> this reference's fresh key
    rename: dict[str, str] = field(default_factory=dict)
    schema: list[OutputColumn] = field(default_factory=list)
    barrier: bool = True

    def children(self) -> list[PlanNode]:
        return [self.plan]

    def label(self) -> str:
        kind = "materialized" if self.barrier else "inlined"
        return f"CteRef({self.cte_name}, {kind})"


@dataclass
class Project(PlanNode):
    child: PlanNode
    items: list[tuple[OutputColumn, CompiledExpr]] = field(default_factory=list)
    #: keys of items wrapped in unnest() requiring row expansion
    unnest_keys: list[str] = field(default_factory=list)
    schema: list[OutputColumn] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        names = ", ".join(out.name for out, _ in self.items[:8])
        suffix = ", ..." if len(self.items) > 8 else ""
        kind = "ProjectUnnest" if self.unnest_keys else "Project"
        return f"{kind}({names}{suffix})"


@dataclass
class Filter(PlanNode):
    child: PlanNode
    predicate: CompiledExpr = None  # type: ignore[assignment]
    schema: list[OutputColumn] = field(default_factory=list)
    #: AND-split predicate parts; with two or more entries the executor
    #: evaluates them sequentially (each on the survivors of the previous
    #: one), which keeps results identical to the combined predicate while
    #: letting the optimizer order them by estimated selectivity
    conjuncts: list[CompiledExpr] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.conjuncts and self.predicate is not None:
            self.conjuncts = [self.predicate]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Filter({self.predicate.text})"


def column_passthrough(key: str) -> CompiledExpr:
    """A compiled expression that reads one batch column unchanged."""

    def fn(batch: Batch, ctx) -> Vector:
        return batch.columns[key]

    return CompiledExpr(fn, frozenset([key]), text=key, is_column=key)


def combine_conjuncts(conjuncts: list[CompiledExpr]) -> CompiledExpr:
    """AND-fold compiled conjuncts into one predicate expression.

    Left-folding over :func:`~repro.sqldb.vector.logical_and` matches what
    compiling the original ``AND`` tree produces (Kleene AND is associative
    and ``logical_and`` emits the normalised values/nulls representation).
    """
    if len(conjuncts) == 1:
        return conjuncts[0]
    from repro.sqldb.vector import logical_and

    refs = frozenset().union(*[c.refs for c in conjuncts])
    parts = list(conjuncts)

    def fn(batch: Batch, ctx) -> Vector:
        out = parts[0](batch, ctx)
        for part in parts[1:]:
            out = logical_and(out, part(batch, ctx))
        return out

    text = "(" + " and ".join(c.text for c in conjuncts) + ")"
    return CompiledExpr(fn, refs, text=text)


@dataclass
class Join(PlanNode):
    left: PlanNode
    right: PlanNode
    kind: str  # inner | left | right | full | cross
    #: key expressions evaluated against the respective side's batch
    left_keys: list[CompiledExpr] = field(default_factory=list)
    right_keys: list[CompiledExpr] = field(default_factory=list)
    null_safe: list[bool] = field(default_factory=list)
    residual: Optional[CompiledExpr] = None
    schema: list[OutputColumn] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"Join({self.kind}, keys={len(self.left_keys)})"


@dataclass
class AggregateItem:
    out: OutputColumn
    func: str
    arg: Optional[CompiledExpr]  # None for count(*)
    distinct: bool = False
    #: aggregate FILTER (WHERE ...) predicate; rows failing it are dropped
    #: from this aggregate's input only
    where: Optional[CompiledExpr] = None


@dataclass
class Aggregate(PlanNode):
    child: PlanNode
    groups: list[tuple[OutputColumn, CompiledExpr]] = field(default_factory=list)
    aggregates: list[AggregateItem] = field(default_factory=list)
    schema: list[OutputColumn] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        aggs = ", ".join(f"{item.func}" for item in self.aggregates)
        return f"Aggregate(groups={len(self.groups)}, [{aggs}])"


@dataclass
class Distinct(PlanNode):
    child: PlanNode
    schema: list[OutputColumn] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class Sort(PlanNode):
    child: PlanNode
    #: (expr, ascending, nulls_first) — ``nulls_first=None`` means the
    #: PostgreSQL default (NULLS LAST when ascending, NULLS FIRST when
    #: descending)
    keys: list[tuple[CompiledExpr, bool, Optional[bool]]] = field(
        default_factory=list
    )
    schema: list[OutputColumn] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class Limit(PlanNode):
    child: PlanNode
    count: Optional[int] = None
    offset: int = 0
    schema: list[OutputColumn] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Limit({self.count}, offset={self.offset})"


@dataclass
class WindowItem:
    out: OutputColumn
    func: str  # rank | dense_rank | row_number
    partition: list[CompiledExpr] = field(default_factory=list)
    order: list[tuple[CompiledExpr, bool]] = field(default_factory=list)


@dataclass
class Window(PlanNode):
    """Appends window-function columns (rank/row_number) to the child."""

    child: PlanNode = None  # type: ignore[assignment]
    windows: list[WindowItem] = field(default_factory=list)
    schema: list[OutputColumn] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        funcs = ", ".join(item.func for item in self.windows)
        return f"Window({funcs})"


@dataclass
class OneRow(PlanNode):
    """Single-row, zero-column input for FROM-less selects."""

    schema: list[OutputColumn] = field(default_factory=list)


@dataclass
class UnionAll(PlanNode):
    parts: list[PlanNode] = field(default_factory=list)
    schema: list[OutputColumn] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return list(self.parts)
