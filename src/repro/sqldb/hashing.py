"""Vectorised key factorisation for joins, grouping and distinct.

Dense int64 codes replace per-row Python key tuples: each key column is
factorised over the union of both join sides (so equal values share codes),
multi-column keys combine codes with mixed-radix arithmetic, and nulls
either get their own shared code (null-safe joins, GROUP BY) or the
invalid code -1 (plain SQL equality, which never matches null).
"""

from __future__ import annotations

import numpy as np

from repro.sqldb.vector import Vector

__all__ = ["INVALID", "factorize_columns", "group_codes"]

INVALID = np.int64(-1)


def _factorize_values(values: np.ndarray, nulls: np.ndarray) -> np.ndarray:
    """Codes >= 0 for non-null values (equal value = equal code), -2 marker
    for nulls (callers decide their meaning)."""
    codes = np.full(len(values), -2, dtype=np.int64)
    present = ~nulls
    if not present.any():
        return codes
    subset = values[present]
    if subset.dtype == object:
        # dict-based factorisation: avoids O(n log n) Python-compare sorts
        # on string columns.  Codes follow value order for determinism.
        mapping: dict = {}
        inverse = np.empty(len(subset), dtype=np.int64)
        get = mapping.get
        for i, value in enumerate(subset):
            code = get(value)
            if code is None:
                code = len(mapping)
                mapping[value] = code
            inverse[i] = code
        codes[present] = inverse
        return codes
    _, inverse = np.unique(subset, return_inverse=True)
    codes[present] = inverse.astype(np.int64)
    return codes


def _combine(parts: list[np.ndarray]) -> np.ndarray:
    """Mixed-radix combination of per-column codes; any -1 stays invalid."""
    combined = parts[0].copy()
    invalid = combined < 0
    for part in parts[1:]:
        radix = int(part.max(initial=-1)) + 1 or 1
        combined = combined * radix + part
        invalid |= part < 0
    combined[invalid] = INVALID
    # densify so downstream bincounts stay small
    valid = ~invalid
    if valid.any():
        _, inverse = np.unique(combined[valid], return_inverse=True)
        combined[valid] = inverse
    return combined


def factorize_columns(
    column_pairs: list[tuple[Vector, Vector]],
    null_safe: list[bool],
) -> tuple[np.ndarray, np.ndarray]:
    """Joint factorisation of the key columns of two join sides.

    Returns (left_codes, right_codes); equal keys across sides share a
    code, and rows whose key can never match carry ``INVALID``.
    """
    n_left = len(column_pairs[0][0])
    left_parts: list[np.ndarray] = []
    right_parts: list[np.ndarray] = []
    for (left, right), safe in zip(column_pairs, null_safe):
        if left.values.dtype == object or right.values.dtype == object:
            values = np.concatenate(
                [left.values.astype(object), right.values.astype(object)]
            )
        else:
            values = np.concatenate(
                [
                    left.values.astype(np.float64, copy=False),
                    right.values.astype(np.float64, copy=False),
                ]
            )
        nulls = np.concatenate([left.nulls, right.nulls])
        codes = _factorize_values(values, nulls)
        null_rows = codes == -2
        if safe:
            codes[null_rows] = codes.max(initial=-1) + 1
        else:
            codes[null_rows] = INVALID
        left_parts.append(codes[:n_left])
        right_parts.append(codes[n_left:])
    combined = _combine([np.concatenate([l, r]) for l, r in zip(left_parts, right_parts)])
    return combined[:n_left], combined[n_left:]


def group_codes(vectors: list[Vector]) -> tuple[np.ndarray, np.ndarray]:
    """Dense group codes treating null as a regular value (GROUP BY).

    Returns (codes, representative_positions); groups are numbered in
    ascending key order and each representative is the first row of its
    group in that ordering.
    """
    length = len(vectors[0])
    parts = []
    for vec in vectors:
        codes = _factorize_values(vec.values, vec.nulls)
        null_rows = codes == -2
        codes[null_rows] = codes.max(initial=-1) + 1
        parts.append(codes)
    combined = _combine(parts)
    uniques, first_positions, inverse = np.unique(
        combined, return_index=True, return_inverse=True
    )
    return inverse.astype(np.int64), first_positions.astype(np.int64)
