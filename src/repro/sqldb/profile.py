"""Execution profiles: the PostgreSQL-like and Umbra-like engine modes.

The paper's performance findings hinge on two strategy dimensions, both of
which are modelled structurally (no artificial delays):

* **CTE materialisation.**  PostgreSQL 12 materialises every CTE unless
  ``NOT MATERIALIZED`` is given — an optimisation barrier: the CTE is
  computed in full width (no column pruning through the boundary) exactly
  once per query.  Umbra treats CTEs like views and inlines them, so unused
  columns and whole unused CTEs are never computed.
* **Operator materialisation.**  The PostgreSQL profile copies every
  operator's output columns (tuple materialisation of a disk-based,
  buffer-backed executor); the Umbra profile pipelines vectors through
  without copies (compiled, fused execution).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Profile", "POSTGRES", "UMBRA", "profile_by_name"]


@dataclass(frozen=True)
class Profile:
    """Engine strategy knobs; see module docstring."""

    name: str
    #: default for CTEs without an explicit [NOT] MATERIALIZED clause
    materialize_ctes_by_default: bool
    #: copy operator outputs (simulates tuple materialisation)
    copy_operator_output: bool
    #: default worker count for morsel-driven parallel execution; 1 keeps
    #: every plan on the serial path (both stock profiles stay serial so
    #: existing shapes are unchanged — ``Database(workers=...)`` or
    #: ``REPRO_SQL_WORKERS`` opt in per connection)
    parallelism: int = 1
    #: rows per morsel when parallel execution is active
    morsel_size: int = 65536
    #: enable the statistics-driven rewrite layer (constant folding,
    #: predicate pushdown, conjunct reordering, join build-side choice);
    #: off by default so stock profiles keep their documented plan shapes —
    #: ``Database(optimize=True)`` opts in per connection
    optimize: bool = False
    #: fan-out of the spill paths (Grace hash join, partitioned
    #: aggregation/distinct) when the memory governor denies a reservation
    spill_partitions: int = 8


POSTGRES = Profile("postgres", materialize_ctes_by_default=True, copy_operator_output=True)
UMBRA = Profile("umbra", materialize_ctes_by_default=False, copy_operator_output=False)

_BY_NAME = {p.name: p for p in (POSTGRES, UMBRA)}


def profile_by_name(name: str) -> Profile:
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; available: {sorted(_BY_NAME)}"
        ) from None
