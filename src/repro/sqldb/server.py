"""Threaded TCP front-end multiplexing clients onto MVCC sessions.

``DatabaseServer`` binds one shared :class:`~repro.sqldb.engine.Database`
behind a socket: every accepted connection gets its own engine
:class:`~repro.sqldb.session.Session` (snapshot isolation, private
transaction state, its own lock identity) and a worker thread that speaks
the length-prefixed JSON protocol of :mod:`repro.sqldb.protocol`.  The
paper's client/server boundary — psycopg2 against a real DBMS — thus
exists for this engine too: the same inspection pipelines run unchanged
over the wire through :class:`repro.core.connectors.RemoteConnector`.

Production-shaped controls, all cheap but real:

* **admission control** — at most ``max_connections`` concurrent
  clients; excess connections are *shed* at accept with a retryable
  SQLSTATE 53300 error frame (the client backoff loop reconnects), and
  the kernel accept queue itself is bounded by ``accept_backlog``;
* **per-connection statement timeout** — a watchdog cooperatively
  cancels a statement that overruns (SQLSTATE 57014), re-arming until
  the cancel lands so a script cannot dodge it between statements;
* **idle timeout** — a connection that sends nothing for
  ``idle_timeout_s`` is closed and its transaction rolled back;
* **out-of-band cancel** — the handshake returns a secret cancel key; a
  second short-lived connection presenting it maps to
  ``Database.cancel(session=...)``, exactly PostgreSQL's
  BackendKeyData/CancelRequest shape;
* **graceful shutdown** — stop accepting, let in-flight statements
  finish (up to a drain budget), refuse new statements with SQLSTATE
  57P01, cancel stragglers, and roll back every open transaction by
  closing its session.

A worker thread never dies on client abuse: malformed frames, oversized
payloads and mid-frame disconnects are answered (best-effort) with a
protocol-violation error frame and the connection torn down, with the
session always closed — pool accounting is restored no matter how the
connection ends.

Run standalone::

    python -m repro.sqldb.server --port 5433 --profile umbra
"""

from __future__ import annotations

import argparse
import secrets
import socket
import threading
import time
from typing import Any, Optional

from repro.errors import (
    AdminShutdown,
    AuthenticationError,
    ProtocolViolation,
    SQLError,
    TooManyConnections,
)
from repro.sqldb.engine import Database
from repro.sqldb.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    error_to_wire,
    recv_frame,
    result_to_wire,
    send_frame,
)

__all__ = ["DatabaseServer", "main"]


def _force_close(sock: socket.socket) -> None:
    """Close a socket another thread may be blocked reading.

    ``close()`` alone does not wake a thread already parked in
    ``recv()`` — the kernel keeps the blocked syscall's reference alive
    and the reader sleeps forever on a dead fd.  ``shutdown(SHUT_RDWR)``
    interrupts the read with EOF first, so the owning worker thread
    unwinds through its teardown immediately."""
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class _StatementWatchdog:
    """Re-arming cooperative cancel for one request's execution.

    ``session.cancel()`` only reaches statements that are in flight when
    it fires, so a single timer could slip between two statements of a
    script; the watchdog re-fires every 100 ms after the deadline until
    disarmed, guaranteeing the cancel lands."""

    _REFIRE_S = 0.1

    def __init__(self, session, timeout_s: float) -> None:
        self._session = session
        self._disarmed = threading.Event()
        self._timer = threading.Timer(timeout_s, self._fire)
        self._timer.daemon = True
        self._timer.start()

    def _fire(self) -> None:
        if self._disarmed.is_set():
            return
        self._session.cancel()
        self._timer = threading.Timer(self._REFIRE_S, self._fire)
        self._timer.daemon = True
        self._timer.start()

    def disarm(self) -> None:
        self._disarmed.set()
        self._timer.cancel()


class _ClientHandler:
    """One connected client: socket, session, worker thread."""

    def __init__(self, server: "DatabaseServer", sock: socket.socket, peer) -> None:
        self.server = server
        self.sock = sock
        self.peer = peer
        self.session = None
        self.cancel_key: Optional[str] = None
        self.busy = False
        self.thread = threading.Thread(
            target=self._run, name=f"repro-sql-client-{peer}", daemon=True
        )

    def start(self) -> None:
        self.thread.start()

    # -- lifecycle ----------------------------------------------------------

    def _run(self) -> None:
        try:
            self._serve()
        except Exception:  # noqa: BLE001 - worker threads never crash out
            self.server._count("handler_errors")
        finally:
            self._teardown()

    def _teardown(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
        if self.session is not None:
            # rolls back any open transaction and releases every lock the
            # dead connection held, so blocked peers unblock immediately
            self.session.close()
            self.session = None
        self.server._detach(self)

    def _send(self, message: dict) -> None:
        send_frame(self.sock, message)

    def _send_error(self, exc: BaseException) -> bool:
        """Best-effort error frame (the peer may already be gone)."""
        try:
            self._send(error_to_wire(exc))
            return True
        except OSError:
            return False

    # -- protocol -----------------------------------------------------------

    def _serve(self) -> None:
        server = self.server
        self.sock.settimeout(server.handshake_timeout_s)
        try:
            first = recv_frame(self.sock, server.max_frame_bytes)
        except ProtocolViolation as exc:
            server._count("protocol_errors")
            self._send_error(exc)
            return
        except (socket.timeout, OSError):
            return
        if first is None:
            return
        if first["type"] == "cancel":
            self._handle_cancel(first)
            return
        if not self._handshake(first):
            return

        options = first.get("options") or {}
        timeout_ms = options.get(
            "statement_timeout_ms", server.statement_timeout_ms
        )
        statement_timeout_s = (
            float(timeout_ms) / 1000.0 if timeout_ms else None
        )

        while True:
            self.sock.settimeout(server.idle_timeout_s)
            try:
                message = recv_frame(self.sock, server.max_frame_bytes)
            except ProtocolViolation as exc:
                server._count("protocol_errors")
                self._send_error(exc)
                return
            except socket.timeout:
                server._count("idle_closed")
                self._send_error(
                    SQLError(
                        "connection closed after "
                        f"{server.idle_timeout_s:g}s idle",
                        sqlstate="57P05",  # idle_session_timeout
                    )
                )
                return
            except OSError:
                return
            if message is None or message["type"] == "close":
                if message is not None:
                    try:
                        self._send({"type": "bye"})
                    except OSError:
                        pass
                return
            if server._draining:
                self._send_error(
                    AdminShutdown("the server is shutting down")
                )
                return
            if message["type"] == "replicate":
                # mode switch: this connection becomes a push stream to
                # a downstream replica until either side drops it
                self._serve_replication(message)
                return
            if not self._handle_request(message, statement_timeout_s):
                return

    def _handshake(self, first: dict) -> bool:
        server = self.server
        if first["type"] != "hello":
            server._count("protocol_errors")
            self._send_error(
                ProtocolViolation(
                    f"expected a hello frame, got {first['type']!r}"
                )
            )
            return False
        if first.get("version") != PROTOCOL_VERSION:
            self._send_error(
                ProtocolViolation(
                    f"protocol version mismatch: server speaks "
                    f"{PROTOCOL_VERSION}, client sent {first.get('version')!r}"
                )
            )
            return False
        if server.auth_token is not None and not secrets.compare_digest(
            str(first.get("auth") or ""), server.auth_token
        ):
            server._count("auth_failures")
            self._send_error(
                AuthenticationError("authentication failed: bad token")
            )
            return False
        self.session = server.database.session()
        self.cancel_key = secrets.token_hex(16)
        server._register_cancel_key(self.cancel_key, self.session)
        self._send(
            {
                "type": "hello_ok",
                "version": PROTOCOL_VERSION,
                "server": "repro-sqldb",
                "profile": server.database.profile.name,
                "session_id": self.session.session_id,
                "cancel_key": self.cancel_key,
            }
        )
        return True

    def _handle_cancel(self, message: dict) -> None:
        """Out-of-band cancel: a fresh connection presenting a session's
        secret key.  Replies ``ok`` whether or not the key matched (no
        probing oracle), like PostgreSQL's silent CancelRequest."""
        session = self.server._session_for_cancel_key(message.get("key"))
        if session is not None:
            self.server.database.cancel(session=session)
            self.server._count("cancels")
        try:
            self._send({"type": "ok"})
        except OSError:
            pass

    def _handle_request(
        self, message: dict, statement_timeout_s: Optional[float]
    ) -> bool:
        """Dispatch one request; ``False`` ends the connection."""
        self.busy = True
        watchdog = None
        if statement_timeout_s is not None and message["type"] in (
            "query",
            "executemany",
        ):
            watchdog = _StatementWatchdog(self.session, statement_timeout_s)
        try:
            reply = self._dispatch(message)
        except ProtocolViolation as exc:
            self.server._count("protocol_errors")
            self._send_error(exc)
            return False
        except SQLError as exc:
            # statement-level failure: report it and keep serving — the
            # session survives, exactly like an interactive psql error.
            # The frame carries the session's (possibly changed)
            # transaction state: a COMMIT that lost first-committer-wins
            # ends the transaction server-side, and the client's cached
            # state must not go stale.
            frame = error_to_wire(exc)
            frame["in_transaction"] = self.session.in_transaction
            try:
                self._send(frame)
                return True
            except OSError:
                return False
        except Exception as exc:  # noqa: BLE001 - never crash the worker
            self.server._count("handler_errors")
            return self._send_error(exc)
        finally:
            if watchdog is not None:
                watchdog.disarm()
            self.busy = False
        try:
            self._send(reply)
        except OSError:
            return False
        return True

    def _dispatch(self, message: dict) -> dict:
        server = self.server
        database = server.database
        session = self.session
        kind = message["type"]
        if kind == "query":
            sql = message.get("sql")
            if not isinstance(sql, str):
                raise ProtocolViolation("query frame requires a 'sql' string")
            params = message.get("params")
            server._count("statements")
            results = database.run_script(
                sql, tuple(params) if params is not None else None,
                session=session,
            )
            return {
                "type": "results",
                "results": [result_to_wire(r) for r in results],
                "in_transaction": session.in_transaction,
            }
        if kind == "executemany":
            sql = message.get("sql")
            seq = message.get("params_seq")
            if not isinstance(sql, str) or not isinstance(seq, list):
                raise ProtocolViolation(
                    "executemany frame requires 'sql' and 'params_seq'"
                )
            server._count("statements")
            rowcount = database.executemany(
                sql, [tuple(row) for row in seq], session=session
            )
            return {
                "type": "ok",
                "rowcount": rowcount,
                "in_transaction": session.in_transaction,
            }
        if kind in ("begin", "commit", "rollback"):
            getattr(database, kind)(session=session)
            return {"type": "ok", "in_transaction": session.in_transaction}
        if kind == "reset":
            if not server.allow_reset:
                raise SQLError(
                    "reset is disabled on this server", sqlstate="42501"
                )
            database.reset_storage()
            return {"type": "ok", "in_transaction": False}
        if kind == "stats":
            frame = {
                "type": "stats",
                "plan_cache": database.plan_cache.stats,
                "operators": database.operator_counters,
                "server": dict(server.stats),
            }
            if database.memory is not None:
                # broker snapshot plus this connection's peak/spilled/shed
                frame["memory"] = database.memory_stats(session)
            return frame
        if kind == "explain_analyze":
            params = message.get("params")
            text = database.explain_analyze(
                message.get("sql", ""),
                tuple(params) if params is not None else None,
            )
            return {"type": "text", "text": text}
        if kind == "analyze":
            names = database.analyze(message.get("table"))
            return {"type": "ok", "names": names}
        if kind == "promote":
            hook = server.promote_hook
            if hook is None:
                raise SQLError(
                    "this server has no promotion hook (not a replica)",
                    sqlstate="0A000",  # feature_not_supported
                )
            server._count("promotions")
            out = hook() or {}
            return {"type": "promoted", **out}
        if kind == "replica_status":
            hook = server.status_hook
            if hook is not None:
                return dict(hook())
            manager = server.replication
            status = {
                "type": "status",
                "role": (
                    "replica" if database.read_only else
                    ("primary" if manager is not None else "standalone")
                ),
                "last_applied": database.last_applied_commit_id,
                "commit_id": database.current_commit_id,
            }
            if manager is not None:
                status["last_commit_id"] = manager.last_commit_id
                status["subscribers"] = manager.subscriber_status()
            return status
        raise ProtocolViolation(f"unknown message type {kind!r}")

    # -- replication stream --------------------------------------------------

    def _serve_replication(self, message: dict) -> None:
        """Push committed WAL batches to one downstream replica.

        Stop-and-wait: one ``wal_batch`` (or ``wal_heartbeat`` after an
        idle period) per round trip, acknowledged by ``replicate_ack``
        carrying the replica's applied position — which doubles as flow
        control and as the synchronous-replication signal.  Any
        transport fault simply ends the subscription; the replica
        reconnects from its last applied commit."""
        server = self.server
        manager = server.replication
        if manager is None:
            self._send_error(
                SQLError(
                    "this server does not stream replication",
                    sqlstate="0A000",  # feature_not_supported
                )
            )
            return
        try:
            start_after = int(message.get("start_after", 0))
        except (TypeError, ValueError):
            self._send_error(
                ProtocolViolation("replicate frame requires integer "
                                  "'start_after'")
            )
            return
        name = str(message.get("name") or f"replica-{self.peer}")
        try:
            sub = manager.subscribe(name, start_after)
        except SQLError as exc:
            self._send_error(exc)
            return
        server._count("replication_streams")
        try:
            if sub.needs_snapshot:
                encoded, last_txn = manager.snapshot_for(sub)
                self._send(
                    {
                        "type": "snapshot",
                        "state": encoded,
                        "last_txn": last_txn,
                        "primary_commit_id": manager.last_commit_id,
                    }
                )
            seq = 0
            while not server._draining:
                batch = manager.next_batch(
                    sub, timeout=server.replication_heartbeat_s
                )
                if batch is None:
                    return  # manager closed (shutdown or demotion)
                commits, tip = batch
                seq += 1
                if commits:
                    frame = {
                        "type": "wal_batch",
                        "seq": seq,
                        "commits": commits,
                        "primary_commit_id": tip,
                    }
                else:
                    frame = {
                        "type": "wal_heartbeat",
                        "seq": seq,
                        "primary_commit_id": tip,
                    }
                self._send(frame)
                if not self._await_ack(seq, manager, sub):
                    return
        except ProtocolViolation as exc:
            server._count("protocol_errors")
            self._send_error(exc)
        except OSError:
            pass
        finally:
            manager.unsubscribe(sub)

    def _await_ack(self, seq: int, manager, sub) -> bool:
        """Read ``replicate_ack`` frames until one covers ``seq``;
        stale re-acks from duplicated frames are recorded and skipped."""
        self.sock.settimeout(self.server.replication_ack_timeout_s)
        while True:
            frame = recv_frame(self.sock, self.server.max_frame_bytes)
            if frame is None or frame["type"] == "close":
                return False
            if frame["type"] != "replicate_ack":
                raise ProtocolViolation(
                    f"expected replicate_ack, got {frame['type']!r}"
                )
            try:
                manager.record_ack(sub, int(frame.get("applied", 0)))
            except (TypeError, ValueError):
                raise ProtocolViolation(
                    "replicate_ack requires integer 'applied'"
                ) from None
            if int(frame.get("seq", -1)) >= seq:
                return True


class DatabaseServer:
    """A socket server over one shared :class:`Database`.

    ``database=None`` creates (and owns) a fresh engine from the
    remaining keyword arguments; passing an existing database serves it
    without taking ownership — in-process sessions and network clients
    then run side by side under the same MVCC.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        auth_token: Optional[str] = None,
        max_connections: int = 64,
        accept_backlog: int = 16,
        statement_timeout_ms: Optional[float] = None,
        idle_timeout_s: Optional[float] = None,
        handshake_timeout_s: float = 5.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        allow_reset: bool = True,
        replication: Optional[Any] = None,
        replication_heartbeat_s: float = 0.5,
        replication_ack_timeout_s: float = 10.0,
        **database_kwargs: Any,
    ) -> None:
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        self._owns_database = database is None
        self.database = (
            Database(**database_kwargs) if database is None else database
        )
        self.host = host
        self._requested_port = port
        self.auth_token = auth_token
        self.max_connections = max_connections
        self.accept_backlog = accept_backlog
        self.statement_timeout_ms = statement_timeout_ms
        self.idle_timeout_s = idle_timeout_s
        self.handshake_timeout_s = handshake_timeout_s
        self.max_frame_bytes = max_frame_bytes
        self.allow_reset = allow_reset
        #: a ReplicationManager serving ``replicate`` subscriptions
        #: (None: replication frames are refused with SQLSTATE 0A000)
        self.replication = replication
        self.replication_heartbeat_s = replication_heartbeat_s
        self.replication_ack_timeout_s = replication_ack_timeout_s
        #: set by a Replica wrapper: the ``promote`` admin frame calls it
        self.promote_hook = None
        #: set by Replica/Primary wrappers: serves ``replica_status``
        self.status_hook = None

        self._listener: Optional[socket.socket] = None
        self._acceptor: Optional[threading.Thread] = None
        self._mutex = threading.Lock()
        self._handlers: set[_ClientHandler] = set()
        self._cancel_keys: dict[str, Any] = {}
        self._started = False
        self._closed = False
        self._draining = False
        self.stats = {
            "accepted": 0,
            "shed": 0,
            "statements": 0,
            "cancels": 0,
            "protocol_errors": 0,
            "auth_failures": 0,
            "idle_closed": 0,
            "handler_errors": 0,
            "replication_streams": 0,
            "promotions": 0,
        }

    # -- bookkeeping --------------------------------------------------------

    def _count(self, key: str) -> None:
        with self._mutex:
            self.stats[key] += 1

    def _register_cancel_key(self, key: str, session) -> None:
        with self._mutex:
            self._cancel_keys[key] = session

    def _session_for_cancel_key(self, key):
        with self._mutex:
            return self._cancel_keys.get(key) if isinstance(key, str) else None

    def _detach(self, handler: _ClientHandler) -> None:
        with self._mutex:
            self._handlers.discard(handler)
            if handler.cancel_key is not None:
                self._cancel_keys.pop(handler.cancel_key, None)

    @property
    def active_connections(self) -> int:
        with self._mutex:
            return len(self._handlers)

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        if self._listener is None:
            return self._requested_port
        return self._listener.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "DatabaseServer":
        """Bind, listen (bounded backlog) and spawn the acceptor."""
        with self._mutex:
            if self._started:
                raise RuntimeError("server already started")
            self._started = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(self.accept_backlog)
        self._listener = listener
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="repro-sql-acceptor", daemon=True
        )
        self._acceptor.start()
        return self

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            if self._draining:
                self._shed(sock, AdminShutdown("the server is shutting down"))
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._mutex:
                admitted = len(self._handlers) < self.max_connections
                if admitted:
                    handler = _ClientHandler(self, sock, peer)
                    self._handlers.add(handler)
                    self.stats["accepted"] += 1
                else:
                    self.stats["shed"] += 1
            if admitted:
                handler.start()
            else:
                self._shed(
                    sock,
                    TooManyConnections(
                        f"too many connections (max "
                        f"{self.max_connections}); retry shortly"
                    ),
                )

    def _shed(self, sock: socket.socket, exc: SQLError) -> None:
        """Refuse one connection with a typed error frame.

        Runs in a short-lived thread: the refusal waits for the client's
        hello (so the error frame is never lost to a half-open race)
        without ever blocking the acceptor.  Out-of-band **cancel**
        requests are honoured even over the connection limit — a loaded
        server must still let clients cancel the statements causing the
        load (PostgreSQL processes CancelRequest the same way)."""

        def refuse() -> None:
            try:
                sock.settimeout(self.handshake_timeout_s)
                first = None
                try:
                    first = recv_frame(sock, self.max_frame_bytes)
                except (ProtocolViolation, socket.timeout, OSError):
                    pass
                if first is not None and first["type"] == "cancel":
                    session = self._session_for_cancel_key(first.get("key"))
                    if session is not None:
                        self.database.cancel(session=session)
                        self._count("cancels")
                    send_frame(sock, {"type": "ok"})
                    try:
                        sock.close()
                    except OSError:
                        pass
                    return
                send_frame(sock, error_to_wire(exc))
                sock.shutdown(socket.SHUT_WR)
                # drain until the peer closes so the error frame lands
                sock.settimeout(1.0)
                try:
                    while sock.recv(4096):
                        pass
                except (socket.timeout, OSError):
                    pass
            except OSError:
                pass
            finally:
                try:
                    sock.close()
                except OSError:
                    pass

        threading.Thread(target=refuse, daemon=True).start()

    def serve_forever(self) -> None:
        """Block until interrupted, then shut down gracefully."""
        if not self._started:
            self.start()
        try:
            while not self._closed:
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def kill_connections(self) -> None:
        """Sever every client connection immediately — crash modelling:
        no error frame, no drain; peers see a reset mid-whatever.  The
        server itself stays up (use :meth:`shutdown` to stop it)."""
        with self._mutex:
            handlers = list(self._handlers)
        for handler in handlers:
            _force_close(handler.sock)

    def shutdown(self, drain_s: float = 5.0) -> None:
        """Graceful stop: no new connections, in-flight statements get
        ``drain_s`` seconds to finish (later requests are refused with
        SQLSTATE 57P01), stragglers are cooperatively cancelled, and
        every open transaction rolls back as its session closes."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            self._draining = True
            handlers = list(self._handlers)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        # idle connections can go immediately — shutting the socket down
        # pops their blocking recv and their teardown rolls back open txns
        for handler in handlers:
            if not handler.busy:
                _force_close(handler.sock)
        deadline = time.monotonic() + max(0.0, drain_s)
        while time.monotonic() < deadline and any(
            h.busy for h in handlers
        ):
            time.sleep(0.01)
        for handler in handlers:
            if handler.busy and handler.session is not None:
                self.database.cancel(session=handler.session)
            _force_close(handler.sock)
        for handler in handlers:
            handler.thread.join(timeout=5.0)
        if self._acceptor is not None:
            self._acceptor.join(timeout=5.0)
        if self._owns_database:
            self.database.close()

    def __enter__(self) -> "DatabaseServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def main(argv: Optional[list[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sqldb.server",
        description="Serve a repro.sqldb engine over TCP "
        "(length-prefixed JSON protocol).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5433)
    parser.add_argument(
        "--profile", default="umbra", choices=("postgres", "umbra")
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--auth-token", default=None)
    parser.add_argument("--max-connections", type=int, default=64)
    parser.add_argument("--statement-timeout-ms", type=float, default=None)
    parser.add_argument("--idle-timeout-s", type=float, default=None)
    parser.add_argument("--wal-path", default=None)
    parser.add_argument(
        "--init", default=None, metavar="SQL_FILE",
        help="run this SQL script before serving (schema / data load)",
    )
    args = parser.parse_args(argv)

    database = Database(
        args.profile, workers=args.workers, wal_path=args.wal_path
    )
    if args.init:
        with open(args.init, "r", encoding="utf-8") as handle:
            database.run_script(handle.read())
    server = DatabaseServer(
        database,
        host=args.host,
        port=args.port,
        auth_token=args.auth_token,
        max_connections=args.max_connections,
        statement_timeout_ms=args.statement_timeout_ms,
        idle_timeout_s=args.idle_timeout_s,
    )
    server.start()
    print(
        f"repro-sqldb serving profile {args.profile!r} "
        f"on {server.host}:{server.port}"
    )
    server.serve_forever()


if __name__ == "__main__":
    main()
