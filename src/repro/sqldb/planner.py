"""Binder and planner: SQL AST → executable plan.

Responsibilities:

* name resolution (tables, views, CTEs, columns, ``*`` expansion);
* CTE strategy: a CTE is either *inlined* (planned afresh at every
  reference, allowing holistic optimisation — Umbra's behaviour and
  PostgreSQL's for ``NOT MATERIALIZED``) or *materialised* (planned once,
  computed once per query, and acting as an optimisation barrier —
  PostgreSQL 12's default, see §3.4.1 of the paper);
* compilation of scalar expressions to vectorised closures;
* decomposition of join conditions into (null-safe) equi-keys plus a
  residual predicate;
* grouping/aggregation rewriting.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import SQLBindError, SQLExecutionError
from repro.sqldb import ast_nodes as ast
from repro.sqldb import functions, vector
from repro.sqldb.catalog import CTID, Catalog, Table, View
from repro.sqldb.plan import (
    Aggregate,
    AggregateItem,
    Batch,
    CompiledExpr,
    CteRef,
    Distinct,
    Filter,
    Join,
    Limit,
    OneRow,
    OutputColumn,
    PlanNode,
    Project,
    ScanSnapshot,
    ScanTable,
    Sort,
    UnionAll,
    column_passthrough,
    combine_conjuncts,
)
from repro.sqldb.profile import Profile
from repro.sqldb.vector import Vector, constant

__all__ = ["Planner"]


@dataclass
class ScopeEntry:
    alias: Optional[str]
    name: str
    key: str
    hidden: bool = False


@dataclass
class Scope:
    entries: list[ScopeEntry] = field(default_factory=list)

    def resolve(self, name: str, table: Optional[str] = None) -> str:
        hits = [
            e
            for e in self.entries
            if e.name == name and (table is None or e.alias == table)
        ]
        if not hits:
            where = f"{table}.{name}" if table else name
            raise SQLBindError(f"column {where!r} does not exist")
        if len(hits) > 1 and table is None:
            raise SQLBindError(f"column reference {name!r} is ambiguous")
        return hits[0].key

    def expand_star(self, table: Optional[str] = None) -> list[tuple[str, str]]:
        out = [
            (e.name, e.key)
            for e in self.entries
            if not e.hidden and (table is None or e.alias == table)
        ]
        if table is not None and not out:
            raise SQLBindError(f"unknown table alias {table!r} in star expansion")
        return out

    def merged_with(self, other: "Scope") -> "Scope":
        return Scope(self.entries + other.entries)


@dataclass
class _CteInfo:
    name: str
    select: ast.Select
    barrier: bool  # True = materialised CTE (PG12 optimisation barrier)
    env: dict[str, "_CteInfo"]
    plan: Optional[PlanNode] = None  # shared plan, built lazily on first use


def _split_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


#: comparison operator when the column moves to the left-hand side
_FLIP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _like_to_regex(pattern: str) -> re.Pattern:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out), re.DOTALL)


def _collect_aggregates(expr: ast.Expr, found: list[ast.FuncCall]) -> None:
    """Gather top-level aggregate calls (not descending into subqueries)."""
    if isinstance(expr, ast.FuncCall):
        if functions.is_aggregate(expr.name):
            if expr not in found:
                found.append(expr)
            for arg in expr.args:
                nested: list[ast.FuncCall] = []
                _collect_aggregates(arg, nested)
                if nested:
                    raise SQLBindError("aggregate calls cannot be nested")
            return
        for arg in expr.args:
            _collect_aggregates(arg, found)
    elif isinstance(expr, ast.BinaryOp):
        _collect_aggregates(expr.left, found)
        _collect_aggregates(expr.right, found)
    elif isinstance(expr, ast.UnaryOp):
        _collect_aggregates(expr.operand, found)
    elif isinstance(expr, ast.IsNull):
        _collect_aggregates(expr.operand, found)
    elif isinstance(expr, ast.InList):
        _collect_aggregates(expr.operand, found)
        for item in expr.items:
            _collect_aggregates(item, found)
    elif isinstance(expr, ast.Between):
        _collect_aggregates(expr.operand, found)
        _collect_aggregates(expr.low, found)
        _collect_aggregates(expr.high, found)
    elif isinstance(expr, ast.Case):
        for condition, result in expr.whens:
            _collect_aggregates(condition, found)
            _collect_aggregates(result, found)
        if expr.else_ is not None:
            _collect_aggregates(expr.else_, found)
    elif isinstance(expr, ast.Cast):
        _collect_aggregates(expr.operand, found)


def _item_name(item: ast.SelectItem) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.name
    if isinstance(item.expr, (ast.FuncCall, ast.WindowCall)):
        return item.expr.name
    return "?column?"


class Planner:
    """Stateful planner; one instance per statement execution."""

    def __init__(self, catalog: Catalog, profile: Profile) -> None:
        self._catalog = catalog
        self._profile = profile
        self._counter = 0
        #: shared CTE/view plans in creation order: (name, plan, barrier)
        self.shared_plans: list[tuple[str, PlanNode, bool]] = []
        #: scalar-subquery plans (for post-pass pruning of shared plans)
        self.subquery_plans: list[PlanNode] = []
        self._view_plans: dict[str, PlanNode] = {}

    def _fresh(self) -> str:
        self._counter += 1
        return f"c{self._counter}"

    def _shared_ref(
        self, name: str, plan: PlanNode, binding: str, barrier: bool
    ) -> tuple[PlanNode, Scope]:
        """Build a CteRef to a shared plan with fresh output keys."""
        rename: dict[str, str] = {}
        schema: list[OutputColumn] = []
        entries: list[ScopeEntry] = []
        for out in plan.schema:
            key = self._fresh()
            rename[out.key] = key
            schema.append(OutputColumn(out.name, key, out.hidden))
            entries.append(ScopeEntry(binding, out.name, key, out.hidden))
        node = CteRef(name, plan, rename, schema, barrier)
        return node, Scope(entries)

    # -- public entry ------------------------------------------------------

    def plan_select(
        self, select: ast.Select, env: Optional[dict[str, _CteInfo]] = None
    ) -> PlanNode:
        env = dict(env or {})
        for cte in select.ctes:
            barrier = cte.materialized
            if barrier is None:
                barrier = self._profile.materialize_ctes_by_default
            env[cte.name] = _CteInfo(cte.name, cte.query, barrier, dict(env))
        return self._plan_query_body(select, env)

    # -- FROM clause ----------------------------------------------------------

    def _plan_named_table(
        self, source: ast.NamedTable, env: dict[str, _CteInfo]
    ) -> tuple[PlanNode, Scope]:
        binding = source.binding_name
        info = env.get(source.name)
        if info is not None:
            if info.plan is None:
                info.plan = self.plan_select(info.select, info.env)
                self.shared_plans.append((info.name, info.plan, info.barrier))
            return self._shared_ref(
                source.name, info.plan, binding, info.barrier
            )
        relation = self._catalog.resolve(source.name)
        if isinstance(relation, Table):
            keys = {name: self._fresh() for name in relation.column_names}
            keys[CTID] = self._fresh()
            schema = [
                OutputColumn(name, keys[name]) for name in relation.column_names
            ]
            schema.append(OutputColumn(CTID, keys[CTID], hidden=True))
            node = ScanTable(relation.name, schema, keys)
            entries = [
                ScopeEntry(binding, out.name, out.key, out.hidden) for out in schema
            ]
            return node, Scope(entries)
        view: View = relation
        if view.materialized:
            if view.snapshot is None:
                raise SQLBindError(
                    f"materialized view {view.name!r} has not been populated"
                )
            names, _, _ = view.snapshot
            keys = {name: self._fresh() for name in names}
            schema = [OutputColumn(name, keys[name]) for name in names]
            node = ScanSnapshot(view.name, schema, keys)
            entries = [ScopeEntry(binding, n, keys[n]) for n in names]
            return node, Scope(entries)
        plan = self._view_plans.get(view.name)
        if plan is None:
            plan = self.plan_select(view.query, {})
            self._view_plans[view.name] = plan
            self.shared_plans.append((view.name, plan, False))
        return self._shared_ref(view.name, plan, binding, barrier=False)

    def _plan_source(
        self, source: ast.TableSource, env: dict[str, _CteInfo]
    ) -> tuple[PlanNode, Scope]:
        if isinstance(source, ast.NamedTable):
            return self._plan_named_table(source, env)
        if isinstance(source, ast.SubquerySource):
            plan = self.plan_select(source.query, env)
            entries = [
                ScopeEntry(source.alias, out.name, out.key, out.hidden)
                for out in plan.schema
            ]
            return plan, Scope(entries)
        if isinstance(source, ast.JoinSource):
            return self._plan_join(source, env)
        raise SQLBindError(f"unsupported FROM element {type(source).__name__}")

    def _plan_join(
        self, source: ast.JoinSource, env: dict[str, _CteInfo]
    ) -> tuple[PlanNode, Scope]:
        left, left_scope = self._plan_source(source.left, env)
        right, right_scope = self._plan_source(source.right, env)
        combined = left_scope.merged_with(right_scope)
        left_keys: list[CompiledExpr] = []
        right_keys: list[CompiledExpr] = []
        null_safe: list[bool] = []
        residuals: list[ast.Expr] = []
        if source.condition is not None:
            left_key_set = {out.key for out in left.schema}
            right_key_set = {out.key for out in right.schema}
            for conjunct in _split_conjuncts(source.condition):
                pair = self._match_equi(conjunct)
                if pair is not None:
                    a_expr, b_expr, is_null_safe = pair
                    a = self.compile_expr(a_expr, combined, env)
                    b = self.compile_expr(b_expr, combined, env)
                    if a.refs <= left_key_set and b.refs <= right_key_set:
                        left_keys.append(a)
                        right_keys.append(b)
                        null_safe.append(is_null_safe)
                        continue
                    if a.refs <= right_key_set and b.refs <= left_key_set:
                        left_keys.append(b)
                        right_keys.append(a)
                        null_safe.append(is_null_safe)
                        continue
                residuals.append(conjunct)
        residual = None
        if residuals:
            combined_expr = residuals[0]
            for extra in residuals[1:]:
                combined_expr = ast.BinaryOp("and", combined_expr, extra)
            residual = self.compile_expr(combined_expr, combined, env)
        # the join's key columns in batches are produced by evaluating the
        # key expressions; the executor evaluates them on each side
        node = Join(
            left,
            right,
            source.kind,
            left_keys,  # type: ignore[arg-type]
            right_keys,  # type: ignore[arg-type]
            null_safe,
            residual,
            schema=left.schema + right.schema,
        )
        return node, combined

    @staticmethod
    def _match_equi(
        conjunct: ast.Expr,
    ) -> Optional[tuple[ast.Expr, ast.Expr, bool]]:
        """Recognise ``a = b`` and the null-safe ``a = b OR (a IS NULL AND b IS NULL)``."""
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
            return conjunct.left, conjunct.right, False
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "or":
            eq, nulls = conjunct.left, conjunct.right
            if not (isinstance(eq, ast.BinaryOp) and eq.op == "="):
                eq, nulls = nulls, eq
            if (
                isinstance(eq, ast.BinaryOp)
                and eq.op == "="
                and isinstance(nulls, ast.BinaryOp)
                and nulls.op == "and"
                and isinstance(nulls.left, ast.IsNull)
                and isinstance(nulls.right, ast.IsNull)
                and not nulls.left.negated
                and not nulls.right.negated
                and {nulls.left.operand, nulls.right.operand}
                == {eq.left, eq.right}
            ):
                return eq.left, eq.right, True
        return None

    # -- query body ---------------------------------------------------------------

    def _plan_query_body(
        self, select: ast.Select, env: dict[str, _CteInfo]
    ) -> PlanNode:
        if select.sources:
            child, scope = self._plan_source(select.sources[0], env)
            for extra in select.sources[1:]:
                right, right_scope = self._plan_source(extra, env)
                child = Join(
                    child,
                    right,
                    "cross",
                    schema=child.schema + right.schema,
                )
                scope = scope.merged_with(right_scope)
        else:
            child, scope = OneRow(schema=[]), Scope()

        if select.where is not None:
            conjuncts = [
                self.compile_expr(part, scope, env)
                for part in _split_conjuncts(select.where)
            ]
            child = Filter(
                child,
                combine_conjuncts(conjuncts),
                schema=child.schema,
                conjuncts=conjuncts,
            )

        agg_calls: list[ast.FuncCall] = []
        for item in select.items:
            if not isinstance(item.expr, ast.Star):
                _collect_aggregates(item.expr, agg_calls)
        if select.having is not None:
            _collect_aggregates(select.having, agg_calls)

        replace: dict[ast.Expr, str] = {}
        if select.group_by or agg_calls:
            child, scope, replace = self._plan_aggregate(
                child, scope, select, agg_calls, env
            )

        child = self._plan_projection(child, scope, select, replace, env)

        if select.distinct:
            child = Distinct(child, schema=child.schema)

        if select.union_all_with is not None:
            other = self.plan_select(select.union_all_with, env)
            visible = [out for out in child.schema if not out.hidden]
            other_visible = [out for out in other.schema if not out.hidden]
            if len(visible) != len(other_visible):
                raise SQLBindError("UNION ALL arms have different arity")
            child = UnionAll([child, other], schema=child.schema)

        if select.order_by:
            child = self._plan_order_by(child, scope, select, replace, env)

        if select.limit is not None or select.offset is not None:
            child = Limit(
                child, select.limit, select.offset or 0, schema=child.schema
            )
        return child

    def _plan_aggregate(
        self,
        child: PlanNode,
        scope: Scope,
        select: ast.Select,
        agg_calls: list[ast.FuncCall],
        env: dict[str, _CteInfo],
    ) -> tuple[PlanNode, Scope, dict[ast.Expr, str]]:
        groups: list[tuple[OutputColumn, CompiledExpr]] = []
        replace: dict[ast.Expr, str] = {}
        for i, expr in enumerate(select.group_by):
            compiled = self.compile_expr(expr, scope, env)
            name = expr.name if isinstance(expr, ast.ColumnRef) else f"group_{i}"
            out = OutputColumn(name, self._fresh())
            groups.append((out, compiled))
            replace[expr] = out.key
            if isinstance(expr, ast.ColumnRef) and expr.table is not None:
                # allow unqualified references to a qualified group key
                replace.setdefault(ast.ColumnRef(expr.name), out.key)
        aggregates: list[AggregateItem] = []
        for call in agg_calls:
            arg = None
            if not call.star:
                if len(call.args) != 1:
                    raise SQLBindError(
                        f"aggregate {call.name} takes exactly one argument"
                    )
                arg = self.compile_expr(call.args[0], scope, env)
            where = None
            if call.filter_where is not None:
                nested: list[ast.FuncCall] = []
                _collect_aggregates(call.filter_where, nested)
                if nested:
                    raise SQLBindError(
                        "aggregate functions are not allowed in FILTER"
                    )
                where = self.compile_expr(call.filter_where, scope, env)
            out = OutputColumn(call.name, self._fresh())
            aggregates.append(
                AggregateItem(out, call.name, arg, call.distinct, where)
            )
            replace[call] = out.key
        schema = [out for out, _ in groups] + [item.out for item in aggregates]
        node = Aggregate(child, groups, aggregates, schema=schema)
        # post-aggregation scope exposes only the grouped keys by name
        agg_scope = Scope(
            [ScopeEntry(None, out.name, out.key) for out, _ in groups]
        )
        if select.having is not None:
            conjuncts = [
                self.compile_expr(part, agg_scope, env, replace)
                for part in _split_conjuncts(select.having)
            ]
            filtered = Filter(
                node,
                combine_conjuncts(conjuncts),
                schema=node.schema,
                conjuncts=conjuncts,
            )
            return filtered, agg_scope, replace
        return node, agg_scope, replace

    def _plan_order_by(
        self,
        child: PlanNode,
        scope: Scope,
        select: ast.Select,
        replace: dict[ast.Expr, str],
        env: dict[str, _CteInfo],
    ) -> PlanNode:
        """Sort on output columns, falling back to input columns.

        SQL allows ``ORDER BY`` to reference both the select-list outputs
        and the underlying input columns; for the latter the projection is
        extended with hidden pass-through items (PostgreSQL does the same
        internally).
        """
        out_scope = Scope(
            [ScopeEntry(None, o.name, o.key, o.hidden) for o in child.schema]
        )
        keys: list[tuple[CompiledExpr, bool, Optional[bool]]] = []
        for order in select.order_by:
            try:
                compiled = self.compile_expr(order.expr, out_scope, env)
            except SQLBindError:
                compiled = self.compile_expr(order.expr, scope, env, replace)
                if isinstance(child, Project):
                    present = {out.key for out in child.schema}
                    for ref in sorted(compiled.refs - present):
                        out = OutputColumn(f"_order_{ref}", ref, hidden=True)
                        child.items.append((out, self._column_passthrough(ref)))
                        child.schema.append(out)
                else:
                    raise
            keys.append((compiled, order.ascending, order.nulls_first))
        return Sort(child, keys, schema=child.schema)

    _WINDOW_FUNCS = {"rank", "dense_rank", "row_number"}

    def _plan_window_items(
        self,
        child: PlanNode,
        scope: Scope,
        select: ast.Select,
        replace: dict[ast.Expr, str],
        env: dict[str, _CteInfo],
    ) -> tuple[PlanNode, dict[ast.Expr, str]]:
        """Insert a Window node for rank/row_number select items."""
        from repro.sqldb.plan import Window, WindowItem

        items: list[WindowItem] = []
        window_replace = dict(replace)
        for item in select.items:
            expr = item.expr
            if not isinstance(expr, ast.WindowCall):
                continue
            if expr.name not in self._WINDOW_FUNCS:
                raise SQLBindError(
                    f"unsupported window function {expr.name!r}"
                )
            out = OutputColumn(item.alias or expr.name, self._fresh())
            items.append(
                WindowItem(
                    out,
                    expr.name,
                    [
                        self.compile_expr(p, scope, env, replace)
                        for p in expr.partition_by
                    ],
                    [
                        (self.compile_expr(o, scope, env, replace), asc)
                        for o, asc in expr.order_by
                    ],
                )
            )
            window_replace[expr] = out.key
        if not items:
            return child, replace
        node = Window(
            child, items, schema=child.schema + [i.out for i in items]
        )
        return node, window_replace

    def _plan_projection(
        self,
        child: PlanNode,
        scope: Scope,
        select: ast.Select,
        replace: dict[ast.Expr, str],
        env: dict[str, _CteInfo],
    ) -> PlanNode:
        child, replace = self._plan_window_items(
            child, scope, select, replace, env
        )
        items: list[tuple[OutputColumn, CompiledExpr]] = []
        unnest_keys: list[str] = []
        names_seen: dict[str, int] = {}

        def _add(name: str, compiled: CompiledExpr, hidden: bool = False) -> OutputColumn:
            names_seen[name] = names_seen.get(name, 0) + 1
            out = OutputColumn(name, self._fresh(), hidden)
            items.append((out, compiled))
            return out

        for item in select.items:
            if isinstance(item.expr, ast.Star):
                for name, key in scope.expand_star(item.expr.table):
                    _add(name, self._column_passthrough(key))
                continue
            expr = item.expr
            if (
                isinstance(expr, ast.FuncCall)
                and expr.name == "unnest"
                and not expr.star
            ):
                if len(expr.args) != 1:
                    raise SQLBindError("unnest takes exactly one argument")
                compiled = self.compile_expr(expr.args[0], scope, env, replace)
                out = _add(item.alias or "unnest", compiled)
                unnest_keys.append(out.key)
                continue
            compiled = self.compile_expr(expr, scope, env, replace)
            _add(_item_name(item), compiled)
        schema = [out for out, _ in items]
        return Project(child, items, unnest_keys, schema=schema)

    @staticmethod
    def _column_passthrough(key: str) -> CompiledExpr:
        return column_passthrough(key)

    # -- expression compilation --------------------------------------------------

    def compile_expr(
        self,
        expr: ast.Expr,
        scope: Scope,
        env: dict[str, _CteInfo],
        replace: Optional[dict[ast.Expr, str]] = None,
    ) -> CompiledExpr:
        if replace:
            try:
                key = replace.get(expr)
            except TypeError:
                key = None
            if key is not None:
                return self._column_passthrough(key)

        if isinstance(expr, ast.Literal):
            value = expr.value

            def fn_literal(batch: Batch, ctx: Any) -> Vector:
                return constant(value, batch.length)

            return CompiledExpr(
                fn_literal, frozenset(), text=repr(value), cmp=("const", None, value)
            )

        if isinstance(expr, ast.Parameter):
            index = expr.index

            def fn_param(batch: Batch, ctx: Any) -> Vector:
                try:
                    value = ctx.params[index]
                except IndexError:
                    raise SQLExecutionError(
                        f"statement parameter ${index + 1} was not bound"
                    ) from None
                return constant(value, batch.length)

            return CompiledExpr(fn_param, frozenset(), text=f"${index + 1}")

        if isinstance(expr, ast.ColumnRef):
            key = scope.resolve(expr.name, expr.table)
            return self._column_passthrough(key)

        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(expr, scope, env, replace)

        if isinstance(expr, ast.UnaryOp):
            operand = self.compile_expr(expr.operand, scope, env, replace)
            if expr.op == "not":
                return CompiledExpr(
                    lambda b, c: vector.logical_not(operand(b, c)),
                    operand.refs,
                    text=f"NOT {operand.text}",
                )
            if expr.op == "-":
                minus_one = CompiledExpr(
                    lambda b, c: constant(-1, b.length), frozenset()
                )
                return CompiledExpr(
                    lambda b, c: vector.arithmetic("*", operand(b, c), minus_one(b, c)),
                    operand.refs,
                    text=f"-{operand.text}",
                )
            raise SQLBindError(f"unsupported unary operator {expr.op!r}")

        if isinstance(expr, ast.IsNull):
            operand = self.compile_expr(expr.operand, scope, env, replace)
            negated = expr.negated

            def fn_isnull(batch: Batch, ctx: Any) -> Vector:
                value = operand(batch, ctx)
                flags = value.nulls.copy()
                if negated:
                    flags = ~flags
                return Vector(flags, np.zeros(len(flags), dtype=bool))

            cmp = None
            if operand.is_column is not None:
                cmp = ("notnull" if negated else "isnull", operand.is_column, None)
            return CompiledExpr(
                fn_isnull, operand.refs, text=f"{operand.text} IS NULL", cmp=cmp
            )

        if isinstance(expr, ast.InList):
            return self._compile_in_list(expr, scope, env, replace)

        if isinstance(expr, ast.Between):
            operand = self.compile_expr(expr.operand, scope, env, replace)
            low = self.compile_expr(expr.low, scope, env, replace)
            high = self.compile_expr(expr.high, scope, env, replace)
            negated = expr.negated

            def fn_between(batch: Batch, ctx: Any) -> Vector:
                value = operand(batch, ctx)
                result = vector.logical_and(
                    vector.compare(">=", value, low(batch, ctx)),
                    vector.compare("<=", value, high(batch, ctx)),
                )
                return vector.logical_not(result) if negated else result

            cmp = None
            if (
                not negated
                and operand.is_column is not None
                and isinstance(expr.low, ast.Literal)
                and isinstance(expr.high, ast.Literal)
            ):
                cmp = (
                    "between",
                    operand.is_column,
                    (expr.low.value, expr.high.value),
                )
            return CompiledExpr(
                fn_between,
                operand.refs | low.refs | high.refs,
                text="BETWEEN",
                cmp=cmp,
            )

        if isinstance(expr, ast.Case):
            return self._compile_case(expr, scope, env, replace)

        if isinstance(expr, ast.Cast):
            return self._compile_cast(expr, scope, env, replace)

        if isinstance(expr, ast.FuncCall):
            return self._compile_func(expr, scope, env, replace)

        if isinstance(expr, ast.ScalarSubquery):
            return self._compile_scalar_subquery(expr, env)

        if isinstance(expr, ast.WindowCall):
            raise SQLBindError(
                "window functions are only allowed as top-level select items"
            )
        if isinstance(expr, ast.Star):
            raise SQLBindError("'*' is only allowed in the select list")
        raise SQLBindError(f"unsupported expression {type(expr).__name__}")

    def _compile_binary(
        self,
        expr: ast.BinaryOp,
        scope: Scope,
        env: dict[str, _CteInfo],
        replace: Optional[dict[ast.Expr, str]],
    ) -> CompiledExpr:
        left = self.compile_expr(expr.left, scope, env, replace)
        right = self.compile_expr(expr.right, scope, env, replace)
        refs = left.refs | right.refs
        op = expr.op
        text = f"({left.text} {op} {right.text})"
        if op == "and":
            return CompiledExpr(
                lambda b, c: vector.logical_and(left(b, c), right(b, c)), refs, text
            )
        if op == "or":
            return CompiledExpr(
                lambda b, c: vector.logical_or(left(b, c), right(b, c)), refs, text
            )
        if op in ("=", "<>", "<", "<=", ">", ">="):
            cmp = None
            if left.is_column is not None and isinstance(expr.right, ast.Literal):
                cmp = (op, left.is_column, expr.right.value)
            elif right.is_column is not None and isinstance(expr.left, ast.Literal):
                cmp = (_FLIP[op], right.is_column, expr.left.value)
            return CompiledExpr(
                lambda b, c: vector.compare(op, left(b, c), right(b, c)),
                refs,
                text,
                cmp=cmp,
            )
        if op == "like":

            def fn_like(batch: Batch, ctx: Any) -> Vector:
                value = left(batch, ctx)
                pattern = right(batch, ctx)
                nulls = value.nulls | pattern.nulls
                out = np.zeros(batch.length, dtype=bool)
                cache: dict[str, re.Pattern] = {}
                for i in np.flatnonzero(~nulls):
                    raw = functions.pg_text(pattern.item(i))
                    compiled = cache.setdefault(raw, _like_to_regex(raw))
                    subject = functions.pg_text(value.item(i))
                    out[i] = compiled.fullmatch(subject) is not None
                return Vector(out, nulls)

            return CompiledExpr(fn_like, refs, text)
        if op in ("+", "-", "*", "/", "%", "||"):
            return CompiledExpr(
                lambda b, c: vector.arithmetic(op, left(b, c), right(b, c)), refs, text
            )
        raise SQLBindError(f"unsupported binary operator {op!r}")

    def _compile_in_list(
        self,
        expr: ast.InList,
        scope: Scope,
        env: dict[str, _CteInfo],
        replace: Optional[dict[ast.Expr, str]],
    ) -> CompiledExpr:
        operand = self.compile_expr(expr.operand, scope, env, replace)
        items = [self.compile_expr(i, scope, env, replace) for i in expr.items]
        refs = operand.refs.union(*[i.refs for i in items]) if items else operand.refs
        negated = expr.negated

        def fn_in(batch: Batch, ctx: Any) -> Vector:
            value = operand(batch, ctx)
            result = None
            for item in items:
                comparison = vector.compare("=", value, item(batch, ctx))
                result = (
                    comparison
                    if result is None
                    else vector.logical_or(result, comparison)
                )
            assert result is not None
            return vector.logical_not(result) if negated else result

        cmp = None
        if (
            not negated
            and operand.is_column is not None
            and all(isinstance(i, ast.Literal) for i in expr.items)
        ):
            cmp = (
                "in",
                operand.is_column,
                tuple(item.value for item in expr.items),
            )
        return CompiledExpr(fn_in, refs, text="IN (...)", cmp=cmp)

    def _compile_case(
        self,
        expr: ast.Case,
        scope: Scope,
        env: dict[str, _CteInfo],
        replace: Optional[dict[ast.Expr, str]],
    ) -> CompiledExpr:
        whens = [
            (
                self.compile_expr(cond, scope, env, replace),
                self.compile_expr(result, scope, env, replace),
            )
            for cond, result in expr.whens
        ]
        else_compiled = (
            self.compile_expr(expr.else_, scope, env, replace)
            if expr.else_ is not None
            else None
        )
        refs: frozenset[str] = frozenset()
        for cond, result in whens:
            refs = refs | cond.refs | result.refs
        if else_compiled is not None:
            refs = refs | else_compiled.refs

        def fn_case(batch: Batch, ctx: Any) -> Vector:
            remaining = np.ones(batch.length, dtype=bool)
            out_values: Optional[np.ndarray] = None
            out_nulls = np.ones(batch.length, dtype=bool)

            def assign(mask: np.ndarray, branch: Vector) -> None:
                nonlocal out_values, out_nulls
                if out_values is None:
                    if branch.values.dtype.kind in ("f", "i", "u"):
                        out_values = np.full(batch.length, np.nan)
                    elif branch.values.dtype.kind == "b":
                        out_values = np.zeros(batch.length, dtype=bool)
                    else:
                        out_values = np.empty(batch.length, dtype=object)
                if out_values.dtype != object and branch.values.dtype == object:
                    out_values = out_values.astype(object)
                if out_values.dtype == object and branch.values.dtype != object:
                    out_values[mask] = branch.values.astype(object)[mask]
                else:
                    out_values[mask] = branch.values.astype(
                        out_values.dtype, copy=False
                    )[mask]
                out_nulls[mask] = branch.nulls[mask]

            for cond, result in whens:
                if not remaining.any():
                    break
                predicate = cond(batch, ctx)
                hit = predicate.values.astype(bool) & ~predicate.nulls & remaining
                if hit.any():
                    assign(hit, result(batch, ctx))
                remaining = remaining & ~hit
            if else_compiled is not None and remaining.any():
                assign(remaining, else_compiled(batch, ctx))
            if out_values is None:
                out_values = np.full(batch.length, np.nan)
            return Vector(out_values, out_nulls)

        return CompiledExpr(fn_case, refs, text="CASE")

    def _compile_cast(
        self,
        expr: ast.Cast,
        scope: Scope,
        env: dict[str, _CteInfo],
        replace: Optional[dict[ast.Expr, str]],
    ) -> CompiledExpr:
        operand = self.compile_expr(expr.operand, scope, env, replace)
        target = expr.type_name

        def fn_cast(batch: Batch, ctx: Any) -> Vector:
            value = operand(batch, ctx)
            if target in ("int", "integer", "bigint", "smallint"):
                if value.values.dtype.kind in ("f", "i", "u", "b"):
                    out = np.rint(value.values.astype(np.float64))
                else:
                    out = np.array(
                        [
                            float(v) if not value.nulls[i] else np.nan
                            for i, v in enumerate(value.values)
                        ]
                    )
                    out = np.rint(out)
                return Vector(out, value.nulls.copy())
            if target in (
                "float",
                "real",
                "numeric",
                "decimal",
                "double",
                "double precision",
            ):
                if value.values.dtype.kind in ("f", "i", "u", "b"):
                    return Vector(value.values.astype(np.float64), value.nulls.copy())
                out = np.array(
                    [
                        float(v) if not value.nulls[i] else np.nan
                        for i, v in enumerate(value.values)
                    ]
                )
                return Vector(out, value.nulls.copy())
            if target in ("text", "varchar", "char"):
                out = np.empty(batch.length, dtype=object)
                for i in np.flatnonzero(~value.nulls):
                    out[i] = functions.pg_text(value.item(i))
                return Vector(out, value.nulls.copy())
            if target in ("bool", "boolean"):
                out = np.zeros(batch.length, dtype=bool)
                nulls = value.nulls.copy()
                for i in np.flatnonzero(~nulls):
                    raw = value.values[i]
                    if isinstance(raw, (bool, np.bool_)):
                        out[i] = bool(raw)
                    elif isinstance(raw, (int, float, np.integer, np.floating)):
                        out[i] = raw != 0
                    else:
                        text = str(raw).strip().lower()
                        out[i] = text in ("t", "true", "1", "yes", "on")
                return Vector(out, nulls)
            raise SQLBindError(f"unsupported cast target {target!r}")

        return CompiledExpr(fn_cast, operand.refs, text=f"{operand.text}::{target}")

    def _compile_func(
        self,
        expr: ast.FuncCall,
        scope: Scope,
        env: dict[str, _CteInfo],
        replace: Optional[dict[ast.Expr, str]],
    ) -> CompiledExpr:
        if functions.is_aggregate(expr.name):
            raise SQLBindError(
                f"aggregate {expr.name}() is not allowed in this context"
            )
        if expr.filter_where is not None:
            raise SQLBindError(
                f"FILTER is not allowed for the non-aggregate {expr.name}()"
            )
        if expr.name == "unnest":
            raise SQLBindError("unnest() is only allowed as a top-level select item")
        impl = functions.SCALAR_FUNCTIONS.get(expr.name)
        if impl is None:
            raise SQLBindError(f"unknown function {expr.name!r}")
        args = [self.compile_expr(a, scope, env, replace) for a in expr.args]
        refs: frozenset[str] = frozenset()
        for arg in args:
            refs = refs | arg.refs

        def fn_call(batch: Batch, ctx: Any) -> Vector:
            return impl([a(batch, ctx) for a in args])

        return CompiledExpr(fn_call, refs, text=f"{expr.name}(...)")

    def _compile_scalar_subquery(
        self, expr: ast.ScalarSubquery, env: dict[str, _CteInfo]
    ) -> CompiledExpr:
        plan = self.plan_select(expr.query, env)
        from repro.sqldb.optimizer import prune_plan

        plan = prune_plan(plan, {out.key for out in plan.schema if not out.hidden})
        self.subquery_plans.append(plan)

        def fn_subquery(batch: Batch, ctx: Any) -> Vector:
            value = ctx.scalar_subquery(plan)
            return constant(value, batch.length)

        return CompiledExpr(fn_subquery, frozenset(), text="(subquery)")
