"""Abstract syntax tree of the supported SQL dialect.

All nodes are frozen-ish dataclasses (mutable where the planner annotates).
Structural equality on expressions is used by the planner to match GROUP BY
expressions against select items.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

__all__ = [
    "Analyze",
    "Begin",
    "Between",
    "BinaryOp",
    "Case",
    "Cast",
    "Checkpoint",
    "ColumnRef",
    "ColumnDef",
    "Commit",
    "Copy",
    "CreateIndex",
    "CreateTable",
    "CreateView",
    "Cte",
    "Delete",
    "Drop",
    "DropIndex",
    "DropModel",
    "Expr",
    "FuncCall",
    "InList",
    "Insert",
    "IsNull",
    "JoinSource",
    "Literal",
    "NamedTable",
    "OrderItem",
    "Parameter",
    "ReleaseSavepoint",
    "Rollback",
    "RollbackTo",
    "Savepoint",
    "ScalarSubquery",
    "Select",
    "SelectItem",
    "Star",
    "Statement",
    "SubquerySource",
    "TableSource",
    "Train",
    "UnaryOp",
    "Update",
    "WindowCall",
]


# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: Any  # int | float | str | bool | None


@dataclass(frozen=True)
class Parameter:
    """Positional statement parameter (``?`` / ``%s``), bound at execution."""

    index: int


@dataclass(frozen=True)
class ColumnRef:
    name: str
    table: Optional[str] = None


@dataclass(frozen=True)
class Star:
    """``*`` or ``alias.*`` select item."""

    table: Optional[str] = None


@dataclass(frozen=True)
class FuncCall:
    name: str
    args: tuple["Expr", ...] = ()
    star: bool = False  # count(*)
    distinct: bool = False  # count(DISTINCT x)
    #: aggregate FILTER (WHERE ...) clause, None when absent
    filter_where: Optional["Expr"] = None


@dataclass(frozen=True)
class BinaryOp:
    op: str  # arithmetic, comparison, 'and', 'or', 'like', '||'
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # 'not', '-', '+'
    operand: "Expr"


@dataclass(frozen=True)
class IsNull:
    operand: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    operand: "Expr"
    items: tuple["Expr", ...]
    negated: bool = False


@dataclass(frozen=True)
class Between:
    operand: "Expr"
    low: "Expr"
    high: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class Case:
    whens: tuple[tuple["Expr", "Expr"], ...]
    else_: Optional["Expr"] = None


@dataclass(frozen=True)
class Cast:
    operand: "Expr"
    type_name: str


@dataclass(frozen=True)
class ScalarSubquery:
    query: "Select"


@dataclass(frozen=True)
class WindowCall:
    """``func() OVER (PARTITION BY ... ORDER BY ...)`` (rank/row_number)."""

    name: str
    partition_by: tuple["Expr", ...] = ()
    order_by: tuple[tuple["Expr", bool], ...] = ()  # (expr, ascending)


Expr = Union[
    Literal,
    Parameter,
    ColumnRef,
    Star,
    FuncCall,
    BinaryOp,
    UnaryOp,
    IsNull,
    InList,
    Between,
    Case,
    Cast,
    ScalarSubquery,
    WindowCall,
]


# -- query structure ----------------------------------------------------------


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class NamedTable:
    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass
class SubquerySource:
    query: "Select"
    alias: str


@dataclass
class JoinSource:
    left: "TableSource"
    right: "TableSource"
    kind: str  # 'inner' | 'left' | 'right' | 'full' | 'cross'
    condition: Optional[Expr] = None


TableSource = Union[NamedTable, SubquerySource, JoinSource]


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True
    #: explicit NULLS FIRST (True) / NULLS LAST (False); None = PostgreSQL
    #: default (NULLS LAST for ASC, NULLS FIRST for DESC)
    nulls_first: Optional[bool] = None


@dataclass
class Cte:
    name: str
    query: "Select"
    materialized: Optional[bool] = None  # None = engine default


@dataclass
class Select:
    items: list[SelectItem] = field(default_factory=list)
    ctes: list[Cte] = field(default_factory=list)
    sources: list[TableSource] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    union_all_with: Optional["Select"] = None


# -- statements ---------------------------------------------------------------


@dataclass
class ColumnDef:
    name: str
    type_name: str  # normalised lower-case type


@dataclass
class CreateTable:
    name: str
    columns: list[ColumnDef]


@dataclass
class CreateView:
    name: str
    query: Select
    materialized: bool = False


@dataclass
class Insert:
    table: str
    columns: list[str]
    rows: list[list[Expr]]


@dataclass
class Copy:
    table: str
    columns: list[str]
    path: str
    delimiter: str = ","
    null_text: str = ""
    header: bool = True


@dataclass
class Drop:
    kind: str  # 'table' | 'view'
    name: str
    if_exists: bool = False


@dataclass
class CreateIndex:
    """``CREATE [UNIQUE] INDEX name ON table [USING method] (cols)``."""

    name: str
    table: str
    columns: list[str]
    unique: bool = False
    #: 'sorted' (btree-style, bisect lookups) or 'hash'; None = pick by
    #: column count (sorted for one column, hash for composites)
    method: Optional[str] = None


@dataclass
class DropIndex:
    """``DROP INDEX [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


@dataclass
class Update:
    """``UPDATE table SET col = expr, ... [WHERE pred]``."""

    table: str
    assignments: list[tuple[str, Expr]]
    where: Optional[Expr] = None


@dataclass
class Delete:
    """``DELETE FROM table [WHERE pred]``."""

    table: str
    where: Optional[Expr] = None


@dataclass
class Train:
    """``TRAIN name USING (SELECT ...) WITH (key = value, ...)``.

    SQLFlow-inspired in-database training: the query supplies the feature
    table, the options choose the estimator and hyperparameters, and the
    fitted model lands in the catalog under *name*.
    """

    name: str
    query: Select
    #: WITH-clause options in source order; values are literal expressions
    options: list[tuple[str, Expr]] = field(default_factory=list)


@dataclass
class DropModel:
    """``DROP MODEL [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


@dataclass
class Analyze:
    """``ANALYZE [table]`` — collect planner statistics (PostgreSQL-style)."""

    table: Optional[str] = None  # None = every base table


# -- transaction control -------------------------------------------------------


@dataclass(frozen=True)
class Begin:
    """``BEGIN [TRANSACTION|WORK]`` — open an explicit transaction."""


@dataclass(frozen=True)
class Commit:
    """``COMMIT [TRANSACTION|WORK]`` — commit the open transaction."""


@dataclass(frozen=True)
class Rollback:
    """``ROLLBACK [TRANSACTION|WORK]`` — abort the open transaction."""


@dataclass(frozen=True)
class Savepoint:
    """``SAVEPOINT name`` — set a savepoint in the open transaction."""

    name: str


@dataclass(frozen=True)
class RollbackTo:
    """``ROLLBACK TO [SAVEPOINT] name`` — partial rollback; the savepoint
    itself survives and can be rolled back to again."""

    name: str


@dataclass(frozen=True)
class ReleaseSavepoint:
    """``RELEASE [SAVEPOINT] name`` — drop the savepoint (and any set
    after it), keeping its effects."""

    name: str


@dataclass(frozen=True)
class Checkpoint:
    """``CHECKPOINT`` — snapshot the catalog and reset the WAL (durable
    databases only; outside any transaction)."""


Statement = Union[
    Select,
    CreateTable,
    CreateView,
    CreateIndex,
    Insert,
    Copy,
    Update,
    Delete,
    Drop,
    DropIndex,
    Train,
    DropModel,
    Analyze,
    Begin,
    Commit,
    Rollback,
    Savepoint,
    RollbackTo,
    ReleaseSavepoint,
    Checkpoint,
]
