"""SQL tokenizer.

Produces a flat token stream with PostgreSQL conventions: unquoted
identifiers are folded to lower case, double-quoted identifiers preserve
case, single-quoted strings use ``''`` for an embedded quote, and both
``--`` line comments and ``/* */`` block comments are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import SQLSyntaxError

__all__ = ["Token", "TokenKind", "tokenize", "KEYWORDS"]


class TokenKind(Enum):
    KEYWORD = auto()
    IDENT = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCT = auto()
    PARAM = auto()  # positional placeholder: ``?`` or psycopg2-style ``%s``
    EOF = auto()


KEYWORDS = {
    "all", "analyze", "and", "as", "asc", "begin", "between", "by", "case",
    "cast", "checkpoint", "commit", "copy", "create", "cross", "csv",
    "delete", "delimiter", "desc", "distinct", "drop", "else", "end",
    "exists", "false",
    "format", "from", "full", "group", "having", "header", "if", "in",
    "inner", "insert", "into", "is", "join", "left", "like", "limit",
    "materialized", "not", "null", "offset", "on", "or", "order", "outer",
    "over", "partition", "recursive", "release", "right", "rollback",
    "savepoint", "select", "set", "table", "then", "true", "union",
    "update", "values", "view", "when", "where", "with",
}

_OPERATORS = ("<>", "!=", "<=", ">=", "::", "||", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = {"(", ")", ",", ";", ".", "[", "]"}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    position: int

    def matches_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == word


def tokenize(sql: str) -> list[Token]:
    """Tokenize *sql*; raises :class:`SQLSyntaxError` on malformed input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    n_params = 0
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "?":
            tokens.append(Token(TokenKind.PARAM, str(n_params), i))
            n_params += 1
            i += 1
            continue
        if (
            ch == "%"
            and i + 1 < n
            and sql[i + 1] == "s"
            and (i + 2 >= n or not (sql[i + 2].isalnum() or sql[i + 2] == "_"))
        ):
            # psycopg2-style placeholder; ``a % score`` still lexes as modulo
            tokens.append(Token(TokenKind.PARAM, str(n_params), i))
            n_params += 1
            i += 2
            continue
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise SQLSyntaxError(f"unterminated block comment at offset {i}")
            i = end + 2
            continue
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SQLSyntaxError(f"unterminated string literal at offset {i}")
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(TokenKind.STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch == '"':
            j = sql.find('"', i + 1)
            if j < 0:
                raise SQLSyntaxError(f"unterminated quoted identifier at offset {i}")
            tokens.append(Token(TokenKind.IDENT, sql[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    if j + 1 < n and (sql[j + 1].isdigit() or sql[j + 1] in "+-"):
                        seen_exp = True
                        j += 2
                    else:
                        break
                else:
                    break
            tokens.append(Token(TokenKind.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j].lower()
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, word, i))
            i = j
            continue
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenKind.OPERATOR, "<>" if op == "!=" else op, i))
                i += len(op)
                break
        else:
            if ch in _PUNCT:
                tokens.append(Token(TokenKind.PUNCT, ch, i))
                i += 1
            else:
                raise SQLSyntaxError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
