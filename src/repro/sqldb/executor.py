"""Vectorised plan executor.

One executor serves both engine profiles; the profile only controls
materialisation behaviour (see :mod:`repro.sqldb.profile`):

* ``copy_operator_output`` — the PostgreSQL profile copies every operator's
  output vectors, modelling tuple materialisation in a buffer-backed
  executor; the Umbra profile pipelines references through.
* materialised CTEs are computed once per query and cached in the
  execution context.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import SQLExecutionError
from repro.sqldb.catalog import CTID, Catalog
from repro.sqldb.plan import (
    Aggregate,
    Batch,
    CteRef,
    Distinct,
    Filter,
    Join,
    Limit,
    OneRow,
    PlanNode,
    Project,
    ScanSnapshot,
    ScanTable,
    Sort,
    UnionAll,
    Window,
)
from repro.sqldb.profile import Profile
from repro.sqldb.vector import Vector, concat_vectors, from_values, gather
from repro.sqldb import functions, hashing

__all__ = ["ExecContext", "execute_plan"]


@dataclass
class ExecContext:
    catalog: Catalog
    profile: Profile
    cte_cache: dict[int, Batch] = field(default_factory=dict)
    subquery_cache: dict[int, Any] = field(default_factory=dict)
    #: positional statement parameters bound to ``?`` / ``%s`` placeholders
    params: tuple = ()

    def scalar_subquery(self, plan: PlanNode) -> Any:
        """Execute an uncorrelated scalar subquery once, caching the value."""
        key = id(plan)
        if key not in self.subquery_cache:
            batch = execute_plan(plan, self)
            visible = [out for out in plan.schema if not out.hidden]
            if len(visible) != 1:
                raise SQLExecutionError(
                    "scalar subquery must return exactly one column"
                )
            if batch.length > 1:
                raise SQLExecutionError("scalar subquery returned more than one row")
            if batch.length == 0:
                self.subquery_cache[key] = None
            else:
                self.subquery_cache[key] = batch.columns[visible[0].key].item(0)
        return self.subquery_cache[key]


def execute_plan(plan: PlanNode, ctx: ExecContext) -> Batch:
    """Execute *plan* to completion and return its output batch."""
    batch = _dispatch(plan, ctx)
    if ctx.profile.copy_operator_output:
        batch = Batch(
            batch.length, {k: v.copy() for k, v in batch.columns.items()}
        )
    return batch


def _dispatch(plan: PlanNode, ctx: ExecContext) -> Batch:
    if isinstance(plan, ScanTable):
        return _exec_scan_table(plan, ctx)
    if isinstance(plan, ScanSnapshot):
        return _exec_scan_snapshot(plan, ctx)
    if isinstance(plan, CteRef):
        return _exec_cte_ref(plan, ctx)
    if isinstance(plan, Project):
        return _exec_project(plan, ctx)
    if isinstance(plan, Filter):
        return _exec_filter(plan, ctx)
    if isinstance(plan, Join):
        return _exec_join(plan, ctx)
    if isinstance(plan, Aggregate):
        return _exec_aggregate(plan, ctx)
    if isinstance(plan, Distinct):
        return _exec_distinct(plan, ctx)
    if isinstance(plan, Sort):
        return _exec_sort(plan, ctx)
    if isinstance(plan, Limit):
        return _exec_limit(plan, ctx)
    if isinstance(plan, Window):
        return _exec_window(plan, ctx)
    if isinstance(plan, UnionAll):
        return _exec_union_all(plan, ctx)
    if isinstance(plan, OneRow):
        return Batch(1, {})
    raise SQLExecutionError(f"cannot execute plan node {type(plan).__name__}")


def _exec_scan_table(plan: ScanTable, ctx: ExecContext) -> Batch:
    table = ctx.catalog.table(plan.table_name)
    columns: dict[str, Vector] = {}
    for name, key in plan.keys.items():
        columns[key] = table.ctid if name == CTID else table.columns[name]
    return Batch(table.n_rows, columns)


def _exec_scan_snapshot(plan: ScanSnapshot, ctx: ExecContext) -> Batch:
    view = ctx.catalog.resolve(plan.view_name)
    if view.snapshot is None:  # type: ignore[union-attr]
        raise SQLExecutionError(
            f"materialized view {plan.view_name!r} has no snapshot"
        )
    names, data, length = view.snapshot  # type: ignore[union-attr]
    columns = {key: data[name] for name, key in plan.keys.items()}
    return Batch(length, columns)


def _exec_cte_ref(plan: CteRef, ctx: ExecContext) -> Batch:
    cached = ctx.cte_cache.get(id(plan.plan))
    if cached is None:
        cached = execute_plan(plan.plan, ctx)
        ctx.cte_cache[id(plan.plan)] = cached
    columns = {dst: cached.columns[src] for src, dst in plan.rename.items()}
    return Batch(cached.length, columns)


def _exec_project(plan: Project, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    columns: dict[str, Vector] = {}
    for out, expr in plan.items:
        columns[out.key] = expr(child, ctx)
    if not plan.unnest_keys:
        return Batch(child.length, columns)
    return _expand_unnest(child.length, columns, plan.unnest_keys)


def _expand_unnest(
    length: int, columns: dict[str, Vector], unnest_keys: list[str]
) -> Batch:
    """PostgreSQL select-list unnest: expand rows by array elements."""
    lead = columns[unnest_keys[0]]
    counts = np.zeros(length, dtype=np.int64)
    lead_nulls = lead.nulls
    lead_values = lead.values
    for i in range(length):
        if not lead_nulls[i]:
            value = lead_values[i]
            if not isinstance(value, list):
                raise SQLExecutionError("unnest argument is not an array")
            counts[i] = len(value)
    total = int(counts.sum())
    repeats = np.repeat(np.arange(length), counts)
    out: dict[str, Vector] = {}
    for key, vec in columns.items():
        if key in unnest_keys:
            pieces = [
                vec.values[i] for i in range(length) if counts[i]
            ]
            flat = list(itertools.chain.from_iterable(pieces))
            out[key] = from_values(flat)
            if len(out[key]) != total:
                raise SQLExecutionError("unnest arrays have mismatched lengths")
        else:
            out[key] = gather(vec, repeats)
    return Batch(total, out)


def _exec_filter(plan: Filter, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    predicate = plan.predicate(child, ctx)
    keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
    positions = np.flatnonzero(keep)
    columns = {k: gather(v, positions) for k, v in child.columns.items()}
    return Batch(len(positions), columns)


def _equi_join_positions(
    left_codes: np.ndarray,
    right_codes: np.ndarray,
    kind: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised hash/sort join over pre-factorised key codes.

    Returns matching (left, right) row positions; -1 marks outer padding.
    Inner matches preserve left-row order (and right order within a key).
    """
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    # discard invalid (null, non-null-safe) build rows
    first_valid = np.searchsorted(sorted_codes, 0, side="left")
    order = order[first_valid:]
    sorted_codes = sorted_codes[first_valid:]

    probe_codes = np.where(left_codes < 0, np.int64(-1), left_codes)
    starts = np.searchsorted(sorted_codes, probe_codes, side="left")
    ends = np.searchsorted(sorted_codes, probe_codes, side="right")
    counts = ends - starts
    counts[left_codes < 0] = 0

    total = int(counts.sum())
    left_pos = np.repeat(np.arange(len(left_codes), dtype=np.int64), counts)
    prefix = np.zeros(len(counts), dtype=np.int64)
    if len(counts) > 1:
        prefix[1:] = np.cumsum(counts[:-1])
    offsets = (
        np.arange(total, dtype=np.int64)
        - np.repeat(prefix, counts)
        + np.repeat(starts, counts)
    )
    right_pos = order[offsets]

    if kind in ("left", "full"):
        unmatched = np.flatnonzero(counts == 0)
        if len(unmatched):
            left_pos = np.concatenate([left_pos, unmatched])
            right_pos = np.concatenate(
                [right_pos, np.full(len(unmatched), -1, dtype=np.int64)]
            )
            # keep left-row order (matched and padded rows interleaved)
            order = np.argsort(left_pos, kind="stable")
            left_pos = left_pos[order]
            right_pos = right_pos[order]
    if kind in ("right", "full"):
        matched = np.zeros(len(right_codes), dtype=bool)
        matched[right_pos[right_pos >= 0]] = True
        unmatched = np.flatnonzero(~matched)
        left_pos = np.concatenate(
            [left_pos, np.full(len(unmatched), -1, dtype=np.int64)]
        )
        right_pos = np.concatenate([right_pos, unmatched])
    return left_pos, right_pos


def _exec_join(plan: Join, ctx: ExecContext) -> Batch:
    left = execute_plan(plan.left, ctx)
    right = execute_plan(plan.right, ctx)

    if plan.left_keys:
        left_vectors = [k(left, ctx) for k in plan.left_keys]
        right_vectors = [k(right, ctx) for k in plan.right_keys]
        left_codes, right_codes = hashing.factorize_columns(
            list(zip(left_vectors, right_vectors)), plan.null_safe
        )
        lp, rp = _equi_join_positions(left_codes, right_codes, plan.kind)
    else:
        if plan.kind not in ("cross", "inner"):
            raise SQLExecutionError(
                f"{plan.kind} join requires at least one equality condition"
            )
        lp = np.repeat(np.arange(left.length, dtype=np.int64), right.length)
        rp = np.tile(np.arange(right.length, dtype=np.int64), left.length)

    columns: dict[str, Vector] = {}
    for key, vec in left.columns.items():
        columns[key] = gather(vec, lp, missing_null=True)
    for key, vec in right.columns.items():
        columns[key] = gather(vec, rp, missing_null=True)
    batch = Batch(len(lp), columns)

    if plan.residual is not None:
        if plan.kind not in ("inner", "cross"):
            raise SQLExecutionError(
                "non-equality conditions on outer joins are not supported"
            )
        predicate = plan.residual(batch, ctx)
        keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
        positions = np.flatnonzero(keep)
        batch = Batch(
            len(positions),
            {k: gather(v, positions) for k, v in batch.columns.items()},
        )
    return batch


def _exec_aggregate(plan: Aggregate, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    group_vectors = [expr(child, ctx) for _, expr in plan.groups]
    if group_vectors:
        codes, positions = hashing.group_codes(group_vectors)
        n_groups = len(positions)
    else:
        codes = np.zeros(child.length, dtype=np.int64)
        n_groups = 1
        positions = np.zeros(0, dtype=np.int64)

    columns: dict[str, Vector] = {}
    for (out, _), vec in zip(plan.groups, group_vectors):
        columns[out.key] = gather(vec, positions)
    for item in plan.aggregates:
        arg = item.arg(child, ctx) if item.arg is not None else None
        item_codes = codes
        if item.where is not None:
            # FILTER (WHERE ...) drops rows from this aggregate's input only;
            # dropping (rather than null-masking) keeps count(*)/array_agg
            # semantics right, since both observe null inputs
            predicate = item.where(child, ctx)
            keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
            kept = np.flatnonzero(keep)
            item_codes = codes[kept]
            if arg is not None:
                arg = gather(arg, kept)
        columns[item.out.key] = functions.compute_aggregate(
            item.func, arg, item_codes, n_groups, item.distinct
        )
    return Batch(n_groups, columns)


def _exec_distinct(plan: Distinct, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    if child.length == 0:
        return child
    vectors = [child.columns[out.key] for out in plan.schema]
    _, positions = hashing.group_codes(vectors)
    columns = {k: gather(v, positions) for k, v in child.columns.items()}
    return Batch(len(positions), columns)


def _exec_sort(plan: Sort, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    order = list(range(child.length))
    # multi-key sort with per-key direction: stable sorts from last key first
    for expr, asc, nulls_first in reversed(plan.keys):
        vec = expr(child, ctx)
        # PostgreSQL default: NULLS LAST for ASC, NULLS FIRST for DESC
        nf = (not asc) if nulls_first is None else nulls_first
        # marker for null rows relative to the 0 of non-null rows, chosen so
        # that after the per-key ``reverse`` nulls land on the requested side
        marker = (-1 if nf else 1) if asc else (1 if nf else -1)

        def single_key(i: int, v=vec, m=marker):
            if v.nulls[i]:
                return (m, None)
            return (0, v.values[i])

        try:
            order.sort(key=single_key, reverse=not asc)
        except TypeError:
            order.sort(key=lambda i, v=vec, m=marker: (
                m if v.nulls[i] else 0,
                "" if v.nulls[i] else str(v.values[i]),
            ), reverse=not asc)
    positions = np.asarray(order, dtype=np.int64)
    columns = {k: gather(v, positions) for k, v in child.columns.items()}
    return Batch(child.length, columns)


def _exec_limit(plan: Limit, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    start = plan.offset
    stop = child.length if plan.count is None else min(start + plan.count, child.length)
    positions = np.arange(start, max(stop, start), dtype=np.int64)
    columns = {k: gather(v, positions) for k, v in child.columns.items()}
    return Batch(len(positions), columns)


def _exec_window(plan: Window, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    columns = dict(child.columns)
    n = child.length
    for item in plan.windows:
        if item.partition:
            part_codes, _ = hashing.group_codes(
                [expr(child, ctx) for expr in item.partition]
            )
        else:
            part_codes = np.zeros(n, dtype=np.int64)
        order_vectors = [(expr(child, ctx), asc) for expr, asc in item.order]
        positions = list(range(n))
        # stable multi-key sort: last key first, partition last
        for vec, asc in reversed(order_vectors):
            positions.sort(
                key=lambda i, v=vec: (
                    (1 if v.nulls[i] else 0, v.values[i])
                    if not v.nulls[i]
                    else (1, None)
                ),
                reverse=not asc,
            )
        positions.sort(key=lambda i: part_codes[i])

        def order_key(i: int) -> tuple:
            return tuple(
                (bool(vec.nulls[i]), None if vec.nulls[i] else vec.values[i])
                for vec, _ in order_vectors
            )

        out = np.zeros(n, dtype=np.float64)
        current_partition = None
        row_number = rank = dense = 0
        previous_key: Any = object()
        for i in positions:
            if part_codes[i] != current_partition:
                current_partition = part_codes[i]
                row_number = rank = dense = 0
                previous_key = object()
            row_number += 1
            key = order_key(i)
            if key != previous_key:
                rank = row_number
                dense += 1
                previous_key = key
            if item.func == "row_number":
                out[i] = row_number
            elif item.func == "rank":
                out[i] = rank
            else:  # dense_rank
                out[i] = dense
        columns[item.out.key] = Vector(out, np.zeros(n, dtype=bool))
    return Batch(n, columns)


def _exec_union_all(plan: UnionAll, ctx: ExecContext) -> Batch:
    batches = [execute_plan(part, ctx) for part in plan.parts]
    columns: dict[str, Vector] = {}
    for position, out in enumerate(plan.schema):
        parts = []
        for part, batch in zip(plan.parts, batches):
            part_key = part.schema[position].key
            parts.append(batch.columns[part_key])
        columns[out.key] = concat_vectors(parts)
    total = sum(batch.length for batch in batches)
    return Batch(total, columns)
