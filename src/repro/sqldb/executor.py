"""Vectorised plan executor.

One executor serves both engine profiles; the profile only controls
materialisation behaviour (see :mod:`repro.sqldb.profile`):

* ``copy_operator_output`` — the PostgreSQL profile copies every operator's
  output vectors, modelling tuple materialisation in a buffer-backed
  executor; the Umbra profile pipelines references through.
* materialised CTEs are computed once per query and cached in the
  execution context.

Each operator is split into a *driver* (``_exec_*``: pulls child batches
through :func:`execute_plan`) and a *kernel* (``*_batch``: transforms
already-materialised batches).  The kernels are what the morsel-driven
parallel mode (:mod:`repro.sqldb.parallel`) runs per row-range, so serial
and parallel execution share one implementation of every operator.

When an :class:`~repro.sqldb.stats.ExecStats` recorder is attached to the
context, every operator dispatch records rows and (inclusive) wall time —
the substrate of ``Database.explain_analyze``.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import SQLExecutionError
from repro.sqldb.catalog import CTID, Catalog
from repro.sqldb.plan import (
    Aggregate,
    AggregateItem,
    Batch,
    CteRef,
    Distinct,
    Filter,
    IndexJoin,
    IndexScan,
    Join,
    Limit,
    OneRow,
    PlanNode,
    Project,
    ScanSnapshot,
    ScanTable,
    Sort,
    UnionAll,
    Window,
)
from repro.sqldb.profile import Profile
from repro.sqldb.stats import ExecStats
from repro.sqldb.vector import Vector, concat_vectors, from_values, gather
from repro.sqldb import functions, hashing

__all__ = [
    "ExecContext",
    "execute_plan",
    "aggregate_batch",
    "filter_batch",
    "join_batches",
    "project_batch",
    "slice_batch",
    "copy_batch",
]


@dataclass
class ExecContext:
    catalog: Catalog
    profile: Profile
    cte_cache: dict[int, Batch] = field(default_factory=dict)
    subquery_cache: dict[int, Any] = field(default_factory=dict)
    #: positional statement parameters bound to ``?`` / ``%s`` placeholders
    params: tuple = ()
    #: morsel-driven parallelism: worker count and shared thread pool
    #: (``pool is None`` keeps every plan on the serial path)
    workers: int = 1
    morsel_size: int = 65536
    pool: Any = None
    #: optional per-operator runtime statistics recorder
    stats: Optional[ExecStats] = None
    #: cooperative cancellation: absolute ``time.monotonic()`` deadline
    #: (statement timeout) and an externally settable cancel flag, both
    #: checked at operator and morsel boundaries
    deadline: Optional[float] = None
    cancel_event: Optional[threading.Event] = None
    #: guards the shared caches when morsel workers evaluate expressions
    lock: threading.RLock = field(default_factory=threading.RLock)

    def check_cancelled(self) -> None:
        """Raise :class:`~repro.errors.QueryCancelled` if this statement
        was cancelled or has exceeded its timeout."""
        if self.cancel_event is not None and self.cancel_event.is_set():
            from repro.errors import QueryCancelled

            raise QueryCancelled("query cancelled on user request")
        if self.deadline is not None and time.monotonic() > self.deadline:
            from repro.errors import QueryCancelled

            raise QueryCancelled(
                "query cancelled: statement timeout exceeded"
            )

    def scalar_subquery(self, plan: PlanNode) -> Any:
        """Execute an uncorrelated scalar subquery once, caching the value.

        Thread-safe: morsel workers evaluating the same expression race to
        this cache, so the compute-and-store is serialised on the context
        lock (re-entrant — a subquery may itself contain subqueries).
        """
        key = id(plan)
        if key in self.subquery_cache:
            return self.subquery_cache[key]
        with self.lock:
            if key not in self.subquery_cache:
                batch = execute_plan(plan, self.serial())
                visible = [out for out in plan.schema if not out.hidden]
                if len(visible) != 1:
                    raise SQLExecutionError(
                        "scalar subquery must return exactly one column"
                    )
                if batch.length > 1:
                    raise SQLExecutionError(
                        "scalar subquery returned more than one row"
                    )
                if batch.length == 0:
                    self.subquery_cache[key] = None
                else:
                    self.subquery_cache[key] = batch.columns[visible[0].key].item(0)
        return self.subquery_cache[key]

    def serial(self) -> "ExecContext":
        """A view of this context with parallel dispatch disabled.

        Shares every cache (and the lock) with the parent; used inside
        morsel workers so nested plan executions never re-enter the pool
        (re-submission from a worker thread could deadlock a full pool).
        """
        if self.pool is None:
            return self
        clone = ExecContext(
            self.catalog,
            self.profile,
            cte_cache=self.cte_cache,
            subquery_cache=self.subquery_cache,
            params=self.params,
            workers=1,
            morsel_size=self.morsel_size,
            pool=None,
            stats=self.stats,
            deadline=self.deadline,
            cancel_event=self.cancel_event,
        )
        clone.lock = self.lock
        return clone


def execute_plan(plan: PlanNode, ctx: ExecContext) -> Batch:
    """Execute *plan* to completion and return its output batch."""
    batch = _dispatch(plan, ctx)
    if ctx.profile.copy_operator_output:
        batch = copy_batch(batch)
    return batch


def _dispatch(plan: PlanNode, ctx: ExecContext) -> Batch:
    ctx.check_cancelled()
    if ctx.pool is not None:
        # morsel-driven parallel mode: eligible pipelines execute per-morsel
        from repro.sqldb.parallel import try_parallel

        batch = try_parallel(plan, ctx)
        if batch is not None:
            return batch
    if ctx.stats is None:
        return _dispatch_serial(plan, ctx)
    started = time.perf_counter()
    batch = _dispatch_serial(plan, ctx)
    ctx.stats.record(plan, batch.length, time.perf_counter() - started)
    return batch


def _dispatch_serial(plan: PlanNode, ctx: ExecContext) -> Batch:
    if isinstance(plan, ScanTable):
        return _exec_scan_table(plan, ctx)
    if isinstance(plan, IndexScan):
        return _exec_index_scan(plan, ctx)
    if isinstance(plan, IndexJoin):
        return _exec_index_join(plan, ctx)
    if isinstance(plan, ScanSnapshot):
        return _exec_scan_snapshot(plan, ctx)
    if isinstance(plan, CteRef):
        return _exec_cte_ref(plan, ctx)
    if isinstance(plan, Project):
        return project_batch(plan, execute_plan(plan.child, ctx), ctx)
    if isinstance(plan, Filter):
        return filter_batch(plan, execute_plan(plan.child, ctx), ctx)
    if isinstance(plan, Join):
        return _exec_join(plan, ctx)
    if isinstance(plan, Aggregate):
        return aggregate_batch(plan, execute_plan(plan.child, ctx), ctx)
    if isinstance(plan, Distinct):
        return _exec_distinct(plan, ctx)
    if isinstance(plan, Sort):
        return _exec_sort(plan, ctx)
    if isinstance(plan, Limit):
        return _exec_limit(plan, ctx)
    if isinstance(plan, Window):
        return _exec_window(plan, ctx)
    if isinstance(plan, UnionAll):
        return _exec_union_all(plan, ctx)
    if isinstance(plan, OneRow):
        return Batch(1, {})
    raise SQLExecutionError(f"cannot execute plan node {type(plan).__name__}")


# ---------------------------------------------------------------------------
# batch helpers shared with the parallel executor
# ---------------------------------------------------------------------------


def slice_batch(batch: Batch, lo: int, hi: int) -> Batch:
    """A zero-copy view of rows ``[lo, hi)`` (numpy slices share storage)."""
    return Batch(
        hi - lo, {k: Vector(v.values[lo:hi], v.nulls[lo:hi]) for k, v in batch.columns.items()}
    )


def copy_batch(batch: Batch) -> Batch:
    """Deep-copy all vectors (the postgres profile's tuple materialisation)."""
    return Batch(batch.length, {k: v.copy() for k, v in batch.columns.items()})


# ---------------------------------------------------------------------------
# scans and shared plans
# ---------------------------------------------------------------------------


def _exec_scan_table(plan: ScanTable, ctx: ExecContext) -> Batch:
    table = ctx.catalog.table(plan.table_name)
    columns: dict[str, Vector] = {}
    for name, key in plan.keys.items():
        columns[key] = table.ctid if name == CTID else table.columns[name]
    return Batch(table.n_rows, columns)


def _resolve_index(plan_table: str, index_name: str, ctx: ExecContext):
    """Fetch (table, index) for an index access path, sanity-checked.

    Plans are cache-keyed on the catalog's index epoch, so a mismatch here
    means an internal invariant broke (stale index after DML, or a plan
    executed against a catalog it was not built for) — fail loudly.
    """
    table = ctx.catalog.table(plan_table)
    index = ctx.catalog.index(index_name)
    if index.table != plan_table or index.n_rows != table.n_rows:
        raise SQLExecutionError(
            f"index {index_name!r} is out of sync with table "
            f"{plan_table!r} ({index.n_rows} vs {table.n_rows} rows)"
        )
    return table, index


def _index_lookup_positions(index, lookup: tuple) -> np.ndarray:
    kind, operand = lookup
    if kind == "eq":
        key = operand[0] if len(operand) == 1 else tuple(operand)
        return index.eq_positions(key)
    if kind == "in":
        return index.in_positions(operand)
    if kind == "range":
        lo, lo_inclusive, hi, hi_inclusive = operand
        return index.range_positions(lo, lo_inclusive, hi, hi_inclusive)
    raise SQLExecutionError(f"unknown index lookup kind {kind!r}")


def _exec_index_scan(plan: IndexScan, ctx: ExecContext) -> Batch:
    table, index = _resolve_index(plan.table_name, plan.index_name, ctx)
    positions = _index_lookup_positions(index, plan.lookup)
    columns: dict[str, Vector] = {}
    for name, key in plan.keys.items():
        source = table.ctid if name == CTID else table.columns[name]
        columns[key] = gather(source, positions)
    return Batch(len(positions), columns)


def _exec_index_join(plan: IndexJoin, ctx: ExecContext) -> Batch:
    left = execute_plan(plan.left, ctx)
    return index_join_batch(plan, left, ctx)


def index_join_batch(plan: IndexJoin, left: Batch, ctx: ExecContext) -> Batch:
    """Probe the inner index once per left row (the INLJ kernel).

    Output rows are ordered by left row, then ascending inner position
    within a key — exactly the hash join's contract, so swapping the
    operators never changes results.
    """
    table, index = _resolve_index(plan.table_name, plan.index_name, ctx)
    key_vectors = [expr(left, ctx) for expr in plan.left_keys]
    n = left.length
    composite = len(key_vectors) > 1
    counts = np.zeros(n, dtype=np.int64)
    parts: list[np.ndarray] = []
    for i in range(n):
        if any(vec.nulls[i] for vec in key_vectors):
            continue  # SQL equality: null keys match nothing
        if composite:
            key: Any = tuple(vec.values[i] for vec in key_vectors)
        else:
            key = key_vectors[0].values[i]
        positions = index.eq_positions(key)
        if len(positions):
            counts[i] = len(positions)
            parts.append(positions)
    right_pos = (
        np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    )
    left_pos = np.repeat(np.arange(n, dtype=np.int64), counts)
    if plan.kind == "left":
        unmatched = np.flatnonzero(counts == 0)
        if len(unmatched):
            left_pos = np.concatenate([left_pos, unmatched])
            right_pos = np.concatenate(
                [right_pos, np.full(len(unmatched), -1, dtype=np.int64)]
            )
            order = np.argsort(left_pos, kind="stable")
            left_pos = left_pos[order]
            right_pos = right_pos[order]

    columns: dict[str, Vector] = {}
    for key, vec in left.columns.items():
        columns[key] = gather(vec, left_pos, missing_null=True)
    for name, key in plan.keys.items():
        source = table.ctid if name == CTID else table.columns[name]
        columns[key] = gather(source, right_pos, missing_null=True)
    batch = Batch(len(left_pos), columns)

    if plan.residual is not None:
        if plan.kind != "inner":
            raise SQLExecutionError(
                "index join residuals require an inner join"
            )
        predicate = plan.residual(batch, ctx)
        keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
        positions = np.flatnonzero(keep)
        batch = Batch(
            len(positions),
            {k: gather(v, positions) for k, v in batch.columns.items()},
        )
    return batch


def _exec_scan_snapshot(plan: ScanSnapshot, ctx: ExecContext) -> Batch:
    view = ctx.catalog.resolve(plan.view_name)
    if view.snapshot is None:  # type: ignore[union-attr]
        raise SQLExecutionError(
            f"materialized view {plan.view_name!r} has no snapshot"
        )
    names, data, length = view.snapshot  # type: ignore[union-attr]
    columns = {key: data[name] for name, key in plan.keys.items()}
    return Batch(length, columns)


def _exec_cte_ref(plan: CteRef, ctx: ExecContext) -> Batch:
    with ctx.lock:
        cached = ctx.cte_cache.get(id(plan.plan))
        if cached is None:
            cached = execute_plan(plan.plan, ctx)
            ctx.cte_cache[id(plan.plan)] = cached
    columns = {dst: cached.columns[src] for src, dst in plan.rename.items()}
    return Batch(cached.length, columns)


# ---------------------------------------------------------------------------
# projection (with unnest expansion)
# ---------------------------------------------------------------------------


def project_batch(plan: Project, child: Batch, ctx: ExecContext) -> Batch:
    columns: dict[str, Vector] = {}
    for out, expr in plan.items:
        columns[out.key] = expr(child, ctx)
    if not plan.unnest_keys:
        return Batch(child.length, columns)
    return _expand_unnest(child.length, columns, plan.unnest_keys)


#: C-looped length extraction over an object array of lists; -1 flags rows
#: whose value is not an array
_ARRAY_SIZES = np.frompyfunc(
    lambda v: len(v) if isinstance(v, list) else -1, 1, 1
)


def _expand_unnest(
    length: int, columns: dict[str, Vector], unnest_keys: list[str]
) -> Batch:
    """PostgreSQL select-list unnest: expand rows by array elements.

    Vectorised: one array-length extraction pass over the lead column,
    one ``np.repeat`` for the pass-through columns and one flatten pass
    per unnested column (no per-row Python loop).
    """
    lead = columns[unnest_keys[0]]
    counts = np.zeros(length, dtype=np.int64)
    valid = ~lead.nulls
    if valid.any():
        sizes = _ARRAY_SIZES(lead.values[valid]).astype(np.int64)
        if (sizes < 0).any():
            raise SQLExecutionError("unnest argument is not an array")
        counts[valid] = sizes
    total = int(counts.sum())
    repeats = np.repeat(np.arange(length), counts)
    expanding = counts > 0
    out: dict[str, Vector] = {}
    for key, vec in columns.items():
        if key in unnest_keys:
            try:
                flat = list(
                    itertools.chain.from_iterable(vec.values[expanding])
                )
            except TypeError:
                raise SQLExecutionError(
                    "unnest argument is not an array"
                ) from None
            out[key] = from_values(flat)
            if len(out[key]) != total:
                raise SQLExecutionError("unnest arrays have mismatched lengths")
        else:
            out[key] = gather(vec, repeats)
    return Batch(total, out)


# ---------------------------------------------------------------------------
# filter
# ---------------------------------------------------------------------------


def filter_batch(plan: Filter, child: Batch, ctx: ExecContext) -> Batch:
    if len(plan.conjuncts) > 1:
        # sequential conjunct evaluation: each part runs on the survivors
        # of the previous one.  Rows kept = rows where every conjunct is
        # definitely TRUE — identical to the combined AND predicate under
        # three-valued logic, but later (less selective) conjuncts touch
        # fewer rows
        batch = child
        for conjunct in plan.conjuncts:
            predicate = conjunct(batch, ctx)
            keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
            if keep.all():
                continue
            positions = np.flatnonzero(keep)
            batch = Batch(
                len(positions),
                {k: gather(v, positions) for k, v in batch.columns.items()},
            )
        if batch is child:
            return Batch(child.length, dict(child.columns))
        return batch
    predicate = plan.predicate(child, ctx)
    keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
    positions = np.flatnonzero(keep)
    columns = {k: gather(v, positions) for k, v in child.columns.items()}
    return Batch(len(positions), columns)


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


def _equi_join_positions(
    left_codes: np.ndarray,
    right_codes: np.ndarray,
    kind: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised hash/sort join over pre-factorised key codes.

    Returns matching (left, right) row positions; -1 marks outer padding.
    Inner matches preserve left-row order (and right order within a key).
    """
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    # discard invalid (null, non-null-safe) build rows
    first_valid = np.searchsorted(sorted_codes, 0, side="left")
    order = order[first_valid:]
    sorted_codes = sorted_codes[first_valid:]

    probe_codes = np.where(left_codes < 0, np.int64(-1), left_codes)
    starts = np.searchsorted(sorted_codes, probe_codes, side="left")
    ends = np.searchsorted(sorted_codes, probe_codes, side="right")
    counts = ends - starts
    counts[left_codes < 0] = 0

    total = int(counts.sum())
    left_pos = np.repeat(np.arange(len(left_codes), dtype=np.int64), counts)
    prefix = np.zeros(len(counts), dtype=np.int64)
    if len(counts) > 1:
        prefix[1:] = np.cumsum(counts[:-1])
    offsets = (
        np.arange(total, dtype=np.int64)
        - np.repeat(prefix, counts)
        + np.repeat(starts, counts)
    )
    right_pos = order[offsets]

    if kind in ("left", "full"):
        unmatched = np.flatnonzero(counts == 0)
        if len(unmatched):
            left_pos = np.concatenate([left_pos, unmatched])
            right_pos = np.concatenate(
                [right_pos, np.full(len(unmatched), -1, dtype=np.int64)]
            )
            # keep left-row order (matched and padded rows interleaved)
            order = np.argsort(left_pos, kind="stable")
            left_pos = left_pos[order]
            right_pos = right_pos[order]
    if kind in ("right", "full"):
        matched = np.zeros(len(right_codes), dtype=bool)
        matched[right_pos[right_pos >= 0]] = True
        unmatched = np.flatnonzero(~matched)
        left_pos = np.concatenate(
            [left_pos, np.full(len(unmatched), -1, dtype=np.int64)]
        )
        right_pos = np.concatenate([right_pos, unmatched])
    return left_pos, right_pos


def join_batches(
    plan: Join, left: Batch, right: Batch, ctx: ExecContext
) -> Batch:
    """Join two materialised batches (the probe kernel of morsel mode).

    Output rows are ordered by left row (then right row within a key),
    so probing morsels of the left side in order and concatenating
    reproduces the serial output exactly.
    """
    if plan.left_keys:
        left_vectors = [k(left, ctx) for k in plan.left_keys]
        right_vectors = [k(right, ctx) for k in plan.right_keys]
        left_codes, right_codes = hashing.factorize_columns(
            list(zip(left_vectors, right_vectors)), plan.null_safe
        )
        lp, rp = _equi_join_positions(left_codes, right_codes, plan.kind)
    else:
        if plan.kind not in ("cross", "inner"):
            raise SQLExecutionError(
                f"{plan.kind} join requires at least one equality condition"
            )
        lp = np.repeat(np.arange(left.length, dtype=np.int64), right.length)
        rp = np.tile(np.arange(right.length, dtype=np.int64), left.length)

    columns: dict[str, Vector] = {}
    for key, vec in left.columns.items():
        columns[key] = gather(vec, lp, missing_null=True)
    for key, vec in right.columns.items():
        columns[key] = gather(vec, rp, missing_null=True)
    batch = Batch(len(lp), columns)

    if plan.residual is not None:
        if plan.kind not in ("inner", "cross"):
            raise SQLExecutionError(
                "non-equality conditions on outer joins are not supported"
            )
        predicate = plan.residual(batch, ctx)
        keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
        positions = np.flatnonzero(keep)
        batch = Batch(
            len(positions),
            {k: gather(v, positions) for k, v in batch.columns.items()},
        )
    return batch


def _exec_join(plan: Join, ctx: ExecContext) -> Batch:
    left = execute_plan(plan.left, ctx)
    right = execute_plan(plan.right, ctx)
    return join_batches(plan, left, right, ctx)


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def aggregate_item_inputs(
    item: AggregateItem, child: Batch, ctx: ExecContext, codes: np.ndarray
) -> tuple[np.ndarray, Optional[Vector]]:
    """(group codes, argument vector) for one aggregate, FILTER applied."""
    arg = item.arg(child, ctx) if item.arg is not None else None
    item_codes = codes
    if item.where is not None:
        # FILTER (WHERE ...) drops rows from this aggregate's input only;
        # dropping (rather than null-masking) keeps count(*)/array_agg
        # semantics right, since both observe null inputs
        predicate = item.where(child, ctx)
        keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
        kept = np.flatnonzero(keep)
        item_codes = codes[kept]
        if arg is not None:
            arg = gather(arg, kept)
    return item_codes, arg


def aggregate_batch(plan: Aggregate, child: Batch, ctx: ExecContext) -> Batch:
    group_vectors = [expr(child, ctx) for _, expr in plan.groups]
    if group_vectors:
        codes, positions = hashing.group_codes(group_vectors)
        n_groups = len(positions)
    else:
        codes = np.zeros(child.length, dtype=np.int64)
        n_groups = 1
        positions = np.zeros(0, dtype=np.int64)

    columns: dict[str, Vector] = {}
    for (out, _), vec in zip(plan.groups, group_vectors):
        columns[out.key] = gather(vec, positions)
    for item in plan.aggregates:
        item_codes, arg = aggregate_item_inputs(item, child, ctx, codes)
        columns[item.out.key] = functions.compute_aggregate(
            item.func, arg, item_codes, n_groups, item.distinct
        )
    return Batch(n_groups, columns)


# ---------------------------------------------------------------------------
# pipeline breakers (always serial)
# ---------------------------------------------------------------------------


def _exec_distinct(plan: Distinct, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    if child.length == 0:
        return child
    vectors = [child.columns[out.key] for out in plan.schema]
    _, positions = hashing.group_codes(vectors)
    columns = {k: gather(v, positions) for k, v in child.columns.items()}
    return Batch(len(positions), columns)


def _exec_sort(plan: Sort, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    order = list(range(child.length))
    # multi-key sort with per-key direction: stable sorts from last key first
    for expr, asc, nulls_first in reversed(plan.keys):
        vec = expr(child, ctx)
        # PostgreSQL default: NULLS LAST for ASC, NULLS FIRST for DESC
        nf = (not asc) if nulls_first is None else nulls_first
        # marker for null rows relative to the 0 of non-null rows, chosen so
        # that after the per-key ``reverse`` nulls land on the requested side
        marker = (-1 if nf else 1) if asc else (1 if nf else -1)

        def single_key(i: int, v=vec, m=marker):
            if v.nulls[i]:
                return (m, None)
            return (0, v.values[i])

        try:
            order.sort(key=single_key, reverse=not asc)
        except TypeError:
            order.sort(key=lambda i, v=vec, m=marker: (
                m if v.nulls[i] else 0,
                "" if v.nulls[i] else str(v.values[i]),
            ), reverse=not asc)
    positions = np.asarray(order, dtype=np.int64)
    columns = {k: gather(v, positions) for k, v in child.columns.items()}
    return Batch(child.length, columns)


def _exec_limit(plan: Limit, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    start = plan.offset
    stop = child.length if plan.count is None else min(start + plan.count, child.length)
    positions = np.arange(start, max(stop, start), dtype=np.int64)
    columns = {k: gather(v, positions) for k, v in child.columns.items()}
    return Batch(len(positions), columns)


def _exec_window(plan: Window, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    columns = dict(child.columns)
    n = child.length
    for item in plan.windows:
        if item.partition:
            part_codes, _ = hashing.group_codes(
                [expr(child, ctx) for expr in item.partition]
            )
        else:
            part_codes = np.zeros(n, dtype=np.int64)
        order_vectors = [(expr(child, ctx), asc) for expr, asc in item.order]
        positions = list(range(n))
        # stable multi-key sort: last key first, partition last
        for vec, asc in reversed(order_vectors):
            positions.sort(
                key=lambda i, v=vec: (
                    (1 if v.nulls[i] else 0, v.values[i])
                    if not v.nulls[i]
                    else (1, None)
                ),
                reverse=not asc,
            )
        positions.sort(key=lambda i: part_codes[i])

        def order_key(i: int) -> tuple:
            return tuple(
                (bool(vec.nulls[i]), None if vec.nulls[i] else vec.values[i])
                for vec, _ in order_vectors
            )

        out = np.zeros(n, dtype=np.float64)
        current_partition = None
        row_number = rank = dense = 0
        previous_key: Any = object()
        for i in positions:
            if part_codes[i] != current_partition:
                current_partition = part_codes[i]
                row_number = rank = dense = 0
                previous_key = object()
            row_number += 1
            key = order_key(i)
            if key != previous_key:
                rank = row_number
                dense += 1
                previous_key = key
            if item.func == "row_number":
                out[i] = row_number
            elif item.func == "rank":
                out[i] = rank
            else:  # dense_rank
                out[i] = dense
        columns[item.out.key] = Vector(out, np.zeros(n, dtype=bool))
    return Batch(n, columns)


def _exec_union_all(plan: UnionAll, ctx: ExecContext) -> Batch:
    batches = [execute_plan(part, ctx) for part in plan.parts]
    columns: dict[str, Vector] = {}
    for position, out in enumerate(plan.schema):
        parts = []
        for part, batch in zip(plan.parts, batches):
            part_key = part.schema[position].key
            parts.append(batch.columns[part_key])
        columns[out.key] = concat_vectors(parts)
    total = sum(batch.length for batch in batches)
    return Batch(total, columns)
