"""Vectorised plan executor.

One executor serves both engine profiles; the profile only controls
materialisation behaviour (see :mod:`repro.sqldb.profile`):

* ``copy_operator_output`` — the PostgreSQL profile copies every operator's
  output vectors, modelling tuple materialisation in a buffer-backed
  executor; the Umbra profile pipelines references through.
* materialised CTEs are computed once per query and cached in the
  execution context.

Each operator is split into a *driver* (``_exec_*``: pulls child batches
through :func:`execute_plan`) and a *kernel* (``*_batch``: transforms
already-materialised batches).  The kernels are what the morsel-driven
parallel mode (:mod:`repro.sqldb.parallel`) runs per row-range, so serial
and parallel execution share one implementation of every operator.

When an :class:`~repro.sqldb.stats.ExecStats` recorder is attached to the
context, every operator dispatch records rows and (inclusive) wall time —
the substrate of ``Database.explain_analyze``.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import SQLExecutionError
from repro.sqldb.catalog import CTID, Catalog
from repro.sqldb.plan import (
    Aggregate,
    AggregateItem,
    Batch,
    CteRef,
    Distinct,
    Filter,
    IndexJoin,
    IndexScan,
    Join,
    Limit,
    OneRow,
    PlanNode,
    Project,
    ScanSnapshot,
    ScanTable,
    Sort,
    UnionAll,
    Window,
)
from repro.sqldb.profile import Profile
from repro.sqldb.stats import ExecStats
from repro.sqldb.vector import Vector, concat_vectors, from_values, gather
from repro.sqldb import functions, hashing
from repro.sqldb.memory import (
    HASH_ROW_BYTES,
    SORT_KEY_BYTES,
    batch_bytes,
)

__all__ = [
    "ExecContext",
    "execute_plan",
    "aggregate_batch",
    "filter_batch",
    "join_batches",
    "project_batch",
    "slice_batch",
    "copy_batch",
]


@dataclass
class ExecContext:
    catalog: Catalog
    profile: Profile
    cte_cache: dict[int, Batch] = field(default_factory=dict)
    subquery_cache: dict[int, Any] = field(default_factory=dict)
    #: positional statement parameters bound to ``?`` / ``%s`` placeholders
    params: tuple = ()
    #: morsel-driven parallelism: worker count and shared thread pool
    #: (``pool is None`` keeps every plan on the serial path)
    workers: int = 1
    morsel_size: int = 65536
    pool: Any = None
    #: optional per-operator runtime statistics recorder
    stats: Optional[ExecStats] = None
    #: cooperative cancellation: absolute ``time.monotonic()`` deadline
    #: (statement timeout) and an externally settable cancel flag, both
    #: checked at operator and morsel boundaries
    deadline: Optional[float] = None
    cancel_event: Optional[threading.Event] = None
    #: guards the shared caches when morsel workers evaluate expressions
    lock: threading.RLock = field(default_factory=threading.RLock)
    #: this statement's :class:`~repro.sqldb.memory.MemoryGrant`
    #: (``None`` = unlimited: every reserve succeeds, nothing spills)
    memory: Any = None

    # -- memory accounting ---------------------------------------------------

    def mem_reserve(self, nbytes: int, point: str, plan: Any = None) -> bool:
        """Try a degradable reservation; ``False`` = take the spill path."""
        if self.memory is None:
            return True
        ok = self.memory.reserve(int(nbytes), point)
        if self.stats is not None and plan is not None and ok:
            self.stats.record_memory(plan, peak_bytes=int(nbytes))
        return ok

    def mem_require(self, nbytes: int, point: str, plan: Any = None) -> None:
        """A non-degradable reservation; raises 53400/53200 on refusal."""
        if self.memory is None:
            return
        self.memory.require(int(nbytes), point)
        if self.stats is not None and plan is not None:
            self.stats.record_memory(plan, peak_bytes=int(nbytes))

    def mem_release(self, nbytes: int) -> None:
        if self.memory is not None:
            self.memory.release(int(nbytes))

    def mem_spilled(self, nbytes: int, point: str, plan: Any = None) -> None:
        """Record *nbytes* written to a spill file at *point*."""
        if self.memory is None:
            return
        self.memory.note_spill(int(nbytes), point)
        if self.stats is not None and plan is not None:
            self.stats.record_memory(plan, spilled_bytes=int(nbytes))

    def mem_chunk(self) -> int:
        """Working-chunk size for spill paths (a quarter of the tightest
        budget, so run generation and partition passes always fit)."""
        if self.memory is None:
            return 1 << 20
        broker = self.memory.broker
        budget = broker.query_limit
        if budget is None:
            budget = broker.limit
        if budget is None:
            return 1 << 20
        # under simulated allocator pressure every accounted size is
        # scaled up; shrink the chunk so the *scaled* request still fits
        pressure = getattr(broker.faults, "pressure", 1.0)
        return max(256, int(budget / pressure) // 4)

    def check_cancelled(self) -> None:
        """Raise :class:`~repro.errors.QueryCancelled` if this statement
        was cancelled or has exceeded its timeout."""
        if self.cancel_event is not None and self.cancel_event.is_set():
            from repro.errors import QueryCancelled

            raise QueryCancelled("query cancelled on user request")
        if self.deadline is not None and time.monotonic() > self.deadline:
            from repro.errors import QueryCancelled

            raise QueryCancelled(
                "query cancelled: statement timeout exceeded"
            )

    def scalar_subquery(self, plan: PlanNode) -> Any:
        """Execute an uncorrelated scalar subquery once, caching the value.

        Thread-safe: morsel workers evaluating the same expression race to
        this cache, so the compute-and-store is serialised on the context
        lock (re-entrant — a subquery may itself contain subqueries).
        """
        key = id(plan)
        if key in self.subquery_cache:
            return self.subquery_cache[key]
        with self.lock:
            if key not in self.subquery_cache:
                batch = execute_plan(plan, self.serial())
                visible = [out for out in plan.schema if not out.hidden]
                if len(visible) != 1:
                    raise SQLExecutionError(
                        "scalar subquery must return exactly one column"
                    )
                if batch.length > 1:
                    raise SQLExecutionError(
                        "scalar subquery returned more than one row"
                    )
                if batch.length == 0:
                    self.subquery_cache[key] = None
                else:
                    self.subquery_cache[key] = batch.columns[visible[0].key].item(0)
        return self.subquery_cache[key]

    def serial(self) -> "ExecContext":
        """A view of this context with parallel dispatch disabled.

        Shares every cache (and the lock) with the parent; used inside
        morsel workers so nested plan executions never re-enter the pool
        (re-submission from a worker thread could deadlock a full pool).
        """
        if self.pool is None:
            return self
        clone = ExecContext(
            self.catalog,
            self.profile,
            cte_cache=self.cte_cache,
            subquery_cache=self.subquery_cache,
            params=self.params,
            workers=1,
            morsel_size=self.morsel_size,
            pool=None,
            stats=self.stats,
            deadline=self.deadline,
            cancel_event=self.cancel_event,
            memory=self.memory,
        )
        clone.lock = self.lock
        return clone


def execute_plan(plan: PlanNode, ctx: ExecContext) -> Batch:
    """Execute *plan* to completion and return its output batch."""
    batch = _dispatch(plan, ctx)
    if ctx.profile.copy_operator_output:
        batch = copy_batch(batch)
    return batch


def _dispatch(plan: PlanNode, ctx: ExecContext) -> Batch:
    ctx.check_cancelled()
    if ctx.pool is not None:
        # morsel-driven parallel mode: eligible pipelines execute per-morsel
        from repro.sqldb.parallel import try_parallel

        batch = try_parallel(plan, ctx)
        if batch is not None:
            return batch
    if ctx.stats is None:
        return _dispatch_serial(plan, ctx)
    started = time.perf_counter()
    batch = _dispatch_serial(plan, ctx)
    ctx.stats.record(plan, batch.length, time.perf_counter() - started)
    return batch


def _dispatch_serial(plan: PlanNode, ctx: ExecContext) -> Batch:
    if isinstance(plan, ScanTable):
        return _exec_scan_table(plan, ctx)
    if isinstance(plan, IndexScan):
        return _exec_index_scan(plan, ctx)
    if isinstance(plan, IndexJoin):
        return _exec_index_join(plan, ctx)
    if isinstance(plan, ScanSnapshot):
        return _exec_scan_snapshot(plan, ctx)
    if isinstance(plan, CteRef):
        return _exec_cte_ref(plan, ctx)
    if isinstance(plan, Project):
        return project_batch(plan, execute_plan(plan.child, ctx), ctx)
    if isinstance(plan, Filter):
        return filter_batch(plan, execute_plan(plan.child, ctx), ctx)
    if isinstance(plan, Join):
        return _exec_join(plan, ctx)
    if isinstance(plan, Aggregate):
        return aggregate_batch(plan, execute_plan(plan.child, ctx), ctx)
    if isinstance(plan, Distinct):
        return _exec_distinct(plan, ctx)
    if isinstance(plan, Sort):
        return _exec_sort(plan, ctx)
    if isinstance(plan, Limit):
        return _exec_limit(plan, ctx)
    if isinstance(plan, Window):
        return _exec_window(plan, ctx)
    if isinstance(plan, UnionAll):
        return _exec_union_all(plan, ctx)
    if isinstance(plan, OneRow):
        return Batch(1, {})
    raise SQLExecutionError(f"cannot execute plan node {type(plan).__name__}")


# ---------------------------------------------------------------------------
# batch helpers shared with the parallel executor
# ---------------------------------------------------------------------------


def slice_batch(batch: Batch, lo: int, hi: int) -> Batch:
    """A zero-copy view of rows ``[lo, hi)`` (numpy slices share storage)."""
    return Batch(
        hi - lo, {k: Vector(v.values[lo:hi], v.nulls[lo:hi]) for k, v in batch.columns.items()}
    )


def copy_batch(batch: Batch) -> Batch:
    """Deep-copy all vectors (the postgres profile's tuple materialisation)."""
    return Batch(batch.length, {k: v.copy() for k, v in batch.columns.items()})


# ---------------------------------------------------------------------------
# scans and shared plans
# ---------------------------------------------------------------------------


def _exec_scan_table(plan: ScanTable, ctx: ExecContext) -> Batch:
    table = ctx.catalog.table(plan.table_name)
    columns: dict[str, Vector] = {}
    for name, key in plan.keys.items():
        columns[key] = table.ctid if name == CTID else table.columns[name]
    return Batch(table.n_rows, columns)


def _resolve_index(plan_table: str, index_name: str, ctx: ExecContext):
    """Fetch (table, index) for an index access path, sanity-checked.

    Plans are cache-keyed on the catalog's index epoch, so a mismatch here
    means an internal invariant broke (stale index after DML, or a plan
    executed against a catalog it was not built for) — fail loudly.
    """
    table = ctx.catalog.table(plan_table)
    index = ctx.catalog.index(index_name)
    if index.table != plan_table or index.n_rows != table.n_rows:
        raise SQLExecutionError(
            f"index {index_name!r} is out of sync with table "
            f"{plan_table!r} ({index.n_rows} vs {table.n_rows} rows)"
        )
    return table, index


def _index_lookup_positions(index, lookup: tuple) -> np.ndarray:
    kind, operand = lookup
    if kind == "eq":
        key = operand[0] if len(operand) == 1 else tuple(operand)
        return index.eq_positions(key)
    if kind == "in":
        return index.in_positions(operand)
    if kind == "range":
        lo, lo_inclusive, hi, hi_inclusive = operand
        return index.range_positions(lo, lo_inclusive, hi, hi_inclusive)
    raise SQLExecutionError(f"unknown index lookup kind {kind!r}")


def _exec_index_scan(plan: IndexScan, ctx: ExecContext) -> Batch:
    table, index = _resolve_index(plan.table_name, plan.index_name, ctx)
    positions = _index_lookup_positions(index, plan.lookup)
    columns: dict[str, Vector] = {}
    for name, key in plan.keys.items():
        source = table.ctid if name == CTID else table.columns[name]
        columns[key] = gather(source, positions)
    return Batch(len(positions), columns)


def _exec_index_join(plan: IndexJoin, ctx: ExecContext) -> Batch:
    left = execute_plan(plan.left, ctx)
    return index_join_batch(plan, left, ctx)


def index_join_batch(plan: IndexJoin, left: Batch, ctx: ExecContext) -> Batch:
    """Probe the inner index once per left row (the INLJ kernel).

    Output rows are ordered by left row, then ascending inner position
    within a key — exactly the hash join's contract, so swapping the
    operators never changes results.
    """
    table, index = _resolve_index(plan.table_name, plan.index_name, ctx)
    key_vectors = [expr(left, ctx) for expr in plan.left_keys]
    n = left.length
    composite = len(key_vectors) > 1
    counts = np.zeros(n, dtype=np.int64)
    parts: list[np.ndarray] = []
    for i in range(n):
        if any(vec.nulls[i] for vec in key_vectors):
            continue  # SQL equality: null keys match nothing
        if composite:
            key: Any = tuple(vec.values[i] for vec in key_vectors)
        else:
            key = key_vectors[0].values[i]
        positions = index.eq_positions(key)
        if len(positions):
            counts[i] = len(positions)
            parts.append(positions)
    right_pos = (
        np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    )
    left_pos = np.repeat(np.arange(n, dtype=np.int64), counts)
    if plan.kind == "left":
        unmatched = np.flatnonzero(counts == 0)
        if len(unmatched):
            left_pos = np.concatenate([left_pos, unmatched])
            right_pos = np.concatenate(
                [right_pos, np.full(len(unmatched), -1, dtype=np.int64)]
            )
            order = np.argsort(left_pos, kind="stable")
            left_pos = left_pos[order]
            right_pos = right_pos[order]

    columns: dict[str, Vector] = {}
    for key, vec in left.columns.items():
        columns[key] = gather(vec, left_pos, missing_null=True)
    for name, key in plan.keys.items():
        source = table.ctid if name == CTID else table.columns[name]
        columns[key] = gather(source, right_pos, missing_null=True)
    batch = Batch(len(left_pos), columns)

    if plan.residual is not None:
        if plan.kind != "inner":
            raise SQLExecutionError(
                "index join residuals require an inner join"
            )
        predicate = plan.residual(batch, ctx)
        keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
        positions = np.flatnonzero(keep)
        batch = Batch(
            len(positions),
            {k: gather(v, positions) for k, v in batch.columns.items()},
        )
    return batch


def _exec_scan_snapshot(plan: ScanSnapshot, ctx: ExecContext) -> Batch:
    view = ctx.catalog.resolve(plan.view_name)
    if view.snapshot is None:  # type: ignore[union-attr]
        raise SQLExecutionError(
            f"materialized view {plan.view_name!r} has no snapshot"
        )
    names, data, length = view.snapshot  # type: ignore[union-attr]
    columns = {key: data[name] for name, key in plan.keys.items()}
    return Batch(length, columns)


def _exec_cte_ref(plan: CteRef, ctx: ExecContext) -> Batch:
    with ctx.lock:
        cached = ctx.cte_cache.get(id(plan.plan))
        if cached is None:
            cached = execute_plan(plan.plan, ctx)
            # the cache lives until statement end, so this reservation is
            # never released here — end_query reclaims it
            ctx.mem_require(batch_bytes(cached), "cte.materialize", plan)
            ctx.cte_cache[id(plan.plan)] = cached
    columns = {dst: cached.columns[src] for src, dst in plan.rename.items()}
    return Batch(cached.length, columns)


# ---------------------------------------------------------------------------
# projection (with unnest expansion)
# ---------------------------------------------------------------------------


def project_batch(plan: Project, child: Batch, ctx: ExecContext) -> Batch:
    columns: dict[str, Vector] = {}
    for out, expr in plan.items:
        columns[out.key] = expr(child, ctx)
    if not plan.unnest_keys:
        return Batch(child.length, columns)
    return _expand_unnest(child.length, columns, plan.unnest_keys)


#: C-looped length extraction over an object array of lists; -1 flags rows
#: whose value is not an array
_ARRAY_SIZES = np.frompyfunc(
    lambda v: len(v) if isinstance(v, list) else -1, 1, 1
)


def _expand_unnest(
    length: int, columns: dict[str, Vector], unnest_keys: list[str]
) -> Batch:
    """PostgreSQL select-list unnest: expand rows by array elements.

    Vectorised: one array-length extraction pass over the lead column,
    one ``np.repeat`` for the pass-through columns and one flatten pass
    per unnested column (no per-row Python loop).
    """
    lead = columns[unnest_keys[0]]
    counts = np.zeros(length, dtype=np.int64)
    valid = ~lead.nulls
    if valid.any():
        sizes = _ARRAY_SIZES(lead.values[valid]).astype(np.int64)
        if (sizes < 0).any():
            raise SQLExecutionError("unnest argument is not an array")
        counts[valid] = sizes
    total = int(counts.sum())
    repeats = np.repeat(np.arange(length), counts)
    expanding = counts > 0
    out: dict[str, Vector] = {}
    for key, vec in columns.items():
        if key in unnest_keys:
            try:
                flat = list(
                    itertools.chain.from_iterable(vec.values[expanding])
                )
            except TypeError:
                raise SQLExecutionError(
                    "unnest argument is not an array"
                ) from None
            out[key] = from_values(flat)
            if len(out[key]) != total:
                raise SQLExecutionError("unnest arrays have mismatched lengths")
        else:
            out[key] = gather(vec, repeats)
    return Batch(total, out)


# ---------------------------------------------------------------------------
# filter
# ---------------------------------------------------------------------------


def filter_batch(plan: Filter, child: Batch, ctx: ExecContext) -> Batch:
    if len(plan.conjuncts) > 1:
        # sequential conjunct evaluation: each part runs on the survivors
        # of the previous one.  Rows kept = rows where every conjunct is
        # definitely TRUE — identical to the combined AND predicate under
        # three-valued logic, but later (less selective) conjuncts touch
        # fewer rows
        batch = child
        for conjunct in plan.conjuncts:
            predicate = conjunct(batch, ctx)
            keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
            if keep.all():
                continue
            positions = np.flatnonzero(keep)
            batch = Batch(
                len(positions),
                {k: gather(v, positions) for k, v in batch.columns.items()},
            )
        if batch is child:
            return Batch(child.length, dict(child.columns))
        return batch
    predicate = plan.predicate(child, ctx)
    keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
    positions = np.flatnonzero(keep)
    columns = {k: gather(v, positions) for k, v in child.columns.items()}
    return Batch(len(positions), columns)


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


def _equi_join_positions(
    left_codes: np.ndarray,
    right_codes: np.ndarray,
    kind: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised hash/sort join over pre-factorised key codes.

    Returns matching (left, right) row positions; -1 marks outer padding.
    Inner matches preserve left-row order (and right order within a key).
    """
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    # discard invalid (null, non-null-safe) build rows
    first_valid = np.searchsorted(sorted_codes, 0, side="left")
    order = order[first_valid:]
    sorted_codes = sorted_codes[first_valid:]

    probe_codes = np.where(left_codes < 0, np.int64(-1), left_codes)
    starts = np.searchsorted(sorted_codes, probe_codes, side="left")
    ends = np.searchsorted(sorted_codes, probe_codes, side="right")
    counts = ends - starts
    counts[left_codes < 0] = 0

    total = int(counts.sum())
    left_pos = np.repeat(np.arange(len(left_codes), dtype=np.int64), counts)
    prefix = np.zeros(len(counts), dtype=np.int64)
    if len(counts) > 1:
        prefix[1:] = np.cumsum(counts[:-1])
    offsets = (
        np.arange(total, dtype=np.int64)
        - np.repeat(prefix, counts)
        + np.repeat(starts, counts)
    )
    right_pos = order[offsets]

    if kind in ("left", "full"):
        unmatched = np.flatnonzero(counts == 0)
        if len(unmatched):
            left_pos = np.concatenate([left_pos, unmatched])
            right_pos = np.concatenate(
                [right_pos, np.full(len(unmatched), -1, dtype=np.int64)]
            )
            # keep left-row order (matched and padded rows interleaved)
            order = np.argsort(left_pos, kind="stable")
            left_pos = left_pos[order]
            right_pos = right_pos[order]
    if kind in ("right", "full"):
        matched = np.zeros(len(right_codes), dtype=bool)
        matched[right_pos[right_pos >= 0]] = True
        unmatched = np.flatnonzero(~matched)
        left_pos = np.concatenate(
            [left_pos, np.full(len(unmatched), -1, dtype=np.int64)]
        )
        right_pos = np.concatenate([right_pos, unmatched])
    return left_pos, right_pos


def _spill_append(
    ctx: ExecContext, plan: Any, spill: Any, payload: Any, point: str
) -> None:
    """Frame one payload into *spill*, accounting the bytes to *point*."""
    ctx.memory.require(0, "spill.write")  # fault point: stall/fail arms
    nbytes = spill.append(payload)
    ctx.mem_spilled(nbytes, point, plan)
    ctx.check_cancelled()


def _spill_records(ctx: ExecContext, spill: Any):
    """Stream payloads back, touching the spill.read fault point each."""
    for payload in spill.records():
        ctx.memory.require(0, "spill.read")
        yield payload


def _grace_join_positions(
    plan: Join,
    left_codes: np.ndarray,
    right_codes: np.ndarray,
    ctx: ExecContext,
) -> tuple[np.ndarray, np.ndarray]:
    """Grace-partitioned equi join, byte-identical to the in-memory kernel.

    Key codes are factorised globally first (the partitioning scan), so
    every row of one join key lands in exactly one partition; both sides
    are spilled per partition, each partition is joined independently by
    :func:`_equi_join_positions`, and the per-partition positions are
    stitched back into the serial output order: matched and left-padded
    rows stable-sorted by left position, right/full padding appended in
    ascending right position — exactly the in-memory contract.
    """
    grant = ctx.memory
    n_parts = max(2, int(getattr(ctx.profile, "spill_partitions", 8)))
    chunk = ctx.mem_chunk()
    ctx.mem_require(chunk, "join.partition", plan)
    left_file = grant.spill_file("join-left")
    right_file = grant.spill_file("join-right")
    try:
        need_right = plan.kind in ("right", "full")
        for part in range(n_parts):
            # numpy's mod follows Python: invalid codes (-1) land in the
            # last partition and match nothing there, as in memory
            lsel = np.flatnonzero(left_codes % n_parts == part)
            rsel = np.flatnonzero(right_codes % n_parts == part)
            if not len(lsel) and not (need_right and len(rsel)):
                continue
            _spill_append(
                ctx, plan, left_file,
                (left_codes[lsel], lsel), "join.partition",
            )
            _spill_append(
                ctx, plan, right_file,
                (right_codes[rsel], rsel), "join.partition",
            )
        main_left: list[np.ndarray] = []
        main_right: list[np.ndarray] = []
        pad_right: list[np.ndarray] = []
        for (lcodes, lsel), (rcodes, rsel) in zip(
            _spill_records(ctx, left_file), _spill_records(ctx, right_file)
        ):
            lp, rp = _equi_join_positions(lcodes, rcodes, plan.kind)
            glp = np.full(len(lp), -1, dtype=np.int64)
            grp = np.full(len(rp), -1, dtype=np.int64)
            lvalid = lp >= 0
            rvalid = rp >= 0
            glp[lvalid] = lsel[lp[lvalid]]
            grp[rvalid] = rsel[rp[rvalid]]
            has_left = glp >= 0
            main_left.append(glp[has_left])
            main_right.append(grp[has_left])
            if not has_left.all():
                pad_right.append(grp[~has_left])
            ctx.check_cancelled()
        if main_left:
            lp_out = np.concatenate(main_left)
            rp_out = np.concatenate(main_right)
        else:
            lp_out = np.empty(0, dtype=np.int64)
            rp_out = np.empty(0, dtype=np.int64)
        order = np.argsort(lp_out, kind="stable")
        lp_out = lp_out[order]
        rp_out = rp_out[order]
        if pad_right:
            padded = np.sort(np.concatenate(pad_right))
            lp_out = np.concatenate(
                [lp_out, np.full(len(padded), -1, dtype=np.int64)]
            )
            rp_out = np.concatenate([rp_out, padded])
        return lp_out, rp_out
    finally:
        ctx.mem_release(chunk)
        grant.release_spill_file(left_file)
        grant.release_spill_file(right_file)


def join_batches(
    plan: Join, left: Batch, right: Batch, ctx: ExecContext
) -> Batch:
    """Join two materialised batches (the probe kernel of morsel mode).

    Output rows are ordered by left row (then right row within a key),
    so probing morsels of the left side in order and concatenating
    reproduces the serial output exactly.
    """
    if plan.left_keys:
        left_vectors = [k(left, ctx) for k in plan.left_keys]
        right_vectors = [k(right, ctx) for k in plan.right_keys]
        left_codes, right_codes = hashing.factorize_columns(
            list(zip(left_vectors, right_vectors)), plan.null_safe
        )
        # build side: the hashed right rows plus per-row table state
        build_est = batch_bytes(right) + HASH_ROW_BYTES * right.length
        if ctx.mem_reserve(build_est, "join.build", plan):
            try:
                lp, rp = _equi_join_positions(
                    left_codes, right_codes, plan.kind
                )
            finally:
                ctx.mem_release(build_est)
        else:
            lp, rp = _grace_join_positions(
                plan, left_codes, right_codes, ctx
            )
    else:
        if plan.kind not in ("cross", "inner"):
            raise SQLExecutionError(
                f"{plan.kind} join requires at least one equality condition"
            )
        lp = np.repeat(np.arange(left.length, dtype=np.int64), right.length)
        rp = np.tile(np.arange(right.length, dtype=np.int64), left.length)

    columns: dict[str, Vector] = {}
    for key, vec in left.columns.items():
        columns[key] = gather(vec, lp, missing_null=True)
    for key, vec in right.columns.items():
        columns[key] = gather(vec, rp, missing_null=True)
    batch = Batch(len(lp), columns)

    if plan.residual is not None:
        if plan.kind not in ("inner", "cross"):
            raise SQLExecutionError(
                "non-equality conditions on outer joins are not supported"
            )
        predicate = plan.residual(batch, ctx)
        keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
        positions = np.flatnonzero(keep)
        batch = Batch(
            len(positions),
            {k: gather(v, positions) for k, v in batch.columns.items()},
        )
    return batch


def _exec_join(plan: Join, ctx: ExecContext) -> Batch:
    left = execute_plan(plan.left, ctx)
    right = execute_plan(plan.right, ctx)
    return join_batches(plan, left, right, ctx)


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def aggregate_item_inputs(
    item: AggregateItem, child: Batch, ctx: ExecContext, codes: np.ndarray
) -> tuple[np.ndarray, Optional[Vector]]:
    """(group codes, argument vector) for one aggregate, FILTER applied."""
    arg = item.arg(child, ctx) if item.arg is not None else None
    item_codes = codes
    if item.where is not None:
        # FILTER (WHERE ...) drops rows from this aggregate's input only;
        # dropping (rather than null-masking) keeps count(*)/array_agg
        # semantics right, since both observe null inputs
        predicate = item.where(child, ctx)
        keep = predicate.values.astype(bool, copy=False) & ~predicate.nulls
        kept = np.flatnonzero(keep)
        item_codes = codes[kept]
        if arg is not None:
            arg = gather(arg, kept)
    return item_codes, arg


def aggregate_batch(plan: Aggregate, child: Batch, ctx: ExecContext) -> Batch:
    group_vectors = [expr(child, ctx) for _, expr in plan.groups]
    if group_vectors:
        # accumulator state scales with input rows (codes, argsorts,
        # per-group buffers); scalar aggregates are O(1) and never spill
        table_est = batch_bytes(child) + HASH_ROW_BYTES * child.length
        if not ctx.mem_reserve(table_est, "agg.hashtable", plan):
            return _spill_aggregate(plan, child, ctx, group_vectors)
        try:
            codes, positions = hashing.group_codes(group_vectors)
            n_groups = len(positions)
            return _aggregate_output(
                plan, child, ctx, group_vectors, codes, positions, n_groups
            )
        finally:
            ctx.mem_release(table_est)
    codes = np.zeros(child.length, dtype=np.int64)
    positions = np.zeros(0, dtype=np.int64)
    return _aggregate_output(
        plan, child, ctx, group_vectors, codes, positions, 1
    )


def _aggregate_output(
    plan: Aggregate,
    child: Batch,
    ctx: ExecContext,
    group_vectors: list[Vector],
    codes: np.ndarray,
    positions: np.ndarray,
    n_groups: int,
) -> Batch:
    columns: dict[str, Vector] = {}
    for (out, _), vec in zip(plan.groups, group_vectors):
        columns[out.key] = gather(vec, positions)
    for item in plan.aggregates:
        item_codes, arg = aggregate_item_inputs(item, child, ctx, codes)
        columns[item.out.key] = functions.compute_aggregate(
            item.func, arg, item_codes, n_groups, item.distinct
        )
    return Batch(n_groups, columns)


def _spill_aggregate(
    plan: Aggregate,
    child: Batch,
    ctx: ExecContext,
    group_vectors: list[Vector],
) -> Batch:
    """Partitioned aggregation, byte-identical to the in-memory twin.

    The global group codes double as the output ordering (dense ids in
    ascending combined-code order — exactly what the in-memory path
    emits) and as the partitioning function, so every group's rows land
    wholly in one partition and partition-local aggregation sees the
    same inputs, in the same row order, as the global pass.  Partition
    outputs are stitched back by their global group ids.
    """
    grant = ctx.memory
    n_parts = max(2, int(getattr(ctx.profile, "spill_partitions", 8)))
    chunk = ctx.mem_chunk()
    ctx.mem_require(chunk, "agg.partition", plan)
    part_file = grant.spill_file("agg")
    try:
        codes, positions = hashing.group_codes(group_vectors)
        n_groups = len(positions)
        for part in range(n_parts):
            sel = np.flatnonzero(codes % n_parts == part)
            if not len(sel):
                continue
            payload = (
                sel,
                {
                    key: (vec.values[sel], vec.nulls[sel])
                    for key, vec in child.columns.items()
                },
            )
            _spill_append(ctx, plan, part_file, payload, "agg.partition")

        # group-key output columns come straight from the global first
        # positions — no per-partition work needed
        columns: dict[str, Vector] = {}
        for (out, _), vec in zip(plan.groups, group_vectors):
            columns[out.key] = gather(vec, positions)

        group_ids: list[np.ndarray] = []
        item_parts: dict[str, list[Vector]] = {
            item.out.key: [] for item in plan.aggregates
        }
        for sel, part_columns in _spill_records(ctx, part_file):
            sub = Batch(
                len(sel),
                {
                    key: Vector(values, nulls)
                    for key, (values, nulls) in part_columns.items()
                },
            )
            # local dense codes keep their global ascending order, so
            # local group g is global group uniq[g]
            uniq, local = np.unique(codes[sel], return_inverse=True)
            local = local.astype(np.int64, copy=False)
            group_ids.append(uniq)
            for item in plan.aggregates:
                item_codes, arg = aggregate_item_inputs(item, sub, ctx, local)
                item_parts[item.out.key].append(
                    functions.compute_aggregate(
                        item.func, arg, item_codes, len(uniq), item.distinct
                    )
                )
            ctx.check_cancelled()
        if group_ids:
            all_ids = np.concatenate(group_ids)
            order = np.argsort(all_ids, kind="stable")
            for item in plan.aggregates:
                merged = concat_vectors(item_parts[item.out.key])
                columns[item.out.key] = gather(merged, order)
        else:  # no input rows: no partitions were written
            for item in plan.aggregates:
                item_codes, arg = aggregate_item_inputs(item, child, ctx, codes)
                columns[item.out.key] = functions.compute_aggregate(
                    item.func, arg, item_codes, n_groups, item.distinct
                )
        return Batch(n_groups, columns)
    finally:
        ctx.mem_release(chunk)
        grant.release_spill_file(part_file)


# ---------------------------------------------------------------------------
# pipeline breakers (always serial)
# ---------------------------------------------------------------------------


def _exec_distinct(plan: Distinct, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    if child.length == 0:
        return child
    vectors = [child.columns[out.key] for out in plan.schema]
    table_est = HASH_ROW_BYTES * child.length
    if ctx.mem_reserve(table_est, "distinct.hashtable", plan):
        try:
            _, positions = hashing.group_codes(vectors)
        finally:
            ctx.mem_release(table_est)
    else:
        positions = _spill_distinct_positions(plan, vectors, ctx)
    columns = {k: gather(v, positions) for k, v in child.columns.items()}
    return Batch(len(positions), columns)


def _spill_distinct_positions(
    plan: Distinct, vectors: list[Vector], ctx: ExecContext
) -> np.ndarray:
    """Partitioned DISTINCT: the first position of every group, ordered by
    ascending combined code — exactly :func:`hashing.group_codes`' output.

    Groups live wholly in one partition and partitions preserve row
    order, so a partition-local first occurrence is the global one.
    """
    grant = ctx.memory
    n_parts = max(2, int(getattr(ctx.profile, "spill_partitions", 8)))
    chunk = ctx.mem_chunk()
    ctx.mem_require(chunk, "distinct.partition", plan)
    part_file = grant.spill_file("distinct")
    try:
        codes, _ = hashing.group_codes(vectors)
        for part in range(n_parts):
            sel = np.flatnonzero(codes % n_parts == part)
            if not len(sel):
                continue
            _spill_append(
                ctx, plan, part_file, (codes[sel], sel), "distinct.partition"
            )
        ids: list[np.ndarray] = []
        firsts: list[np.ndarray] = []
        for part_codes, sel in _spill_records(ctx, part_file):
            uniq, first = np.unique(part_codes, return_index=True)
            ids.append(uniq)
            firsts.append(sel[first])
            ctx.check_cancelled()
        all_ids = np.concatenate(ids)
        all_firsts = np.concatenate(firsts)
        return all_firsts[np.argsort(all_ids, kind="stable")]
    finally:
        ctx.mem_release(chunk)
        grant.release_spill_file(part_file)


def _exec_sort(plan: Sort, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    sort_est = SORT_KEY_BYTES * child.length * max(1, len(plan.keys))
    if ctx.mem_reserve(sort_est, "sort.buffer", plan):
        try:
            positions = _in_memory_sort_positions(plan, child, ctx)
        finally:
            ctx.mem_release(sort_est)
    else:
        positions = _external_sort_positions(plan, child, ctx)
    columns = {k: gather(v, positions) for k, v in child.columns.items()}
    return Batch(child.length, columns)


def _in_memory_sort_positions(
    plan: Sort, child: Batch, ctx: ExecContext
) -> np.ndarray:
    order = list(range(child.length))
    # multi-key sort with per-key direction: stable sorts from last key first
    for expr, asc, nulls_first in reversed(plan.keys):
        vec = expr(child, ctx)
        # PostgreSQL default: NULLS LAST for ASC, NULLS FIRST for DESC
        nf = (not asc) if nulls_first is None else nulls_first
        # marker for null rows relative to the 0 of non-null rows, chosen so
        # that after the per-key ``reverse`` nulls land on the requested side
        marker = (-1 if nf else 1) if asc else (1 if nf else -1)

        def single_key(i: int, v=vec, m=marker):
            if v.nulls[i]:
                return (m, None)
            return (0, v.values[i])

        try:
            order.sort(key=single_key, reverse=not asc)
        except TypeError:
            order.sort(key=lambda i, v=vec, m=marker: (
                m if v.nulls[i] else 0,
                "" if v.nulls[i] else str(v.values[i]),
            ), reverse=not asc)
    return np.asarray(order, dtype=np.int64)


class _Desc:
    """Order-inverting comparison wrapper for descending sort keys.

    Sequences of stable single-key sorts with ``reverse=True`` are
    equivalent to one stable sort on the composite key with each
    descending component's order inverted — which is what lets the
    external sort produce byte-identical output in a single pass.
    """

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_Desc") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Desc) and other.key == self.key


def _key_needs_str(vec: Vector, force: bool) -> bool:
    """Should this key use the in-memory path's ``str()`` fallback?

    The in-memory sort falls back per key when a comparison raises
    ``TypeError``.  The external sort must decide *before* decorating
    runs: mixed-type object columns always raise there, single exotic
    types only raise if their values are incomparable (*force* is set
    after an attempt actually raised).
    """
    if vec.values.dtype != object:
        return False
    types = {
        type(value)
        for value, null in zip(vec.values, vec.nulls)
        if not null
    }
    if not types or types == {str}:
        return False
    if all(t in (int, float, bool) for t in types):
        return False
    if len(types) > 1:
        return True
    return force


#: rows framed together in one external-sort spill record, so the merge
#: holds one block per run instead of whole runs
_SORT_BLOCK_ROWS = 256


def _external_sort_positions(
    plan: Sort, child: Batch, ctx: ExecContext
) -> np.ndarray:
    try:
        return _external_sort_attempt(plan, child, ctx, force_str=False)
    except TypeError:
        # some key's values are incomparable: redo with the in-memory
        # path's str() fallback applied to the ambiguous keys
        return _external_sort_attempt(plan, child, ctx, force_str=True)


def _external_sort_attempt(
    plan: Sort, child: Batch, ctx: ExecContext, force_str: bool
) -> np.ndarray:
    """External merge sort: run generation + k-way merge.

    Runs are consecutive row ranges sorted in memory on the composite
    key and spilled as (key, row) records; the merge is keyed on
    ``(composite key, run index, in-run position)`` so ties resolve to
    original row order — the stability contract of the in-memory sort.
    """
    import heapq

    n = child.length
    if n == 0:
        return np.empty(0, dtype=np.int64)
    specs = []
    for expr, asc, nulls_first in plan.keys:
        vec = expr(child, ctx)
        nf = (not asc) if nulls_first is None else nulls_first
        marker = (-1 if nf else 1) if asc else (1 if nf else -1)
        specs.append((vec, asc, marker, _key_needs_str(vec, force_str)))

    def composite(i: int) -> tuple:
        parts = []
        for vec, asc, marker, use_str in specs:
            if vec.nulls[i]:
                base: tuple = (marker, "") if use_str else (marker, None)
            else:
                value = vec.values[i]
                base = (0, str(value)) if use_str else (0, value)
            parts.append(base if asc else _Desc(base))
        return tuple(parts)

    grant = ctx.memory
    chunk = ctx.mem_chunk()
    ctx.mem_require(chunk, "sort.run", plan)
    run_rows = max(1, chunk // (SORT_KEY_BYTES * max(1, len(specs))))
    runs = []
    try:
        for lo in range(0, n, run_rows):
            hi = min(n, lo + run_rows)
            decorated = [(composite(i), i) for i in range(lo, hi)]
            decorated.sort(key=lambda pair: pair[0])  # TypeError → retry
            run = grant.spill_file(f"sort-run-{len(runs)}")
            runs.append(run)
            for block_lo in range(0, len(decorated), _SORT_BLOCK_ROWS):
                _spill_append(
                    ctx, plan, run,
                    decorated[block_lo : block_lo + _SORT_BLOCK_ROWS],
                    "sort.run",
                )

        def run_stream(run):
            for block in _spill_records(ctx, run):
                yield from block

        heap: list = []
        streams = []
        for run_idx, run in enumerate(runs):
            stream = run_stream(run)
            streams.append(stream)
            first = next(stream, None)
            if first is not None:
                heapq.heappush(heap, (first[0], run_idx, first[1]))
        order = np.empty(n, dtype=np.int64)
        out = 0
        while heap:
            key, run_idx, row = heapq.heappop(heap)
            order[out] = row
            out += 1
            nxt = next(streams[run_idx], None)
            if nxt is not None:
                heapq.heappush(heap, (nxt[0], run_idx, nxt[1]))
            if out % 4096 == 0:
                ctx.check_cancelled()
        return order
    finally:
        ctx.mem_release(chunk)
        for run in runs:
            grant.release_spill_file(run)


def _exec_limit(plan: Limit, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    start = plan.offset
    stop = child.length if plan.count is None else min(start + plan.count, child.length)
    positions = np.arange(start, max(stop, start), dtype=np.int64)
    columns = {k: gather(v, positions) for k, v in child.columns.items()}
    return Batch(len(positions), columns)


def _exec_window(plan: Window, ctx: ExecContext) -> Batch:
    child = execute_plan(plan.child, ctx)
    columns = dict(child.columns)
    n = child.length
    # partition codes + per-partition order state.  Ranking windows
    # stream one partition at a time, so under pressure the hold shrinks
    # to a working chunk instead of failing the query
    window_est = (HASH_ROW_BYTES + SORT_KEY_BYTES) * n * max(
        1, len(plan.windows)
    )
    if ctx.mem_reserve(window_est, "window.partition", plan):
        held = window_est
    else:
        held = ctx.mem_chunk()
        ctx.mem_require(held, "window.partition", plan)
    try:
        return _window_output(plan, child, ctx, columns, n)
    finally:
        ctx.mem_release(held)


def _window_output(
    plan: Window, child: Batch, ctx: ExecContext,
    columns: dict[str, Vector], n: int,
) -> Batch:
    for item in plan.windows:
        if item.partition:
            part_codes, _ = hashing.group_codes(
                [expr(child, ctx) for expr in item.partition]
            )
        else:
            part_codes = np.zeros(n, dtype=np.int64)
        order_vectors = [(expr(child, ctx), asc) for expr, asc in item.order]
        positions = list(range(n))
        # stable multi-key sort: last key first, partition last
        for vec, asc in reversed(order_vectors):
            positions.sort(
                key=lambda i, v=vec: (
                    (1 if v.nulls[i] else 0, v.values[i])
                    if not v.nulls[i]
                    else (1, None)
                ),
                reverse=not asc,
            )
        positions.sort(key=lambda i: part_codes[i])

        def order_key(i: int) -> tuple:
            return tuple(
                (bool(vec.nulls[i]), None if vec.nulls[i] else vec.values[i])
                for vec, _ in order_vectors
            )

        out = np.zeros(n, dtype=np.float64)
        current_partition = None
        row_number = rank = dense = 0
        previous_key: Any = object()
        for i in positions:
            if part_codes[i] != current_partition:
                current_partition = part_codes[i]
                row_number = rank = dense = 0
                previous_key = object()
            row_number += 1
            key = order_key(i)
            if key != previous_key:
                rank = row_number
                dense += 1
                previous_key = key
            if item.func == "row_number":
                out[i] = row_number
            elif item.func == "rank":
                out[i] = rank
            else:  # dense_rank
                out[i] = dense
        columns[item.out.key] = Vector(out, np.zeros(n, dtype=bool))
    return Batch(n, columns)


def _exec_union_all(plan: UnionAll, ctx: ExecContext) -> Batch:
    batches = [execute_plan(part, ctx) for part in plan.parts]
    columns: dict[str, Vector] = {}
    for position, out in enumerate(plan.schema):
        parts = []
        for part, batch in zip(plan.parts, batches):
            part_key = part.schema[position].key
            parts.append(batch.columns[part_key])
        columns[out.key] = concat_vectors(parts)
    total = sum(batch.length for batch in batches)
    return Batch(total, columns)
