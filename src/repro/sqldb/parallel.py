"""Morsel-driven parallel pipeline execution.

The executor hands every plan node to :func:`try_parallel` when a thread
pool is attached to the context.  A node roots a *parallelizable pipeline*
when it is a chain of ``Filter`` / ``Project`` (including unnest) /
``Join``-probe operators over a morsel source (base-table scan, snapshot
scan or materialised CTE).  The source is split into fixed-size morsels
(row ranges) and the whole pipeline runs per-morsel on the pool — numpy
kernels release the GIL, so morsels genuinely overlap.  ``Sort``,
``Window``, ``Distinct``, right/full joins and non-decomposable aggregates
are pipeline breakers and stay on the serial path.

Determinism is a hard requirement: for every query the parallel result is
byte-identical to the serial result, for any worker count.  Three
mechanisms guarantee it:

* **Fixed morsel boundaries.**  Morsels are ``[i*morsel_size,
  (i+1)*morsel_size)`` row ranges — a function of the source length only,
  never of the worker count or completion order.
* **Order-preserving concat.**  Filter/project/join-probe kernels are
  row-partitionable: the kernel applied to a row range yields exactly the
  corresponding slice of the serial output, so concatenating morsel
  outputs in morsel order reproduces the serial batch (joins order their
  output by probe row; the build side is executed exactly once and
  shared).
* **Exact partial-aggregate merges.**  Partial aggregation states merge
  only where floating-point arithmetic is provably order-independent:
  counts and min/max merge exactly; ``sum``/``avg`` merge only under an
  *exactness certificate* (every aggregated value is integral and finite
  and every group's absolute sum stays below 2^53, so float64 addition is
  exact in any association); ``array_agg`` concatenates per-group lists
  in morsel order.  Whenever a certificate fails — or an aggregate is not
  decomposable (``count(DISTINCT)``, ``stddev``/``var``) — the executor
  falls back to concatenating the (already parallel-computed) pipeline
  outputs and aggregating the combined batch serially, which is trivially
  byte-identical.

Group numbering mirrors the serial executor: serial group ids come from
``np.unique`` over mixed-radix per-column codes, where numeric columns
are coded in value order (reconstructible from group representatives) and
object columns in first-appearance order over the *full* input.  The
merge therefore carries, per object group column, the appearance-ordered
distinct values of each morsel; concatenating those lists in morsel order
reproduces the global appearance order, after which re-coding the group
representatives and densifying with the same ``np.unique`` machinery
yields the serial group numbering exactly.

The statistics-driven rewrite layer (:mod:`repro.sqldb.optimizer`) is
compatible by construction: all rewrites — pushdown, conjunct reordering,
join build-side swaps — happen at *plan* time, so serial and parallel
execution always see the same (rewritten) plan, and the byte-identical
guarantee is between serial and parallel runs of that plan.  Filters with
split conjuncts evaluate through :func:`executor.filter_batch` on both
paths, so the sequential short-circuit order is identical per morsel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.sqldb import executor, functions, hashing
from repro.sqldb.plan import (
    Aggregate,
    Batch,
    CteRef,
    Filter,
    Join,
    PlanNode,
    Project,
    ScanSnapshot,
    ScanTable,
)
from repro.sqldb.vector import Vector, concat_vectors, gather

__all__ = ["try_parallel", "MERGEABLE_AGGREGATES"]

#: aggregate functions with an exact decomposition into partial states
MERGEABLE_AGGREGATES = frozenset(
    {"count", "sum", "avg", "min", "max", "array_agg"}
)

#: float64 adds integers exactly while every intermediate |sum| < 2^53
_EXACT_SUM_BOUND = float(2**53)

#: join kinds whose output order is a function of the probe (left) row
#: order alone, so probing morsels in order reproduces the serial output
_PROBE_KINDS = ("inner", "left", "cross")


@dataclass
class _Pipeline:
    """A morselizable operator chain: ``spine`` bottom-up over ``source``."""

    source: PlanNode
    spine: list[PlanNode]


def _find_pipeline(plan: PlanNode) -> Optional[_Pipeline]:
    """The maximal Filter/Project/Join-probe chain under *plan*, if any."""
    spine: list[PlanNode] = []
    node = plan
    while True:
        if isinstance(node, (ScanTable, ScanSnapshot, CteRef)):
            if not spine:
                return None  # a bare scan: slicing it buys nothing
            spine.reverse()
            return _Pipeline(node, spine)
        if isinstance(node, (Filter, Project)):
            spine.append(node)
            node = node.child
        elif isinstance(node, Join) and node.kind in _PROBE_KINDS:
            spine.append(node)
            node = node.left
        else:
            return None


def try_parallel(plan: PlanNode, ctx: "executor.ExecContext") -> Optional[Batch]:
    """Execute *plan* morsel-parallel, or return None for the serial path."""
    if ctx.pool is None:
        return None
    if isinstance(plan, Aggregate):
        pipe = _find_pipeline(plan.child)
        if pipe is None:
            return None
        return _run_aggregate(plan, pipe, ctx)
    if isinstance(plan, (Filter, Project, Join)):
        pipe = _find_pipeline(plan)
        if pipe is None:
            return None
        return _run_pipeline(plan, pipe, ctx)
    return None


# ---------------------------------------------------------------------------
# morsel dispatch
# ---------------------------------------------------------------------------


def _execute_source(source: PlanNode, ctx: "executor.ExecContext") -> Batch:
    sctx = ctx.serial()
    if isinstance(source, ScanTable):
        return executor._exec_scan_table(source, sctx)
    if isinstance(source, ScanSnapshot):
        return executor._exec_scan_snapshot(source, sctx)
    return executor._exec_cte_ref(source, sctx)


def _prepare(
    pipe: _Pipeline, ctx: "executor.ExecContext"
) -> Optional[tuple[Batch, list[tuple[int, int]], dict[int, Batch], int]]:
    """Materialise source and build sides; None when too small to morselize."""
    source_batch = _execute_source(pipe.source, ctx)
    n = source_batch.length
    if n <= ctx.morsel_size:
        return None
    bounds = [
        (lo, min(lo + ctx.morsel_size, n))
        for lo in range(0, n, ctx.morsel_size)
    ]
    # build sides execute exactly once, before any probe morsel is
    # submitted; the pooled context lets a build pipeline itself morselize
    builds: dict[int, Batch] = {}
    for node in pipe.spine:
        if isinstance(node, Join):
            builds[id(node)] = executor.execute_plan(node.right, ctx)
    # every build side stays pinned while probe morsels run; when the
    # memory governor denies the pin, fall back to the serial path,
    # whose Grace join degrades by spilling instead
    build_bytes = sum(
        executor.batch_bytes(b) + executor.HASH_ROW_BYTES * b.length
        for b in builds.values()
    )
    if build_bytes and not ctx.mem_reserve(build_bytes, "join.build"):
        return None
    return source_batch, bounds, builds, build_bytes


def _run_segment(
    pipe: _Pipeline,
    source_batch: Batch,
    lo: int,
    hi: int,
    builds: dict[int, Batch],
    ctx: "executor.ExecContext",
    copy_last: bool,
) -> Batch:
    """One morsel through the whole pipeline (runs on a worker thread)."""
    ctx.check_cancelled()
    wctx = ctx.serial()
    copy = ctx.profile.copy_operator_output
    started = time.perf_counter()
    batch = executor.slice_batch(source_batch, lo, hi)
    if copy:
        # the serial scan's output copy, paid per-morsel
        batch = executor.copy_batch(batch)
    if ctx.stats is not None:
        now = time.perf_counter()
        ctx.stats.record(pipe.source, batch.length, now - started)
        started = now
    last = len(pipe.spine) - 1
    for i, node in enumerate(pipe.spine):
        if isinstance(node, Filter):
            batch = executor.filter_batch(node, batch, wctx)
        elif isinstance(node, Project):
            batch = executor.project_batch(node, batch, wctx)
        else:
            batch = executor.join_batches(node, batch, builds[id(node)], wctx)
        if copy and (copy_last or i != last):
            batch = executor.copy_batch(batch)
        if ctx.stats is not None:
            now = time.perf_counter()
            ctx.stats.record(node, batch.length, now - started)
            started = now
    return batch


def _map_morsels(
    pipe: _Pipeline,
    ctx: "executor.ExecContext",
    copy_last: bool,
) -> Optional[list[Batch]]:
    prep = _prepare(pipe, ctx)
    if prep is None:
        return None
    source_batch, bounds, builds, build_bytes = prep
    try:
        futures = [
            ctx.pool.submit(
                _run_segment, pipe, source_batch, lo, hi, builds, ctx, copy_last
            )
            for lo, hi in bounds
        ]
        parts = [future.result() for future in futures]
    finally:
        ctx.mem_release(build_bytes)
    if ctx.stats is not None:
        for node in [pipe.source, *pipe.spine]:
            ctx.stats.mark_parallel(node, len(bounds))
    return parts


def _concat_parts(parts: list[Batch]) -> Optional[Batch]:
    """Concatenate morsel outputs in order; None on a dtype divergence.

    Empty parts are dropped (an empty slice through e.g. unnest can carry
    a placeholder dtype); the remaining parts must agree exactly on every
    column's dtype so the concatenated batch matches the serial batch
    byte-for-byte.  A divergence means some expression is not
    dtype-stable under slicing — the caller re-executes serially.
    """
    chosen = [p for p in parts if p.length] or [parts[0]]
    columns: dict[str, Vector] = {}
    for key in chosen[0].columns:
        vectors = [p.columns[key] for p in chosen]
        if len({v.values.dtype for v in vectors}) > 1:
            return None
        columns[key] = concat_vectors(vectors)
    return Batch(sum(p.length for p in chosen), columns)


def _run_pipeline(
    plan: PlanNode, pipe: _Pipeline, ctx: "executor.ExecContext"
) -> Optional[Batch]:
    parts = _map_morsels(pipe, ctx, copy_last=False)
    if parts is None:
        return None
    batch = _concat_parts(parts)
    if batch is None:
        return executor._dispatch(plan, ctx.serial())
    return batch


# ---------------------------------------------------------------------------
# partial aggregation
# ---------------------------------------------------------------------------


def _appearance_values(values: np.ndarray, nulls: np.ndarray) -> list:
    """Distinct non-null values in first-appearance order (object columns)."""
    seen: dict = {}
    for value in values[~nulls]:
        if value not in seen:
            seen[value] = len(seen)
    return list(seen)


@dataclass
class _ItemState:
    """Per-morsel partial state for one aggregate item."""

    counts: np.ndarray  # kept (post-FILTER, non-null) rows per group
    sums: Optional[np.ndarray] = None
    abs_sums: Optional[np.ndarray] = None
    partial: Optional[Vector] = None  # min/max per-group results
    arg_dtype: Any = None
    #: array_agg: group-sorted argument rows plus group boundaries, kept
    #: raw so element conversion can follow the *global* null-presence
    #: rule at merge time (tolist() vs per-element None substitution —
    #: the serial kernel picks by ``arg.nulls.any()`` over the full input)
    agg_values: Optional[np.ndarray] = None
    agg_nulls: Optional[np.ndarray] = None
    agg_boundaries: Optional[np.ndarray] = None


@dataclass
class _MorselState:
    """Per-morsel partial aggregation state."""

    n_groups: int
    rep_vectors: list[Vector]  # group-key values at group representatives
    appearance: list[Optional[list]]  # per object group column
    items: list[Optional[_ItemState]]  # None = certificate failed


def _partial_state(
    plan: Aggregate, child: Batch, ctx: "executor.ExecContext"
) -> _MorselState:
    group_vectors = [expr(child, ctx) for _, expr in plan.groups]
    if group_vectors:
        codes, positions = hashing.group_codes(group_vectors)
        n_groups = len(positions)
    else:
        codes = np.zeros(child.length, dtype=np.int64)
        n_groups = 1
        positions = np.zeros(0, dtype=np.int64)

    rep_vectors = [gather(vec, positions) for vec in group_vectors]
    appearance: list[Optional[list]] = [
        _appearance_values(vec.values, vec.nulls)
        if vec.values.dtype == object
        else None
        for vec in group_vectors
    ]

    items: list[Optional[_ItemState]] = []
    for item in plan.aggregates:
        item_codes, arg = executor.aggregate_item_inputs(item, child, ctx, codes)
        if item.func == "count" and arg is None:
            counts = np.bincount(item_codes, minlength=n_groups).astype(np.float64)
            items.append(_ItemState(counts))
            continue
        if arg is None:  # serial path raises; reproduce it there
            items.append(None)
            continue
        keep = ~arg.nulls
        kept_codes = item_codes[keep]
        counts = np.bincount(kept_codes, minlength=n_groups).astype(np.float64)
        if item.func == "count":
            items.append(_ItemState(counts))
            continue
        if item.func == "array_agg":
            order = np.argsort(item_codes, kind="stable")
            boundaries = np.searchsorted(
                item_codes[order], np.arange(n_groups + 1), side="left"
            )
            items.append(
                _ItemState(
                    counts,
                    arg_dtype=arg.values.dtype,
                    agg_values=arg.values[order],
                    agg_nulls=arg.nulls[order],
                    agg_boundaries=boundaries,
                )
            )
            continue
        if arg.values.dtype == object:
            # object min/max compares values in input order; merged
            # comparisons could differ (or error differently) — fall back
            items.append(None)
            continue
        kept_values = arg.values.astype(np.float64, copy=False)[keep]
        if not np.isfinite(kept_values).all():
            items.append(None)  # inf/nan break min/max and sum merges
            continue
        if item.func in ("min", "max"):
            partial = functions.compute_aggregate(
                item.func, arg, item_codes, n_groups, False
            )
            items.append(_ItemState(counts, partial=partial))
            continue
        # sum / avg: exactness certificate part 1 — integral values only
        if not (kept_values == np.floor(kept_values)).all():
            items.append(None)
            continue
        sums = np.bincount(kept_codes, weights=kept_values, minlength=n_groups)
        abs_sums = np.bincount(
            kept_codes, weights=np.abs(kept_values), minlength=n_groups
        )
        items.append(_ItemState(counts, sums=sums, abs_sums=abs_sums))
    return _MorselState(n_groups, rep_vectors, appearance, items)


def _global_group_ids(
    plan: Aggregate, states: list[_MorselState]
) -> Optional[tuple[int, list[np.ndarray]]]:
    """Serial-identical global group ids for every (morsel, local group).

    Returns (n_groups, per-morsel arrays mapping local → global id), or
    None when the group keys cannot be re-coded reliably (dtype drift
    between morsels).
    """
    n_cols = len(plan.groups)
    if n_cols == 0:
        return 1, [np.zeros(1, dtype=np.int64) for _ in states]
    offsets = np.cumsum([0] + [s.n_groups for s in states])
    parts: list[np.ndarray] = []
    for c in range(n_cols):
        vectors = [s.rep_vectors[c] for s in states]
        if len({v.values.dtype for v in vectors}) > 1:
            return None
        values = np.concatenate([v.values for v in vectors])
        nulls = np.concatenate([v.nulls for v in vectors])
        if values.dtype == object:
            # global first-appearance order = morsel-ordered merge of the
            # per-morsel appearance lists (first global appearance of a
            # value is in the first morsel that contains it)
            order: dict = {}
            for state in states:
                for value in state.appearance[c]:  # type: ignore[union-attr]
                    if value not in order:
                        order[value] = len(order)
            codes = np.empty(len(values), dtype=np.int64)
            null_code = len(order)
            for i in range(len(values)):
                codes[i] = null_code if nulls[i] else order[values[i]]
        else:
            # value-order codes: the distinct values among representatives
            # equal the distinct values of the full input, so ranks match
            codes = hashing._factorize_values(values, nulls)
            codes[codes == -2] = codes.max(initial=-1) + 1
        parts.append(codes)
    combined = hashing._combine(parts)  # densified ascending = serial order
    n_groups = int(combined.max(initial=-1)) + 1
    per_morsel = [
        combined[offsets[m] : offsets[m + 1]] for m in range(len(states))
    ]
    return n_groups, per_morsel


def _merge_partials(
    plan: Aggregate,
    states: list[_MorselState],
    ctx: "executor.ExecContext",
) -> Optional[Batch]:
    if any(item is None for state in states for item in state.items):
        return None
    mapping = _global_group_ids(plan, states)
    if mapping is None:
        return None
    n_groups, group_ids = mapping

    columns: dict[str, Vector] = {}
    # group-key columns: each group's value comes from its representative
    # in the first morsel containing it (= the serial representative row)
    for c, (out, _) in enumerate(plan.groups):
        dtype = states[0].rep_vectors[c].values.dtype
        values = np.empty(n_groups, dtype=dtype)
        nulls = np.zeros(n_groups, dtype=bool)
        claimed = np.zeros(n_groups, dtype=bool)
        for state, ids in zip(states, group_ids):
            fresh = ~claimed[ids]
            targets = ids[fresh]
            values[targets] = state.rep_vectors[c].values[fresh]
            nulls[targets] = state.rep_vectors[c].nulls[fresh]
            claimed[targets] = True
        columns[out.key] = Vector(values, nulls)

    for index, item in enumerate(plan.aggregates):
        parts = [(state.items[index], ids) for state, ids in zip(states, group_ids)]
        counts = np.zeros(n_groups, dtype=np.float64)
        for part, ids in parts:
            np.add.at(counts, ids, part.counts)  # type: ignore[union-attr]
        empty = counts == 0
        if item.func == "count":
            columns[item.out.key] = Vector(counts, np.zeros(n_groups, dtype=bool))
            continue
        if item.func in ("sum", "avg"):
            abs_total = np.zeros(n_groups, dtype=np.float64)
            sums = np.zeros(n_groups, dtype=np.float64)
            for part, ids in parts:
                np.add.at(abs_total, ids, part.abs_sums)
                np.add.at(sums, ids, part.sums)
            if (abs_total >= _EXACT_SUM_BOUND).any():
                return None  # certificate part 2 failed: merge inexact
            if item.func == "sum":
                columns[item.out.key] = Vector(np.where(empty, np.nan, sums), empty)
            else:
                with np.errstate(invalid="ignore", divide="ignore"):
                    means = sums / counts
                columns[item.out.key] = Vector(np.where(empty, np.nan, means), empty)
            continue
        if item.func in ("min", "max"):
            fill = np.inf if item.func == "min" else -np.inf
            out_values = np.full(n_groups, fill)
            reducer = np.minimum if item.func == "min" else np.maximum
            for part, ids in parts:
                mask = ~part.partial.nulls
                reducer.at(out_values, ids[mask], part.partial.values[mask])
            columns[item.out.key] = Vector(
                np.where(empty, np.nan, out_values), empty
            )
            continue
        # array_agg: per-group lists concatenate in morsel order, with the
        # serial kernel's element conversion (keyed on global null presence)
        if len({part.arg_dtype for part, _ in parts}) > 1:
            return None
        has_null = any(part.agg_nulls.any() for part, _ in parts)
        buckets = np.empty(n_groups, dtype=object)
        for g in range(n_groups):
            buckets[g] = []
        for part, ids in parts:
            bnd = part.agg_boundaries
            for local, g in enumerate(ids):
                lo, hi = int(bnd[local]), int(bnd[local + 1])
                segment = part.agg_values[lo:hi]
                if has_null:
                    nulls_seg = part.agg_nulls[lo:hi]
                    buckets[g].extend(
                        None if nulls_seg[k] else segment[k]
                        for k in range(hi - lo)
                    )
                else:
                    buckets[g].extend(segment.tolist())
        columns[item.out.key] = Vector(buckets, np.zeros(n_groups, dtype=bool))
    return Batch(n_groups, columns)


def _run_aggregate(
    plan: Aggregate, pipe: _Pipeline, ctx: "executor.ExecContext"
) -> Optional[Batch]:
    prep = _prepare(pipe, ctx)
    if prep is None:
        return None
    source_batch, bounds, builds, build_bytes = prep
    decomposable = all(
        item.func in MERGEABLE_AGGREGATES and not item.distinct
        for item in plan.aggregates
    )

    def segment(lo: int, hi: int) -> tuple[Batch, Optional[_MorselState]]:
        batch = _run_segment(pipe, source_batch, lo, hi, builds, ctx, True)
        state = None
        if decomposable:
            state = _partial_state(plan, batch, ctx.serial())
        return batch, state

    try:
        futures = [ctx.pool.submit(segment, lo, hi) for lo, hi in bounds]
        results = [future.result() for future in futures]
    finally:
        ctx.mem_release(build_bytes)
    if ctx.stats is not None:
        for node in [pipe.source, *pipe.spine]:
            ctx.stats.mark_parallel(node, len(bounds))

    started = time.perf_counter()
    merged = None
    if decomposable:
        merged = _merge_partials(plan, [state for _, state in results], ctx)
    if merged is None:
        # concat fallback: the combined child batch equals the serial child
        # batch, so aggregating it serially is byte-identical by definition
        child = _concat_parts([batch for batch, _ in results])
        if child is None:
            return executor._dispatch(plan, ctx.serial())
        merged = executor.aggregate_batch(plan, child, ctx.serial())
    elif ctx.stats is not None:
        ctx.stats.mark_parallel(plan, len(bounds))
    if ctx.stats is not None:
        ctx.stats.record(plan, merged.length, time.perf_counter() - started)
    return merged
