"""Catalog: base tables, views and materialised views.

Base tables store column vectors plus the synthetic ``ctid`` system column
(an int64 row identifier standing in for PostgreSQL's physical tuple id —
the paper only relies on it as a consistent logical identifier, captured
once in the first CTE).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import CatalogError, SQLExecutionError, UniqueViolation
from repro.sqldb import ast_nodes as ast
from repro.sqldb.vector import Vector, from_values

__all__ = [
    "Table",
    "TrainedModel",
    "View",
    "Catalog",
    "CatalogSnapshot",
    "ColumnStats",
    "Index",
    "TableStats",
    "CTID",
    "build_index",
    "coerce_to_type",
    "normalise_type",
]

#: name of the system column exposing the tuple identifier
CTID = "ctid"

_INT_TYPES = {"int", "integer", "bigint", "smallint"}
_SERIAL_TYPES = {"serial", "bigserial"}
_FLOAT_TYPES = {"float", "real", "numeric", "decimal", "double", "double precision"}
_TEXT_TYPES = {"text", "varchar", "char", "date", "timestamp"}
_BOOL_TYPES = {"boolean", "bool"}


def normalise_type(type_name: str) -> str:
    """Map a declared SQL type to the engine's storage class."""
    base = type_name.strip().lower()
    if base.endswith("[]"):
        return "array"
    if base in _INT_TYPES:
        return "int"
    if base in _SERIAL_TYPES:
        return "serial"
    if base in _FLOAT_TYPES:
        return "float"
    if base in _TEXT_TYPES:
        return "text"
    if base in _BOOL_TYPES:
        return "bool"
    raise CatalogError(f"unsupported column type {type_name!r}")


def coerce_to_type(raw: Any, storage: str) -> Any:
    """Coerce one Python value (from COPY/INSERT) to a storage class."""
    if raw is None:
        return None
    if storage in ("int", "serial"):
        try:
            return int(float(raw))
        except (TypeError, ValueError):
            raise SQLExecutionError(
                f"cannot interpret {raw!r} as integer", sqlstate="22P02"
            ) from None
    if storage == "float":
        try:
            return float(raw)
        except (TypeError, ValueError):
            raise SQLExecutionError(
                f"cannot interpret {raw!r} as number", sqlstate="22P02"
            ) from None
    if storage == "bool":
        if isinstance(raw, bool):
            return raw
        text = str(raw).strip().lower()
        if text in ("t", "true", "1"):
            return True
        if text in ("f", "false", "0"):
            return False
        raise SQLExecutionError(f"cannot interpret {raw!r} as boolean")
    if storage == "array":
        if isinstance(raw, list):
            return raw
        raise SQLExecutionError(f"cannot interpret {raw!r} as array")
    return str(raw)


def _coerce_column(raw: list[Any], storage: str, name: str) -> Vector:
    """Coerce one COPY column to its storage class, vectorised."""
    n = len(raw)
    if storage in ("int", "serial", "float"):
        try:
            values = np.fromiter(
                (np.nan if v is None else float(v) for v in raw),
                dtype=np.float64,
                count=n,
            )
        except (TypeError, ValueError) as exc:
            raise SQLExecutionError(
                f"column {name!r}: cannot interpret a value as a number "
                f"({exc})"
            ) from None
        nulls = np.isnan(values)
        return Vector(values, nulls)
    if storage == "bool":
        return from_values([coerce_to_type(v, storage) for v in raw])
    values = np.array(raw, dtype=object)
    nulls = np.fromiter((v is None for v in raw), dtype=bool, count=n)
    return Vector(values, nulls)


@dataclass
class Table:
    """A stored base table."""

    name: str
    column_names: list[str]
    column_types: list[str]  # storage classes
    columns: dict[str, Vector] = field(default_factory=dict)
    n_rows: int = 0
    _next_serial: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.column_names)) != len(self.column_names):
            raise CatalogError(f"duplicate column names in table {self.name!r}")
        for name in self.column_names:
            if name == CTID:
                raise CatalogError("'ctid' is reserved for the system column")
        if not self.columns:
            for name in self.column_names:
                self.columns[name] = from_values([])

    @property
    def ctid(self) -> Vector:
        values = np.arange(self.n_rows, dtype=np.float64)
        return Vector(values, np.zeros(self.n_rows, dtype=bool))

    def storage_of(self, column: str) -> str:
        try:
            return self.column_types[self.column_names.index(column)]
        except ValueError:
            raise CatalogError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def append_columns(self, data: dict[str, list[Any]], n_new: int) -> None:
        """Columnar bulk append (the COPY fast path).

        ``data`` maps provided column names to equally long value lists;
        absent serial columns are auto-numbered, other absent columns fill
        with NULL.  Coercion is done column-at-a-time without per-cell
        function dispatch.
        """
        for name, storage in zip(self.column_names, self.column_types):
            if name in data:
                raw = data[name]
                if len(raw) != n_new:
                    raise SQLExecutionError(
                        f"COPY column {name!r} has {len(raw)} values, "
                        f"expected {n_new}"
                    )
                vector = _coerce_column(raw, storage, name)
            elif storage == "serial":
                counter = self._next_serial.get(name, 0)
                values = np.arange(counter, counter + n_new, dtype=np.float64)
                self._next_serial[name] = counter + n_new
                vector = Vector(values, np.zeros(n_new, dtype=bool))
            else:
                vector = Vector(
                    np.full(n_new, np.nan), np.ones(n_new, dtype=bool)
                )
            if self.n_rows:
                from repro.sqldb.vector import concat_vectors

                self.columns[name] = concat_vectors(
                    [self.columns[name], vector]
                )
            else:
                self.columns[name] = vector
        self.n_rows += n_new

    def append_rows(self, rows: list[dict[str, Any]]) -> None:
        """Append row dicts; absent serial columns are auto-numbered."""
        new_data: dict[str, list[Any]] = {name: [] for name in self.column_names}
        for row in rows:
            for name, storage in zip(self.column_names, self.column_types):
                if name in row:
                    new_data[name].append(coerce_to_type(row[name], storage))
                elif storage == "serial":
                    counter = self._next_serial.get(name, 0)
                    new_data[name].append(counter)
                    self._next_serial[name] = counter + 1
                else:
                    new_data[name].append(None)
        for name in self.column_names:
            existing = self.columns[name].tolist() if self.n_rows else []
            self.columns[name] = from_values(existing + new_data[name])
        self.n_rows += len(rows)


# -- secondary indexes --------------------------------------------------------


_EMPTY_POSITIONS = np.empty(0, dtype=np.int64)


@dataclass
class Index:
    """A secondary index over one base table.

    Two physical shapes share this class: ``hash`` keeps a dict from key
    (scalar, or tuple for composite keys) to the ascending row positions
    holding it; ``sorted`` keeps the non-null keys in ascending order next
    to their row positions (bisect lookups, range scans).  Rows with a
    NULL in any key column are not indexed — SQL equality never matches
    them, and PostgreSQL's unique indexes likewise admit repeated NULLs.

    An ``Index`` is immutable once built: maintenance *replaces* the whole
    object (see :meth:`Catalog.refresh_indexes`), the same copy-on-write
    contract the column vectors follow, which is what makes catalog
    mementos, transaction forks and checkpoint pickles valid by sharing.

    Positions are physical row numbers (== ``ctid``), so every lookup
    returns ascending positions and a gather reproduces exactly the rows —
    in exactly the order — a full scan plus filter would produce.
    """

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    method: str = "sorted"  # 'sorted' | 'hash'
    #: table row count at build time (consistency guard for executors)
    n_rows: int = 0
    #: hash shape: key -> ascending int64 positions
    hash_map: Optional[dict] = None
    #: sorted shape: ascending non-null keys / their row positions
    #: (position-ascending within equal keys: stable sort)
    sorted_keys: Optional[np.ndarray] = None
    sorted_positions: Optional[np.ndarray] = None

    def _probe_key(self, value: Any) -> Any:
        """Normalise a probe value to the stored key representation."""
        if self.method == "sorted" and self.sorted_keys is not None:
            if self.sorted_keys.dtype != object and not isinstance(value, str):
                return float(value)
            return value
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        if isinstance(value, (int, float, np.integer, np.floating)):
            return float(value)
        return value

    def eq_positions(self, key: Any) -> np.ndarray:
        """Ascending positions of rows whose key equals *key* (single or
        tuple for composite hash indexes)."""
        if self.method == "hash":
            if isinstance(key, tuple):
                key = tuple(self._probe_key(part) for part in key)
            else:
                key = self._probe_key(key)
            try:
                return self.hash_map.get(key, _EMPTY_POSITIONS)
            except TypeError:  # unhashable probe value
                return _EMPTY_POSITIONS
        key = self._probe_key(key)
        keys = self.sorted_keys
        try:
            lo = int(np.searchsorted(keys, key, side="left"))
            hi = int(np.searchsorted(keys, key, side="right"))
        except TypeError:
            return _EMPTY_POSITIONS
        return self.sorted_positions[lo:hi]

    def in_positions(self, keys: tuple) -> np.ndarray:
        """Ascending positions matching any of *keys* (IN-list probe)."""
        parts = [self.eq_positions(key) for key in keys]
        parts = [p for p in parts if len(p)]
        if not parts:
            return _EMPTY_POSITIONS
        # unique: restores scan order AND collapses duplicate IN-list
        # literals (IN is a set predicate — each row matches once)
        return np.unique(np.concatenate(parts))

    def range_positions(
        self,
        lo: Any,
        lo_inclusive: bool,
        hi: Any,
        hi_inclusive: bool,
    ) -> np.ndarray:
        """Ascending positions with key in the given range (sorted only).

        ``None`` bounds are open; inclusivity follows the flags.
        """
        keys = self.sorted_keys
        try:
            start = (
                0
                if lo is None
                else int(
                    np.searchsorted(
                        keys,
                        self._probe_key(lo),
                        side="left" if lo_inclusive else "right",
                    )
                )
            )
            stop = (
                len(keys)
                if hi is None
                else int(
                    np.searchsorted(
                        keys,
                        self._probe_key(hi),
                        side="right" if hi_inclusive else "left",
                    )
                )
            )
        except TypeError:
            return _EMPTY_POSITIONS
        if stop <= start:
            return _EMPTY_POSITIONS
        return np.sort(self.sorted_positions[start:stop])


def _resolve_index_method(method: Optional[str], n_columns: int) -> str:
    """Normalise/choose the physical index shape."""
    if method in (None, ""):
        return "sorted" if n_columns == 1 else "hash"
    resolved = {"btree": "sorted"}.get(method, method)
    if resolved not in ("sorted", "hash"):
        raise CatalogError(f"unknown index method {method!r}")
    if resolved == "sorted" and n_columns != 1:
        raise CatalogError(
            "sorted (btree) indexes cover exactly one column; "
            "use USING hash for composite keys"
        )
    return resolved


def build_index(
    name: str,
    table: Table,
    columns: tuple[str, ...],
    unique: bool,
    method: str,
) -> Index:
    """Build a fresh index over *table*'s current rows.

    Raises :class:`UniqueViolation` (SQLSTATE 23505) when ``unique`` and
    the data already holds duplicate non-null keys — this is both the
    CREATE UNIQUE INDEX validation and, because maintenance rebuilds
    through here, the constraint check on every DML statement.
    """
    vectors = []
    for column in columns:
        if table.storage_of(column) == "array":
            raise CatalogError(
                f"cannot index array column {column!r} of table {table.name!r}"
            )
        vectors.append(table.columns[column])
    present = ~vectors[0].nulls
    for vector in vectors[1:]:
        present = present & ~vector.nulls
    positions = np.flatnonzero(present).astype(np.int64)

    if method == "sorted":
        vector = vectors[0]
        if vector.values.dtype == object:
            keys = vector.values[positions]
        else:
            keys = vector.values[positions].astype(np.float64, copy=False)
        try:
            order = np.argsort(keys, kind="stable")
        except TypeError:
            raise SQLExecutionError(
                f"index {name!r}: column {columns[0]!r} holds values that "
                "do not sort consistently; use USING hash"
            ) from None
        sorted_keys = keys[order]
        sorted_positions = positions[order]
        if unique and len(sorted_keys) > 1:
            duplicated = sorted_keys[1:] == sorted_keys[:-1]
            if np.asarray(duplicated, dtype=bool).any():
                at = int(np.flatnonzero(duplicated)[0])
                raise UniqueViolation(
                    f"duplicate key value violates unique index {name!r}: "
                    f"({', '.join(columns)})=({sorted_keys[at]!r})"
                )
        return Index(
            name,
            table.name,
            columns,
            unique,
            method,
            table.n_rows,
            sorted_keys=sorted_keys,
            sorted_positions=sorted_positions,
        )

    key_columns = [vec.values[positions].tolist() for vec in vectors]
    keys = key_columns[0] if len(key_columns) == 1 else list(zip(*key_columns))
    buckets: dict[Any, list[int]] = {}
    try:
        for pos, key in zip(positions.tolist(), keys):
            buckets.setdefault(key, []).append(pos)
    except TypeError:
        raise SQLExecutionError(
            f"index {name!r}: unhashable key values; cannot build hash index"
        ) from None
    hash_map: dict[Any, np.ndarray] = {}
    for key, rows in buckets.items():
        if unique and len(rows) > 1:
            raise UniqueViolation(
                f"duplicate key value violates unique index {name!r}: "
                f"({', '.join(columns)})=({key!r})"
            )
        hash_map[key] = np.asarray(rows, dtype=np.int64)
    return Index(
        name,
        table.name,
        columns,
        unique,
        method,
        table.n_rows,
        hash_map=hash_map,
    )


@dataclass(frozen=True)
class ColumnStats:
    """ANALYZE-collected per-column statistics.

    ``ndv`` counts distinct non-null values; ``min_value``/``max_value``
    are kept for numeric and text columns (None for arrays and for
    columns without non-null values).
    """

    n_nulls: int
    null_fraction: float
    ndv: int
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None


@dataclass(frozen=True)
class TableStats:
    """ANALYZE-collected per-table statistics snapshot."""

    table: str
    n_rows: int
    columns: dict[str, ColumnStats]
    #: catalog schema version at collection time (staleness indicator)
    schema_version: int


def _column_stats(vec: Vector, n_rows: int) -> ColumnStats:
    n_nulls = int(vec.nulls.sum())
    null_fraction = (n_nulls / n_rows) if n_rows else 0.0
    values = vec.values[~vec.nulls]
    if len(values) == 0:
        return ColumnStats(n_nulls, null_fraction, 0)
    kind = vec.values.dtype.kind
    if kind in ("f", "i", "u"):
        ndv = int(len(np.unique(values)))
        return ColumnStats(
            n_nulls, null_fraction, ndv, float(values.min()), float(values.max())
        )
    if kind == "b":
        ndv = int(len(np.unique(values)))
        return ColumnStats(
            n_nulls, null_fraction, ndv, bool(values.min()), bool(values.max())
        )
    items = values.tolist()
    try:
        distinct = set(items)
    except TypeError:
        # unhashable cells (array columns): distinct by representation
        return ColumnStats(n_nulls, null_fraction, len({repr(v) for v in items}))
    if all(isinstance(v, str) for v in distinct):
        return ColumnStats(
            n_nulls, null_fraction, len(distinct), min(distinct), max(distinct)
        )
    return ColumnStats(n_nulls, null_fraction, len(distinct))


def collect_table_stats(table: Table, schema_version: int) -> TableStats:
    """One full-scan ANALYZE pass over a base table."""
    columns = {
        name: _column_stats(table.columns[name], table.n_rows)
        for name in table.column_names
    }
    return TableStats(table.name, table.n_rows, columns, schema_version)


@dataclass
class View:
    """A stored view definition; materialised views cache their result."""

    name: str
    query: ast.Select
    materialized: bool = False
    #: populated on first use for materialised views: (schema names, vectors)
    snapshot: Optional[tuple[list[str], dict[str, Vector], int]] = None


@dataclass(frozen=True)
class TrainedModel:
    """A fitted model stored in the catalog by ``TRAIN``.

    Frozen and built entirely from immutable values (tuples, floats,
    strings), so models follow the same copy-on-write contract as
    :class:`Index`: mementos, forks and checkpoint pickles share the
    object by reference, and retraining *replaces* it wholesale.

    ``coef``/``intercept`` carry linear-model weights; ``tree`` carries a
    decision tree as nested tuples (see ``repro.learn.tree``).  Exactly
    one family is populated depending on ``estimator``.
    """

    name: str
    estimator: str  # 'logistic_regression' | 'linear_regression' | 'decision_tree'
    features: tuple[str, ...]
    target: str
    #: the hyperparameters the trainer actually used, sorted by key
    hyperparams: tuple[tuple[str, Any], ...]
    coef: Optional[tuple[float, ...]] = None
    intercept: Optional[float] = None
    tree: Optional[tuple] = None
    n_iter: int = 0
    loss: Optional[float] = None


@dataclass
class CatalogSnapshot:
    """Copy-on-write memento of the whole catalog (see ``snapshot()``).

    Holds the live ``Table``/``View`` objects by identity plus shallow
    copies of their mutable containers.  Valid because every data
    mutation path *replaces* column vectors (``append_rows`` /
    ``append_columns`` build fresh vectors) and view refreshes replace
    the whole ``snapshot`` tuple — nothing writes into a captured
    container.  A memento can be restored any number of times
    (``restore`` re-copies its containers on the way back in).
    """

    tables: dict[str, tuple]
    views: dict[str, tuple]
    table_stats: dict[str, "TableStats"]
    schema_version: int
    stats_version: int
    indexes: dict[str, Index] = field(default_factory=dict)
    index_epoch: int = 0
    models: dict[str, TrainedModel] = field(default_factory=dict)


#: unique ids for transaction forks; the committed catalog is always
#: uid 0, so plan-cache entries keyed on it stay shareable across
#: databases while fork-built entries can never collide with each other
_fork_ids = itertools.count(1)


class Catalog:
    """Name → table/view registry with PostgreSQL-style single namespace."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, View] = {}
        #: 0 for a committed catalog, unique per transaction fork (part
        #: of the plan-cache key: two forks at the same schema_version
        #: may have diverged)
        self.uid = 0
        #: per-relation last-write version (the schema_version at the
        #: most recent committed write, kept as a tombstone across DROP);
        #: MVCC first-committer-wins compares these at COMMIT
        self.table_versions: dict[str, int] = {}
        #: monotonically increasing counter, bumped on every change that can
        #: invalidate a cached plan (DDL always; the engine also bumps it on
        #: INSERT/COPY).  Plan-cache keys embed it, so stale entries simply
        #: stop matching and age out of the LRU.
        self.schema_version = 0
        self._fingerprint = 0
        self._fingerprint_version = -1
        #: ANALYZE-collected statistics per base table; PostgreSQL-style,
        #: they go stale on data change and refresh only on the next ANALYZE
        self._table_stats: dict[str, TableStats] = {}
        #: bumped on every ANALYZE so plan-cache keys embedding it stop
        #: matching (a stats refresh can change the chosen plan)
        self.stats_version = 0
        #: secondary indexes by name (single namespace of their own; the
        #: objects are immutable and replaced wholesale on maintenance)
        self._indexes: dict[str, Index] = {}
        #: monotonic counter of index DDL (CREATE/DROP INDEX); plan-cache
        #: keys embed it so access-path choices die with their indexes
        self.index_epoch = 0
        #: fitted models by name (TRAIN output; immutable objects replaced
        #: wholesale on retrain, same copy-on-write contract as indexes)
        self._models: dict[str, TrainedModel] = {}

    def bump_version(self) -> None:
        self.schema_version += 1

    def note_write(self, name: str) -> None:
        """Record a committed write to relation *name*: bump the schema
        version and stamp the relation's last-write version with it."""
        self.bump_version()
        self.table_versions[name] = self.schema_version

    # -- transactional mementos ---------------------------------------------

    def snapshot(self) -> CatalogSnapshot:
        """Capture a restorable memento of the full catalog state.

        O(relations + columns): dict/list shallow copies only — the
        column vectors themselves are shared copy-on-write (see
        :class:`CatalogSnapshot`)."""
        tables = {
            name: (
                table,
                list(table.column_names),
                list(table.column_types),
                dict(table.columns),
                table.n_rows,
                dict(table._next_serial),
            )
            for name, table in self._tables.items()
        }
        views = {
            name: (view, view.snapshot) for name, view in self._views.items()
        }
        return CatalogSnapshot(
            tables,
            views,
            dict(self._table_stats),
            self.schema_version,
            self.stats_version,
            dict(self._indexes),
            self.index_epoch,
            dict(self._models),
        )

    def restore(self, snap: CatalogSnapshot) -> None:
        """Roll the catalog back to *snap*.

        Relations created since the memento vanish; dropped ones
        reappear (same objects — plans resolve relations by name, so
        identity preservation is a nicety, not a requirement).  When
        anything actually changed since the capture, ``schema_version``
        takes a fresh monotonic bump rather than rewinding, so plans
        cached *inside* the rolled-back span can never be served again
        (version values are never reused).
        """
        changed = (
            self.schema_version != snap.schema_version
            or self.stats_version != snap.stats_version
            or self.index_epoch != snap.index_epoch
        )
        self._tables = {}
        for name, (table, names, types, columns, n_rows, serials) in snap.tables.items():
            table.column_names = list(names)
            table.column_types = list(types)
            table.columns = dict(columns)
            table.n_rows = n_rows
            table._next_serial = dict(serials)
            self._tables[name] = table
        self._views = {}
        for name, (view, view_snapshot) in snap.views.items():
            view.snapshot = view_snapshot
            self._views[name] = view
        self._table_stats = dict(snap.table_stats)
        self._indexes = dict(snap.indexes)
        self._models = dict(snap.models)
        if self.index_epoch != snap.index_epoch:
            # monotonic, like schema_version: epoch values are never reused
            self.index_epoch += 1
        if changed:
            self.bump_version()

    def fork(self) -> "Catalog":
        """Detached copy-on-write clone for one transaction's snapshot.

        Unlike :meth:`snapshot` (a memento that restores *this* catalog
        in place), a fork is a fully independent :class:`Catalog` whose
        ``Table``/``View`` objects are fresh — they share the immutable
        column vectors and view-snapshot tuples with the committed state,
        so capturing one is O(relations + columns), but mutating the fork
        never touches the committed objects (and vice versa).
        """
        clone = Catalog()
        clone.uid = next(_fork_ids)
        for name, table in self._tables.items():
            clone._tables[name] = Table(
                table.name,
                list(table.column_names),
                list(table.column_types),
                dict(table.columns),
                table.n_rows,
                dict(table._next_serial),
            )
        for name, view in self._views.items():
            twin = View(view.name, view.query, view.materialized)
            twin.snapshot = view.snapshot
            clone._views[name] = twin
        clone._table_stats = dict(self._table_stats)
        clone._indexes = dict(self._indexes)
        clone._models = dict(self._models)
        clone.schema_version = self.schema_version
        clone.stats_version = self.stats_version
        clone.index_epoch = self.index_epoch
        clone.table_versions = dict(self.table_versions)
        return clone

    def adopt_relation(self, name: str, source: "Catalog") -> None:
        """Install *source*'s version of relation *name* into this
        catalog (the MVCC commit swap); absent in *source* means the
        transaction dropped it."""
        if name in source._tables:
            self._views.pop(name, None)
            self._tables[name] = source._tables[name]
            if name in source._table_stats:
                self._table_stats[name] = source._table_stats[name]
        elif name in source._views:
            self._tables.pop(name, None)
            self._views[name] = source._views[name]
        elif name in source._models:
            self._models[name] = source._models[name]
        else:
            self._tables.pop(name, None)
            self._views.pop(name, None)
            self._table_stats.pop(name, None)
            self._models.pop(name, None)
        # the transaction's index set for this table replaces ours
        # (covers CREATE INDEX, DROP INDEX and DROP TABLE cascades)
        before = {
            index_name
            for index_name, index in self._indexes.items()
            if index.table == name
        }
        after = {
            index_name: index
            for index_name, index in source._indexes.items()
            if index.table == name
        }
        if before != set(after):
            self.index_epoch += 1
        for index_name in before:
            del self._indexes[index_name]
        self._indexes.update(after)

    def install(
        self,
        tables: dict[str, Table],
        views: dict[str, View],
        table_stats: dict[str, TableStats],
        indexes: Optional[dict[str, Index]] = None,
        models: Optional[dict[str, TrainedModel]] = None,
    ) -> None:
        """Adopt recovered state wholesale (checkpoint load on open)."""
        self._tables = dict(tables)
        self._views = dict(views)
        self._table_stats = dict(table_stats)
        self._indexes = dict(indexes or {})
        self._models = dict(models or {})
        self.index_epoch += 1
        self.bump_version()

    def export_state(
        self,
    ) -> tuple[
        dict[str, Table],
        dict[str, View],
        dict[str, TableStats],
        dict[str, Index],
        dict[str, TrainedModel],
    ]:
        """The live relation/statistics dicts for checkpointing (the
        inverse of :meth:`install`)."""
        return (
            dict(self._tables),
            dict(self._views),
            dict(self._table_stats),
            dict(self._indexes),
            dict(self._models),
        )

    # -- ANALYZE statistics -------------------------------------------------

    def analyze(self, name: Optional[str] = None) -> list[str]:
        """Collect statistics for one base table (or all of them).

        Returns the analyzed table names and bumps ``stats_version`` so
        cached plans chosen under the old statistics are invalidated.
        """
        names = [name] if name is not None else self.table_names
        for table_name in names:
            table = self.table(table_name)
            self._table_stats[table_name] = collect_table_stats(
                table, self.schema_version
            )
        self.stats_version += 1
        return names

    def table_stats(self, name: str) -> Optional[TableStats]:
        """The last ANALYZE snapshot for *name*, if any."""
        return self._table_stats.get(name)

    @property
    def analyzed_tables(self) -> list[str]:
        return sorted(self._table_stats)

    def schema_fingerprint(self) -> int:
        """Stable digest of every relation's schema (not its data).

        Plan-cache keys embed it alongside ``schema_version`` so that a
        cache shared across reconnects can only serve an entry to a
        database whose relations have identical shapes.  Recomputed
        lazily, at most once per version.
        """
        if self._fingerprint_version != self.schema_version:
            parts: list[tuple] = []
            for name in sorted(self._tables):
                table = self._tables[name]
                parts.append(
                    (name, tuple(table.column_names), tuple(table.column_types))
                )
            for name in sorted(self._views):
                view = self._views[name]
                parts.append((name, view.materialized, repr(view.query)))
            for name in sorted(self._indexes):
                index = self._indexes[name]
                parts.append(
                    (name, index.table, index.columns, index.unique, index.method)
                )
            for name in sorted(self._models):
                model = self._models[name]
                parts.append(
                    (name, model.estimator, model.features, model.target)
                )
            self._fingerprint = hash(tuple(parts))
            self._fingerprint_version = self.schema_version
        return self._fingerprint

    def create_table(self, table: Table) -> None:
        if (
            table.name in self._tables
            or table.name in self._views
            or table.name in self._models
        ):
            raise CatalogError(
                f"relation {table.name!r} already exists", sqlstate="42P07"
            )
        self._tables[table.name] = table
        self.bump_version()

    def create_view(self, view: View) -> None:
        if (
            view.name in self._tables
            or view.name in self._views
            or view.name in self._models
        ):
            raise CatalogError(
                f"relation {view.name!r} already exists", sqlstate="42P07"
            )
        self._views[view.name] = view
        self.bump_version()

    def drop(self, name: str, kind: str, if_exists: bool = False) -> None:
        store = self._tables if kind == "table" else self._views
        if name not in store:
            if if_exists:
                return
            raise CatalogError(f"{kind} {name!r} does not exist")
        del store[name]
        if kind == "table":
            self._table_stats.pop(name, None)
            dependent = [
                index_name
                for index_name, index in self._indexes.items()
                if index.table == name
            ]
            for index_name in dependent:
                del self._indexes[index_name]
            if dependent:
                self.index_epoch += 1
        self.bump_version()

    # -- secondary indexes ---------------------------------------------------

    def create_index(self, index: Index) -> None:
        """Register a freshly built index (relation namespace is shared:
        an index may not reuse a table/view/index name)."""
        if (
            index.name in self._indexes
            or index.name in self._tables
            or index.name in self._views
            or index.name in self._models
        ):
            raise CatalogError(
                f"relation {index.name!r} already exists", sqlstate="42P07"
            )
        if index.table not in self._tables:
            raise CatalogError(f"table {index.table!r} does not exist")
        self._indexes[index.name] = index
        self.index_epoch += 1
        self.bump_version()

    def drop_index(self, name: str, if_exists: bool = False) -> None:
        if name not in self._indexes:
            if if_exists:
                return
            raise CatalogError(f"index {name!r} does not exist")
        del self._indexes[name]
        self.index_epoch += 1
        self.bump_version()

    def index(self, name: str) -> Index:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"index {name!r} does not exist") from None

    def has_index(self, name: str) -> bool:
        return name in self._indexes

    def indexes_on(self, table: str) -> list[Index]:
        """Indexes over *table*, in name order (deterministic planning)."""
        return sorted(
            (ix for ix in self._indexes.values() if ix.table == table),
            key=lambda ix: ix.name,
        )

    @property
    def index_names(self) -> list[str]:
        return sorted(self._indexes)

    def refresh_indexes(self, table_name: str) -> None:
        """Rebuild every index on *table_name* from its current rows.

        Called by the engine after each DML statement that touched the
        table.  Rebuilding replaces the ``Index`` objects (copy-on-write:
        mementos and forks captured earlier keep the old ones), and the
        unique check inside :func:`build_index` raises
        :class:`UniqueViolation` *before* any index is swapped in — the
        engine's statement memento then rolls the data change back too.
        """
        table = self._tables[table_name]
        rebuilt = [
            build_index(ix.name, table, ix.columns, ix.unique, ix.method)
            for ix in self.indexes_on(table_name)
        ]
        for index in rebuilt:
            self._indexes[index.name] = index

    # -- trained models ------------------------------------------------------

    def create_model(self, model: TrainedModel) -> None:
        """Store a fitted model (retraining an existing model name
        replaces it; a table/view/index name is a 42P07 collision)."""
        if (
            model.name in self._tables
            or model.name in self._views
            or model.name in self._indexes
        ):
            raise CatalogError(
                f"relation {model.name!r} already exists", sqlstate="42P07"
            )
        self._models[model.name] = model
        self.bump_version()

    def drop_model(self, name: str, if_exists: bool = False) -> None:
        if name not in self._models:
            if if_exists:
                return
            raise CatalogError(f"model {name!r} does not exist")
        del self._models[name]
        self.bump_version()

    def model(self, name: str) -> TrainedModel:
        try:
            return self._models[name]
        except KeyError:
            raise CatalogError(f"model {name!r} does not exist") from None

    def has_model(self, name: str) -> bool:
        return name in self._models

    @property
    def model_names(self) -> list[str]:
        return sorted(self._models)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def resolve(self, name: str) -> Table | View:
        if name in self._tables:
            return self._tables[name]
        if name in self._views:
            return self._views[name]
        raise CatalogError(f"relation {name!r} does not exist")

    def has(self, name: str) -> bool:
        return name in self._tables or name in self._views

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    @property
    def view_names(self) -> list[str]:
        return sorted(self._views)
