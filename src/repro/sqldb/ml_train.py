"""In-database ML training: gradient descent and CART growth as SQL aggregates.

The paper transpiles sklearn *preprocessing and inference* into SQL but
stops short of training.  This module closes that loop along the lines of
sql4ml (gradient descent expressed as declarative SQL over the feature
table) and JoinBoost (trees grown using only SQL aggregates):

* **Linear models** (``logistic_regression``, ``linear_regression``) run
  full-batch gradient descent as a Python-driven iterate-until-converged
  loop.  Each iteration is ONE aggregate query — per-feature
  ``SUM(error * f_j)`` gradients, ``SUM(error)`` for the intercept, the
  training loss and ``COUNT(*)`` — with the current weights carried into
  the query as literals.  The arithmetic mirrors
  ``repro.learn.linear_model`` exactly (same sigmoid-via-tanh formula,
  same update and stopping rule), so the SQL-trained coefficients agree
  with the numpy trainer to high precision.

* **Decision trees** (``decision_tree``) grow JoinBoost-style: each node
  issues one ``GROUP BY feature`` histogram query per feature
  (``value, COUNT(*), SUM(target)``), from which candidate thresholds,
  gini gains and the numpy trainer's exact tie-breaking are reproduced in
  Python over the (exact, integer) aggregate counts.  The grown tree is
  structurally identical to ``repro.learn.tree.DecisionTreeClassifier``
  on the same data.

Everything flows through the hosting engine via an injected ``run``
callback, so MVCC snapshots, WAL logging, indexes and parallel execution
apply unchanged — and because the engine's parallel aggregation falls
back to an exact serial merge for float sums (the exactness certificate),
training is bit-for-bit deterministic across worker counts.

Deliberately out of scope: no neural networks in SQL — backprop through
matrix-shaped hidden layers has no reasonable aggregate-query form here.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.errors import SQLExecutionError
from repro.learn.tree import _gini
from repro.sqldb import ast_nodes as ast
from repro.sqldb.catalog import TrainedModel

__all__ = ["train_model", "model_to_estimator"]

#: clamp for ln() in the logistic loss: tanh saturates exactly to +/-1
#: for |z| > ~19, where ln(0) would otherwise go non-finite (NULL)
_LOSS_EPS = 1e-12

_LOGISTIC_NAMES = {"logistic", "logistic_regression", "logisticregression"}
_LINEAR_NAMES = {
    "linear",
    "linear_regression",
    "linearregression",
    "sgd_regressor",
    "sgdregressor",
}
_TREE_NAMES = {
    "tree",
    "decision_tree",
    "decisiontree",
    "decisiontreeclassifier",
}

#: the engine-supplied query runner: Select AST in, Result out
RunQuery = Callable[[ast.Select], Any]


# -- small AST builders -------------------------------------------------------


def _lit(value: Any) -> ast.Literal:
    return ast.Literal(value)


def _col(name: str) -> ast.ColumnRef:
    return ast.ColumnRef(name)


def _mul(left: ast.Expr, right: ast.Expr) -> ast.BinaryOp:
    return ast.BinaryOp("*", left, right)


def _add(left: ast.Expr, right: ast.Expr) -> ast.BinaryOp:
    return ast.BinaryOp("+", left, right)


def _sub(left: ast.Expr, right: ast.Expr) -> ast.BinaryOp:
    return ast.BinaryOp("-", left, right)


def _sum(expr: ast.Expr) -> ast.FuncCall:
    return ast.FuncCall("sum", (expr,))


def _count_star() -> ast.FuncCall:
    return ast.FuncCall("count", star=True)


def _clamped_ln(expr: ast.Expr) -> ast.FuncCall:
    clamped = ast.FuncCall(
        "least",
        (
            ast.FuncCall("greatest", (expr, _lit(_LOSS_EPS))),
            _lit(1.0 - _LOSS_EPS),
        ),
    )
    return ast.FuncCall("ln", (clamped,))


def _value(result: Any, column: str) -> Any:
    return result.rows[0][result.columns.index(column)]


# -- options ------------------------------------------------------------------


def _pop_float(options: dict, key: str, default: float) -> float:
    raw = options.pop(key, default)
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise SQLExecutionError(
            f"TRAIN option {key!r} must be a number, got {raw!r}",
            sqlstate="22023",
        ) from None


def _pop_int(options: dict, key: str, default: int) -> int:
    raw = options.pop(key, default)
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise SQLExecutionError(
            f"TRAIN option {key!r} must be an integer, got {raw!r}",
            sqlstate="22023",
        ) from None


def _reject_unknown(options: dict) -> None:
    if options:
        names = ", ".join(sorted(options))
        raise SQLExecutionError(
            f"unknown TRAIN option(s): {names}", sqlstate="22023"
        )


def _pop_learning_rate(options: dict, default: float) -> float:
    if "learning_rate" in options and "lr" in options:
        raise SQLExecutionError(
            "TRAIN options lr and learning_rate are aliases; give one",
            sqlstate="22023",
        )
    key = "learning_rate" if "learning_rate" in options else "lr"
    return _pop_float(options, key, default)


# -- schema discovery ---------------------------------------------------------


def _discover_columns(query: ast.Select, run: RunQuery) -> list[str]:
    probe = ast.Select(
        items=[ast.SelectItem(ast.Star())],
        sources=[ast.SubquerySource(query, "__train_src")],
        limit=1,
    )
    columns = list(run(probe).columns)
    if len(set(columns)) != len(columns):
        raise SQLExecutionError(
            "TRAIN query has duplicate output columns; alias them apart"
        )
    return columns


def _split_features(
    columns: list[str], target: Optional[str]
) -> tuple[list[str], str]:
    """Feature/target split: explicit ``target`` option, else the last
    output column is the target and everything before it a feature."""
    if target is None:
        target = columns[-1]
    elif target not in columns:
        raise SQLExecutionError(
            f"TRAIN target column {target!r} is not in the query output"
        )
    features = [name for name in columns if name != target]
    if not features:
        raise SQLExecutionError(
            "TRAIN query must produce at least one feature column "
            "besides the target"
        )
    return features, target


# -- linear-family training ---------------------------------------------------


def _linear_iteration_query(
    query: ast.Select,
    features: list[str],
    target: str,
    weights: list[float],
    intercept: float,
    logistic: bool,
) -> ast.Select:
    """One gradient-descent iteration as a single aggregate query.

    The inner projection evaluates the prediction once per row with the
    current weights inlined as literals; the outer aggregate folds the
    per-feature gradient sums, the intercept gradient sum, the row count
    and the training-loss sum in one pass.
    """
    z: ast.Expr = _lit(intercept)
    for weight, feature in zip(weights, features):
        z = _add(z, _mul(_lit(weight), _col(feature)))
    if logistic:
        # p = sigmoid(z) written exactly as the numpy trainer computes it:
        # 0.5 * (1 + tanh(0.5 * z))
        prediction: ast.Expr = _mul(
            _lit(0.5),
            _add(_lit(1.0), ast.FuncCall("tanh", (_mul(_lit(0.5), z),))),
        )
    else:
        prediction = z
    inner_items = [
        ast.SelectItem(prediction, "__p"),
        ast.SelectItem(_col(target), "__y"),
    ]
    feature_aliases = []
    for j, feature in enumerate(features):
        alias = f"__x{j}"
        feature_aliases.append(alias)
        inner_items.append(ast.SelectItem(_col(feature), alias))
    inner = ast.Select(
        items=inner_items,
        sources=[ast.SubquerySource(query, "__train_src")],
    )
    error = _sub(_col("__p"), _col("__y"))
    if logistic:
        # negative log-likelihood; ln() inputs clamped away from 0
        loss_term: ast.Expr = ast.UnaryOp(
            "-",
            _add(
                _mul(_col("__y"), _clamped_ln(_col("__p"))),
                _mul(
                    _sub(_lit(1.0), _col("__y")),
                    _clamped_ln(_sub(_lit(1.0), _col("__p"))),
                ),
            ),
        )
    else:
        loss_term = _mul(error, error)
    outer_items = [
        ast.SelectItem(_count_star(), "__n"),
        ast.SelectItem(_sum(error), "__gb"),
    ]
    for j, alias in enumerate(feature_aliases):
        outer_items.append(
            ast.SelectItem(_sum(_mul(error, _col(alias))), f"__g{j}")
        )
    outer_items.append(ast.SelectItem(_sum(loss_term), "__loss"))
    return ast.Select(
        items=outer_items,
        sources=[ast.SubquerySource(inner, "__errors")],
    )


def _train_linear_family(
    name: str,
    query: ast.Select,
    features: list[str],
    target: str,
    options: dict,
    run: RunQuery,
    logistic: bool,
) -> TrainedModel:
    """Gradient descent matching ``repro.learn.linear_model`` step for
    step: same gradients, same update, same stopping rule — only the
    per-iteration sums come from SQL instead of numpy dot products."""
    learning_rate = _pop_learning_rate(options, 0.5 if logistic else 0.1)
    max_iter = _pop_int(options, "max_iter", 500)
    tol = _pop_float(options, "tol", 1e-6)
    c_value = _pop_float(options, "c", 1.0) if logistic else None
    _reject_unknown(options)
    if logistic and c_value is not None and c_value <= 0.0:
        raise SQLExecutionError(
            "TRAIN option c must be positive", sqlstate="22023"
        )

    d = len(features)
    weights = [0.0] * d
    intercept = 0.0
    n_iter = 0
    loss: Optional[float] = None
    for _ in range(max_iter):
        result = run(
            _linear_iteration_query(
                query, features, target, weights, intercept, logistic
            )
        )
        n = int(_value(result, "__n"))
        if n == 0:
            raise SQLExecutionError(
                f"TRAIN {name}: training query returned no rows"
            )
        gradient_sums = [float(_value(result, f"__g{j}")) for j in range(d)]
        intercept_sum = float(_value(result, "__gb"))
        loss_sum = float(_value(result, "__loss"))
        if logistic:
            l2 = 1.0 / (c_value * n)
            gradients = [
                g_sum / n + l2 * weight
                for g_sum, weight in zip(gradient_sums, weights)
            ]
            loss = loss_sum / n
        else:
            gradients = [g_sum / n for g_sum in gradient_sums]
            loss = loss_sum / (2.0 * n)
        gradient_b = intercept_sum / n
        weights = [
            weight - learning_rate * gradient
            for weight, gradient in zip(weights, gradients)
        ]
        intercept -= learning_rate * gradient_b
        n_iter += 1
        if max(abs(g) for g in gradients + [gradient_b]) < tol:
            break

    hyperparams = {
        "lr": learning_rate,
        "max_iter": max_iter,
        "tol": tol,
    }
    if logistic:
        hyperparams["c"] = c_value
    return TrainedModel(
        name=name,
        estimator="logistic_regression" if logistic else "linear_regression",
        features=tuple(features),
        target=target,
        hyperparams=tuple(sorted(hyperparams.items())),
        coef=tuple(weights),
        intercept=intercept,
        n_iter=n_iter,
        loss=loss,
    )


# -- decision-tree training ---------------------------------------------------


def _histogram_query(
    query: ast.Select,
    feature: str,
    target: str,
    path: list[tuple[str, float, bool]],
) -> ast.Select:
    """Per-node candidate-split aggregates for one feature, JoinBoost
    style: ``feature value, COUNT(*), SUM(target)`` grouped by value,
    restricted to the node's root-to-here split path."""
    where: Optional[ast.Expr] = None
    for split_feature, threshold, is_left in path:
        predicate = ast.BinaryOp(
            "<=" if is_left else ">", _col(split_feature), _lit(threshold)
        )
        where = predicate if where is None else ast.BinaryOp("and", where, predicate)
    return ast.Select(
        items=[
            ast.SelectItem(_col(feature), "__v"),
            ast.SelectItem(_count_star(), "__c"),
            ast.SelectItem(_sum(_col(target)), "__s"),
        ],
        sources=[ast.SubquerySource(query, "__train_src")],
        where=where,
        group_by=[_col(feature)],
    )


def _node_histograms(
    query: ast.Select,
    features: list[str],
    target: str,
    path: list[tuple[str, float, bool]],
    run: RunQuery,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """(sorted distinct values, counts, positive counts) per feature."""
    histograms = []
    for feature in features:
        result = run(_histogram_query(query, feature, target, path))
        raw = [
            (value, count, positives)
            for value, count, positives in zip(
                result.column("__v"),
                result.column("__c"),
                result.column("__s"),
            )
            if value is not None
        ]
        values = np.asarray([float(v) for v, _, _ in raw], dtype=np.float64)
        counts = np.asarray([int(c) for _, c, _ in raw], dtype=np.int64)
        positives = np.asarray(
            [0.0 if s is None else float(s) for _, _, s in raw],
            dtype=np.float64,
        )
        order = np.argsort(values, kind="stable")
        histograms.append((values[order], counts[order], positives[order]))
    return histograms


def _best_split_from_histograms(
    histograms: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    n: int,
    n_positive: int,
    max_thresholds: int,
) -> Optional[tuple[int, float, float]]:
    """The numpy trainer's ``_best_split`` replayed over exact aggregate
    counts: same candidate thresholds (unique values / quantiles), same
    gini arithmetic on integer count arrays, same first-strictly-better
    tie-breaking, same ``gain <= 1e-12`` cutoff."""
    parent_gini = _gini(np.array([n - n_positive, n_positive]))
    best: Optional[tuple[int, float, float]] = None
    for j, (values, counts, positives) in enumerate(histograms):
        if len(values) < 2:
            continue
        if len(values) > max_thresholds:
            # np.quantile only needs the column's multiset; the sorted
            # repeat-by-count expansion reproduces it exactly
            column = np.repeat(values, counts)
            quantiles = np.linspace(0, 1, max_thresholds + 2)[1:-1]
            candidates = np.unique(np.quantile(column, quantiles))
        else:
            candidates = (values[:-1] + values[1:]) / 2.0
        cumulative_counts = np.cumsum(counts)
        cumulative_positives = np.cumsum(positives)
        for threshold in candidates:
            hi = int(np.searchsorted(values, threshold, side="right"))
            if hi == 0:
                continue  # n_left == 0
            n_left = int(cumulative_counts[hi - 1])
            if n_left == n:
                continue
            positive_left = int(cumulative_positives[hi - 1])
            left_counts = np.array([n_left - positive_left, positive_left])
            positive_right = n_positive - positive_left
            right_counts = np.array(
                [(n - n_left) - positive_right, positive_right]
            )
            gain = parent_gini - (
                n_left / n * _gini(left_counts)
                + (n - n_left) / n * _gini(right_counts)
            )
            if best is None or gain > best[2]:
                best = (j, float(threshold), float(gain))
    if best is None or best[2] <= 1e-12:
        return None
    return best


def _train_tree(
    name: str,
    query: ast.Select,
    features: list[str],
    target: str,
    options: dict,
    run: RunQuery,
) -> TrainedModel:
    max_depth = _pop_int(options, "max_depth", 8)
    min_samples_split = _pop_int(options, "min_samples_split", 2)
    max_thresholds = _pop_int(options, "max_thresholds", 32)
    _reject_unknown(options)

    n_nodes = 0

    def grow(path: list[tuple[str, float, bool]], depth: int) -> tuple:
        nonlocal n_nodes
        n_nodes += 1
        histograms = _node_histograms(query, features, target, path, run)
        values, counts, positives = histograms[0]
        n = int(counts.sum())
        if n == 0:
            if not path:
                raise SQLExecutionError(
                    f"TRAIN {name}: training query returned no rows"
                )
            return (0.0, None, None, None, None)
        total_positive = float(positives.sum())
        if total_positive != int(total_positive) or not (
            0.0 <= total_positive <= n
        ):
            raise SQLExecutionError(
                f"TRAIN {name}: decision_tree targets must be 0/1 labels"
            )
        n_positive = int(total_positive)
        # exact: the 0/1 label sum and count are integers, so this float
        # division reproduces numpy's y.mean() bit for bit
        prediction = n_positive / n
        if (
            depth >= max_depth
            or n < min_samples_split
            or prediction in (0.0, 1.0)
        ):
            return (prediction, None, None, None, None)
        best = _best_split_from_histograms(
            histograms, n, n_positive, max_thresholds
        )
        if best is None:
            return (prediction, None, None, None, None)
        feature_index, threshold, _ = best
        feature = features[feature_index]
        return (
            prediction,
            feature_index,
            threshold,
            grow(path + [(feature, threshold, True)], depth + 1),
            grow(path + [(feature, threshold, False)], depth + 1),
        )

    tree = grow([], depth=0)
    return TrainedModel(
        name=name,
        estimator="decision_tree",
        features=tuple(features),
        target=target,
        hyperparams=tuple(
            sorted(
                {
                    "max_depth": max_depth,
                    "min_samples_split": min_samples_split,
                    "max_thresholds": max_thresholds,
                }.items()
            )
        ),
        tree=tree,
        n_iter=n_nodes,
    )


# -- entry points -------------------------------------------------------------


def train_model(
    name: str,
    query: ast.Select,
    options: dict[str, Any],
    run: RunQuery,
) -> TrainedModel:
    """Fit one model named *name* over *query*'s output via *run*.

    ``options`` are the (literal-resolved) ``WITH (...)`` options;
    ``run`` executes a Select AST against the hosting transaction's
    catalog and returns the engine ``Result``.
    """
    options = {str(key).lower(): value for key, value in options.items()}
    estimator_raw = options.pop("estimator", "logistic_regression")
    estimator = str(estimator_raw).lower().strip()
    target_option = options.pop("target", None)
    if target_option is not None:
        target_option = str(target_option)
    columns = _discover_columns(query, run)
    features, target = _split_features(columns, target_option)
    if estimator in _LOGISTIC_NAMES:
        return _train_linear_family(
            name, query, features, target, options, run, logistic=True
        )
    if estimator in _LINEAR_NAMES:
        return _train_linear_family(
            name, query, features, target, options, run, logistic=False
        )
    if estimator in _TREE_NAMES:
        return _train_tree(name, query, features, target, options, run)
    raise SQLExecutionError(
        f"unknown TRAIN estimator {estimator_raw!r}; expected "
        "logistic_regression, linear_regression or decision_tree",
        sqlstate="22023",
    )


def model_to_estimator(model: TrainedModel):
    """Load a catalog-stored model back into a ``repro.learn`` estimator,
    so the paper's inspect/infer path picks up where training ended."""
    from repro.learn.linear_model import LinearRegression, LogisticRegression
    from repro.learn.tree import DecisionTreeClassifier

    hyperparams = dict(model.hyperparams)
    if model.estimator == "logistic_regression":
        return LogisticRegression.from_coefficients(
            model.coef,
            model.intercept,
            C=hyperparams["c"],
            max_iter=hyperparams["max_iter"],
            learning_rate=hyperparams["lr"],
            tol=hyperparams["tol"],
        )
    if model.estimator == "linear_regression":
        return LinearRegression.from_coefficients(
            model.coef,
            model.intercept,
            max_iter=hyperparams["max_iter"],
            learning_rate=hyperparams["lr"],
            tol=hyperparams["tol"],
        )
    if model.estimator == "decision_tree":
        return DecisionTreeClassifier.from_tuples(
            model.tree,
            max_depth=hyperparams["max_depth"],
            min_samples_split=hyperparams["min_samples_split"],
            max_thresholds=hyperparams["max_thresholds"],
        )
    raise SQLExecutionError(f"unknown stored estimator {model.estimator!r}")
