"""Recursive-descent parser for the supported SQL dialect.

Covers everything the paper's transpiler generates (Listings 1-19) plus a
superset useful for testing: WITH (optionally ``NOT MATERIALIZED``) CTEs,
joins (inner/left/right/full/cross), grouping/having, ordering/limit,
``UNION ALL``, scalar subqueries, ``CASE``, ``CAST``/``::``, ``IN``,
``BETWEEN``, ``IS [NOT] NULL``, ``LIKE``, and the DDL/DML statements
``CREATE TABLE``, ``CREATE [MATERIALIZED] VIEW``, ``INSERT``, ``COPY`` and
``DROP``.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from typing import Optional

from repro.errors import SQLSyntaxError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.lexer import Token, TokenKind, tokenize

__all__ = ["parse_statement", "parse_script", "parse_expression"]

_COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}
_TYPE_WORDS = {
    "int", "integer", "bigint", "smallint", "serial", "bigserial", "float",
    "real", "numeric", "decimal", "double", "precision", "text", "varchar",
    "char", "boolean", "bool", "date", "timestamp",
}


class _Parser:
    def __init__(self, sql: str) -> None:
        self._tokens = tokenize(sql)
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self._peek()
        return SQLSyntaxError(f"{message} (near {token.value!r} at offset {token.position})")

    def _accept_keyword(self, *words: str) -> bool:
        if self._peek().kind is TokenKind.KEYWORD and self._peek().value in words:
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word.upper()}")

    def _accept_word(self, *words: str) -> Optional[str]:
        """Accept a non-reserved word appearing as KEYWORD or IDENT.

        Words like ``nulls``, ``first``, ``last`` and ``filter`` are not
        reserved in PostgreSQL, so the lexer emits them as identifiers;
        clause parsing must still recognise them positionally.
        """
        token = self._peek()
        if token.kind in (TokenKind.KEYWORD, TokenKind.IDENT) and token.value in words:
            return self._advance().value
        return None

    def _accept_punct(self, value: str) -> bool:
        if self._peek().kind is TokenKind.PUNCT and self._peek().value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise self._error(f"expected {value!r}")

    def _accept_operator(self, *values: str) -> Optional[str]:
        if self._peek().kind is TokenKind.OPERATOR and self._peek().value in values:
            return self._advance().value
        return None

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            self._advance()
            return token.value
        # allow non-reserved keywords in identifier position (e.g. a column
        # named "view" would arrive quoted, but COPY options use keywords)
        raise self._error(f"expected {what}")

    # -- statements ------------------------------------------------------------

    def parse_script(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while self._peek().kind is not TokenKind.EOF:
            statements.append(self.parse_statement())
            while self._accept_punct(";"):
                pass
        return statements

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.kind is not TokenKind.KEYWORD:
            # TRAIN is not a reserved word (columns named "train" keep
            # working), so the lexer emits it as an identifier; dispatch
            # on it positionally like the other non-reserved clauses.
            if token.kind is TokenKind.IDENT and token.value == "train":
                return self._parse_train()
            raise self._error("expected a statement keyword")
        if token.value in ("select", "with"):
            return self.parse_select()
        if token.value == "create":
            return self._parse_create()
        if token.value == "insert":
            return self._parse_insert()
        if token.value == "update":
            return self._parse_update()
        if token.value == "delete":
            return self._parse_delete()
        if token.value == "copy":
            return self._parse_copy()
        if token.value == "drop":
            return self._parse_drop()
        if token.value == "analyze":
            return self._parse_analyze()
        if token.value == "begin":
            self._advance()
            self._accept_word("transaction", "work")
            return ast.Begin()
        if token.value == "commit":
            self._advance()
            self._accept_word("transaction", "work")
            return ast.Commit()
        if token.value == "rollback":
            return self._parse_rollback()
        if token.value == "savepoint":
            self._advance()
            return ast.Savepoint(self._expect_identifier("savepoint name"))
        if token.value == "release":
            self._advance()
            self._accept_keyword("savepoint")
            return ast.ReleaseSavepoint(
                self._expect_identifier("savepoint name")
            )
        if token.value == "checkpoint":
            self._advance()
            return ast.Checkpoint()
        raise self._error(f"unsupported statement {token.value!r}")

    def _parse_rollback(self) -> ast.Statement:
        self._expect_keyword("rollback")
        if self._accept_word("to"):
            self._accept_keyword("savepoint")
            return ast.RollbackTo(self._expect_identifier("savepoint name"))
        self._accept_word("transaction", "work")
        return ast.Rollback()

    def _parse_analyze(self) -> ast.Analyze:
        self._expect_keyword("analyze")
        if self._peek().kind is TokenKind.IDENT:
            return ast.Analyze(self._advance().value)
        return ast.Analyze()

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("create")
        if self._accept_keyword("table"):
            name = self._expect_identifier("table name")
            self._expect_punct("(")
            columns: list[ast.ColumnDef] = []
            while True:
                col = self._expect_identifier("column name")
                columns.append(ast.ColumnDef(col, self._parse_type_name()))
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
            return ast.CreateTable(name, columns)
        unique = self._accept_word("unique") is not None
        if unique or self._peek().value == "index":
            if self._accept_word("index") is None:
                raise self._error("expected INDEX")
            return self._parse_create_index(unique)
        materialized = self._accept_keyword("materialized")
        self._expect_keyword("view")
        name = self._expect_identifier("view name")
        self._expect_keyword("as")
        return ast.CreateView(name, self.parse_select(), materialized=materialized)

    def _parse_create_index(self, unique: bool) -> ast.CreateIndex:
        name = self._expect_identifier("index name")
        self._expect_keyword("on")
        table = self._expect_identifier("table name")
        method: Optional[str] = None
        if self._accept_word("using"):
            method = self._expect_identifier("index method").lower()
        self._expect_punct("(")
        columns: list[str] = []
        while True:
            columns.append(self._expect_identifier("column name"))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return ast.CreateIndex(name, table, columns, unique=unique, method=method)

    def _parse_type_name(self) -> str:
        words = []
        while (
            self._peek().kind in (TokenKind.IDENT, TokenKind.KEYWORD)
            and self._peek().value in _TYPE_WORDS
        ):
            words.append(self._advance().value)
        if not words:
            raise self._error("expected a type name")
        if self._accept_punct("("):
            while not self._accept_punct(")"):
                self._advance()
        type_name = " ".join(words)
        if self._accept_punct("["):
            self._expect_punct("]")
            type_name += "[]"
        return type_name

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_identifier("table name")
        columns: list[str] = []
        wrapped = False
        if self._accept_punct("("):
            if self._peek().matches_keyword("values"):
                wrapped = True  # INSERT INTO t (VALUES ...) from Listing 1
            else:
                while True:
                    columns.append(self._expect_identifier("column name"))
                    if not self._accept_punct(","):
                        break
                self._expect_punct(")")
        self._expect_keyword("values")
        rows: list[list[ast.Expr]] = []
        while True:
            self._expect_punct("(")
            row: list[ast.Expr] = []
            while True:
                row.append(self.parse_expression())
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
            rows.append(row)
            if not self._accept_punct(","):
                break
        if wrapped:
            self._expect_punct(")")
        return ast.Insert(table, columns, rows)

    def _parse_copy(self) -> ast.Copy:
        self._expect_keyword("copy")
        table = self._expect_identifier("table name")
        columns: list[str] = []
        if self._accept_punct("("):
            while True:
                columns.append(self._expect_identifier("column name"))
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
        self._expect_keyword("from")
        path_token = self._advance()
        if path_token.kind is not TokenKind.STRING:
            raise self._error("expected a file path string after FROM")
        statement = ast.Copy(table, columns, path_token.value)
        if self._accept_keyword("with"):
            self._expect_punct("(")
            while True:
                option = self._advance()
                if option.matches_keyword("delimiter"):
                    statement.delimiter = self._expect_string()
                elif option.matches_keyword("null"):
                    statement.null_text = self._expect_string()
                elif option.matches_keyword("format"):
                    self._expect_keyword("csv")
                elif option.matches_keyword("header"):
                    statement.header = self._accept_keyword("true") or not self._accept_keyword("false")
                else:
                    raise self._error(f"unknown COPY option {option.value!r}")
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
        return statement

    def _expect_string(self) -> str:
        token = self._advance()
        if token.kind is not TokenKind.STRING:
            raise self._error("expected a string literal")
        return token.value

    def _parse_train(self) -> ast.Train:
        """``TRAIN name USING ( select ) [WITH ( key = value, ... )]``."""
        if self._accept_word("train") is None:
            raise self._error("expected TRAIN")
        name = self._expect_identifier("model name")
        if self._accept_word("using") is None:
            raise self._error("expected USING after the model name")
        self._expect_punct("(")
        query = self.parse_select()
        self._expect_punct(")")
        options: list[tuple[str, ast.Expr]] = []
        if self._accept_keyword("with"):
            self._expect_punct("(")
            while True:
                key = self._accept_word_or_keyword("option name")
                if self._accept_operator("=") is None:
                    raise self._error("expected = in TRAIN option")
                options.append((key, self.parse_expression()))
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
        return ast.Train(name, query, options)

    def _accept_word_or_keyword(self, what: str) -> str:
        """An identifier-position word, accepting non-reserved keywords
        too (TRAIN options like ``table`` would otherwise need quoting)."""
        token = self._peek()
        if token.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            return self._advance().value
        raise self._error(f"expected {what}")

    def _parse_drop(self) -> ast.Statement:
        self._expect_keyword("drop")
        if self._accept_word("index"):
            if_exists = False
            if self._accept_keyword("if"):
                self._expect_keyword("exists")
                if_exists = True
            return ast.DropIndex(self._expect_identifier("index name"), if_exists)
        if self._accept_word("model"):
            if_exists = False
            if self._accept_keyword("if"):
                self._expect_keyword("exists")
                if_exists = True
            return ast.DropModel(self._expect_identifier("model name"), if_exists)
        if self._accept_keyword("table"):
            kind = "table"
        elif self._accept_keyword("materialized"):
            self._expect_keyword("view")
            kind = "view"
        elif self._accept_keyword("view"):
            kind = "view"
        else:
            raise self._error("expected TABLE, VIEW, INDEX or MODEL after DROP")
        if_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("exists")
            if_exists = True
        return ast.Drop(kind, self._expect_identifier("object name"), if_exists)

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("update")
        table = self._expect_identifier("table name")
        self._expect_keyword("set")
        assignments: list[tuple[str, ast.Expr]] = []
        while True:
            column = self._expect_identifier("column name")
            if self._accept_operator("=") is None:
                raise self._error("expected = in SET assignment")
            assignments.append((column, self.parse_expression()))
            if not self._accept_punct(","):
                break
        where = self.parse_expression() if self._accept_keyword("where") else None
        return ast.Update(table, assignments, where)

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_identifier("table name")
        where = self.parse_expression() if self._accept_keyword("where") else None
        return ast.Delete(table, where)

    # -- SELECT -------------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        ctes: list[ast.Cte] = []
        if self._accept_keyword("with"):
            self._accept_keyword("recursive")
            while True:
                name = self._expect_identifier("CTE name")
                self._expect_keyword("as")
                materialized: Optional[bool] = None
                if self._accept_keyword("not"):
                    self._expect_keyword("materialized")
                    materialized = False
                elif self._accept_keyword("materialized"):
                    materialized = True
                self._expect_punct("(")
                query = self.parse_select()
                self._expect_punct(")")
                ctes.append(ast.Cte(name, query, materialized))
                if not self._accept_punct(","):
                    break
        select = self._parse_select_core()
        select.ctes = ctes
        return select

    def _parse_select_core(self) -> ast.Select:
        self._expect_keyword("select")
        select = ast.Select()
        select.distinct = bool(self._accept_keyword("distinct"))
        while True:
            select.items.append(self._parse_select_item())
            if not self._accept_punct(","):
                break
        if self._accept_keyword("from"):
            while True:
                select.sources.append(self._parse_table_source())
                if not self._accept_punct(","):
                    break
        if self._accept_keyword("where"):
            select.where = self.parse_expression()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            while True:
                select.group_by.append(self.parse_expression())
                if not self._accept_punct(","):
                    break
        if self._accept_keyword("having"):
            select.having = self.parse_expression()
        if self._accept_keyword("union"):
            self._expect_keyword("all")
            select.union_all_with = self.parse_select()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            while True:
                expr = self.parse_expression()
                ascending = True
                if self._accept_keyword("desc"):
                    ascending = False
                else:
                    self._accept_keyword("asc")
                nulls_first = self._parse_nulls_placement()
                select.order_by.append(
                    ast.OrderItem(expr, ascending, nulls_first)
                )
                if not self._accept_punct(","):
                    break
        if self._accept_keyword("limit"):
            select.limit = self._expect_int()
        if self._accept_keyword("offset"):
            select.offset = self._expect_int()
        return select

    def _parse_nulls_placement(self) -> Optional[bool]:
        """Parse an optional ``NULLS FIRST`` / ``NULLS LAST`` suffix."""
        if not self._accept_word("nulls"):
            return None
        word = self._accept_word("first", "last")
        if word is None:
            raise self._error("expected FIRST or LAST after NULLS")
        return word == "first"

    def _expect_int(self) -> int:
        token = self._advance()
        if token.kind is not TokenKind.NUMBER:
            raise self._error("expected an integer")
        return int(float(token.value))

    def _parse_select_item(self) -> ast.SelectItem:
        if self._accept_operator("*"):
            return ast.SelectItem(ast.Star())
        # alias.*  (IDENT . *)
        if (
            self._peek().kind is TokenKind.IDENT
            and self._peek(1).kind is TokenKind.PUNCT
            and self._peek(1).value == "."
            and self._peek(2).kind is TokenKind.OPERATOR
            and self._peek(2).value == "*"
        ):
            table = self._advance().value
            self._advance()
            self._advance()
            return ast.SelectItem(ast.Star(table=table))
        expr = self.parse_expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier("alias")
        elif self._peek().kind is TokenKind.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _parse_table_source(self) -> ast.TableSource:
        source = self._parse_table_primary()
        while True:
            kind = None
            if self._accept_keyword("cross"):
                self._expect_keyword("join")
                kind = "cross"
            elif self._accept_keyword("inner"):
                self._expect_keyword("join")
                kind = "inner"
            elif self._accept_keyword("left"):
                self._accept_keyword("outer")
                self._expect_keyword("join")
                kind = "left"
            elif self._accept_keyword("right"):
                self._accept_keyword("outer")
                self._expect_keyword("join")
                kind = "right"
            elif self._accept_keyword("full"):
                self._accept_keyword("outer")
                self._expect_keyword("join")
                kind = "full"
            elif self._accept_keyword("join"):
                kind = "inner"
            if kind is None:
                return source
            right = self._parse_table_primary()
            condition = None
            if kind != "cross":
                self._expect_keyword("on")
                condition = self.parse_expression()
            source = ast.JoinSource(source, right, kind, condition)

    def _parse_table_primary(self) -> ast.TableSource:
        if self._accept_punct("("):
            query = self.parse_select()
            self._expect_punct(")")
            self._accept_keyword("as")
            alias = self._expect_identifier("subquery alias")
            return ast.SubquerySource(query, alias)
        name = self._expect_identifier("table name")
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier("alias")
        elif self._peek().kind is TokenKind.IDENT:
            alias = self._advance().value
        return ast.NamedTable(name, alias)

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self._accept_keyword("or"):
            expr = ast.BinaryOp("or", expr, self._parse_and())
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self._accept_keyword("and"):
            expr = ast.BinaryOp("and", expr, self._parse_not())
        return expr

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("not"):
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        expr = self._parse_additive()
        while True:
            op = self._accept_operator(*_COMPARISON_OPS)
            if op:
                expr = ast.BinaryOp(op, expr, self._parse_additive())
                continue
            if self._accept_keyword("is"):
                negated = bool(self._accept_keyword("not"))
                self._expect_keyword("null")
                expr = ast.IsNull(expr, negated)
                continue
            if self._accept_keyword("like"):
                expr = ast.BinaryOp("like", expr, self._parse_additive())
                continue
            negated = False
            if self._peek().matches_keyword("not"):
                lookahead = self._peek(1)
                if lookahead.matches_keyword("in") or lookahead.matches_keyword("between"):
                    self._advance()
                    negated = True
                elif lookahead.matches_keyword("like"):
                    self._advance()
                    self._advance()
                    like = ast.BinaryOp("like", expr, self._parse_additive())
                    expr = ast.UnaryOp("not", like)
                    continue
                else:
                    break
            if self._accept_keyword("in"):
                self._expect_punct("(")
                items: list[ast.Expr] = []
                while True:
                    items.append(self.parse_expression())
                    if not self._accept_punct(","):
                        break
                self._expect_punct(")")
                expr = ast.InList(expr, tuple(items), negated)
                continue
            if self._accept_keyword("between"):
                low = self._parse_additive()
                self._expect_keyword("and")
                high = self._parse_additive()
                expr = ast.Between(expr, low, high, negated)
                continue
            break
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while True:
            op = self._accept_operator("+", "-", "||")
            if not op:
                return expr
            expr = ast.BinaryOp(op, expr, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if not op:
                return expr
            expr = ast.BinaryOp(op, expr, self._parse_unary())

    def _parse_unary(self) -> ast.Expr:
        if self._accept_operator("-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self._accept_operator("+"):
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._accept_operator("::"):
            expr = ast.Cast(expr, self._parse_type_name())
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.matches_keyword("true"):
            self._advance()
            return ast.Literal(True)
        if token.matches_keyword("false"):
            self._advance()
            return ast.Literal(False)
        if token.matches_keyword("null"):
            self._advance()
            return ast.Literal(None)
        if token.kind is TokenKind.PARAM:
            self._advance()
            return ast.Parameter(int(token.value))
        if token.matches_keyword("case"):
            return self._parse_case()
        if token.matches_keyword("cast"):
            self._advance()
            self._expect_punct("(")
            operand = self.parse_expression()
            self._expect_keyword("as")
            type_name = self._parse_type_name()
            self._expect_punct(")")
            return ast.Cast(operand, type_name)
        if self._accept_punct("("):
            if self._peek().kind is TokenKind.KEYWORD and self._peek().value in ("select", "with"):
                query = self.parse_select()
                self._expect_punct(")")
                return ast.ScalarSubquery(query)
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if token.kind is TokenKind.IDENT:
            # function call?
            if (
                self._peek(1).kind is TokenKind.PUNCT
                and self._peek(1).value == "("
            ):
                name = self._advance().value
                self._advance()  # (
                if self._accept_operator("*"):
                    self._expect_punct(")")
                    return self._maybe_window(
                        self._maybe_filter(ast.FuncCall(name, star=True))
                    )
                if self._accept_punct(")"):
                    return self._maybe_window(
                        self._maybe_filter(ast.FuncCall(name))
                    )
                distinct = bool(self._accept_keyword("distinct"))
                args: list[ast.Expr] = []
                while True:
                    args.append(self.parse_expression())
                    if not self._accept_punct(","):
                        break
                self._expect_punct(")")
                return self._maybe_window(
                    self._maybe_filter(
                        ast.FuncCall(name, tuple(args), distinct=distinct)
                    )
                )
            name = self._advance().value
            if self._accept_punct("."):
                column = self._expect_identifier("column name")
                return ast.ColumnRef(column, table=name)
            return ast.ColumnRef(name)
        raise self._error("expected an expression")

    def _maybe_filter(self, call: ast.FuncCall) -> ast.FuncCall:
        """Attach an aggregate ``FILTER (WHERE ...)`` clause if present.

        ``filter`` is not reserved, so require the following ``(`` before
        consuming; ``SELECT count(*) filter`` keeps working as an alias.
        """
        token = self._peek()
        if not (
            token.kind in (TokenKind.KEYWORD, TokenKind.IDENT)
            and token.value == "filter"
            and self._peek(1).kind is TokenKind.PUNCT
            and self._peek(1).value == "("
        ):
            return call
        self._advance()  # filter
        self._expect_punct("(")
        self._expect_keyword("where")
        condition = self.parse_expression()
        self._expect_punct(")")
        return _dc_replace(call, filter_where=condition)

    def _maybe_window(self, call: ast.FuncCall) -> ast.Expr:
        """Attach an OVER clause, turning the call into a window function."""
        if not self._accept_keyword("over"):
            return call
        if call.args or call.star or call.distinct:
            raise self._error(
                "only argument-less window functions are supported"
            )
        self._expect_punct("(")
        partition: list[ast.Expr] = []
        order: list[tuple[ast.Expr, bool]] = []
        if self._accept_keyword("partition"):
            self._expect_keyword("by")
            while True:
                partition.append(self.parse_expression())
                if not self._accept_punct(","):
                    break
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            while True:
                expr = self.parse_expression()
                ascending = True
                if self._accept_keyword("desc"):
                    ascending = False
                else:
                    self._accept_keyword("asc")
                order.append((expr, ascending))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        return ast.WindowCall(call.name, tuple(partition), tuple(order))

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("case")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("when"):
            condition = self.parse_expression()
            self._expect_keyword("then")
            whens.append((condition, self.parse_expression()))
        else_ = None
        if self._accept_keyword("else"):
            else_ = self.parse_expression()
        self._expect_keyword("end")
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        return ast.Case(tuple(whens), else_)


def parse_statement(sql: str) -> ast.Statement:
    """Parse a single SQL statement."""
    parser = _Parser(sql)
    statement = parser.parse_statement()
    while parser._accept_punct(";"):
        pass
    if parser._peek().kind is not TokenKind.EOF:
        raise parser._error("unexpected trailing input")
    return statement


def parse_script(sql: str) -> list[ast.Statement]:
    """Parse a ``;``-separated sequence of statements."""
    return _Parser(sql).parse_script()


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone scalar expression (testing helper)."""
    parser = _Parser(sql)
    expr = parser.parse_expression()
    if parser._peek().kind is not TokenKind.EOF:
        raise parser._error("unexpected trailing input")
    return expr
