"""Per-operator runtime statistics (the EXPLAIN ANALYZE substrate).

An :class:`ExecStats` instance rides along in the execution context and
accumulates, per plan node, how often the operator ran, how many rows it
produced and how much wall time it spent.  Serial execution records one
sample per operator; morsel-driven parallel execution records one sample
per morsel, so ``calls`` doubles as the morsel count and ``seconds`` is
the *summed* busy time across workers (it can exceed the query's wall
time, exactly like the per-worker totals of PostgreSQL's parallel
EXPLAIN ANALYZE).

The recorder is thread-safe: morsel workers share one instance.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.sqldb.plan import PlanNode

__all__ = ["ExecStats", "OpStats", "merge_operator_counters"]


@dataclass
class OpStats:
    """Accumulated counters for one plan node."""

    label: str
    calls: int = 0
    rows: int = 0
    seconds: float = 0.0
    #: morsels executed in parallel (0 for serial-only operators)
    parallel_morsels: int = 0
    #: largest memory reservation this operator held at once
    peak_bytes: int = 0
    #: bytes this operator wrote to spill files
    spilled_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "calls": self.calls,
            "rows": self.rows,
            "seconds": self.seconds,
            "parallel_morsels": self.parallel_morsels,
            "peak_bytes": self.peak_bytes,
            "spilled_bytes": self.spilled_bytes,
        }


@dataclass
class ExecStats:
    """Thread-safe per-operator counters for one (or many) executions."""

    nodes: dict[int, OpStats] = field(default_factory=dict)
    #: wall-clock seconds of the whole execution (set by the caller)
    wall_seconds: float = 0.0
    workers: int = 1
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, plan: PlanNode, rows: int, seconds: float) -> None:
        """Add one operator execution sample (one call or one morsel)."""
        key = id(plan)
        with self._lock:
            entry = self.nodes.get(key)
            if entry is None:
                entry = OpStats(plan.label())
                self.nodes[key] = entry
            entry.calls += 1
            entry.rows += rows
            entry.seconds += seconds

    def record_memory(
        self, plan: PlanNode, peak_bytes: int = 0, spilled_bytes: int = 0
    ) -> None:
        """Attach memory accounting to *plan*'s entry (peak max, spill sum)."""
        key = id(plan)
        with self._lock:
            entry = self.nodes.get(key)
            if entry is None:
                entry = OpStats(plan.label())
                self.nodes[key] = entry
            if peak_bytes > entry.peak_bytes:
                entry.peak_bytes = peak_bytes
            entry.spilled_bytes += spilled_bytes

    def mark_parallel(self, plan: PlanNode, morsels: int) -> None:
        """Tag *plan* (and its stats entry) as morsel-parallel executed."""
        key = id(plan)
        with self._lock:
            entry = self.nodes.get(key)
            if entry is None:
                entry = OpStats(plan.label())
                self.nodes[key] = entry
            entry.parallel_morsels += morsels

    # -- reporting -----------------------------------------------------------

    def annotate(
        self,
        plan: PlanNode,
        indent: int = 0,
        estimates: Optional[dict[int, float]] = None,
    ) -> str:
        """The plan tree as text with per-node actual counters.

        With *estimates* (a ``{id(node): rows}`` map from the optimizer's
        cardinality model) each line also carries the planner's estimated
        row count, PostgreSQL-style, ahead of the actual counters.
        """
        entry = self.nodes.get(id(plan))
        line = "  " * indent + plan.label()
        if estimates is not None and id(plan) in estimates:
            line += f"  (estimated rows={estimates[id(plan)]:.0f})"
        if entry is not None:
            line += (
                f"  (actual rows={entry.rows} calls={entry.calls} "
                f"time={entry.seconds * 1000.0:.3f}ms"
            )
            if entry.parallel_morsels:
                line += f" morsels={entry.parallel_morsels}"
            if entry.peak_bytes:
                line += f" peak_bytes={entry.peak_bytes}"
            if entry.spilled_bytes:
                line += f" spilled_bytes={entry.spilled_bytes}"
            line += ")"
        else:
            line += "  (never executed)"
        lines = [line]
        for child in plan.children():
            lines.append(self.annotate(child, indent + 1, estimates))
        return "\n".join(lines)

    def by_operator(self) -> dict[str, dict]:
        """Counters aggregated by operator label (for backend counters)."""
        out: dict[str, dict] = {}
        with self._lock:
            for entry in self.nodes.values():
                agg = out.setdefault(
                    entry.label,
                    {
                        "calls": 0,
                        "rows": 0,
                        "seconds": 0.0,
                        "parallel_morsels": 0,
                        "peak_bytes": 0,
                        "spilled_bytes": 0,
                    },
                )
                agg["calls"] += entry.calls
                agg["rows"] += entry.rows
                agg["seconds"] += entry.seconds
                agg["parallel_morsels"] += entry.parallel_morsels
                agg["peak_bytes"] = max(agg["peak_bytes"], entry.peak_bytes)
                agg["spilled_bytes"] += entry.spilled_bytes
        return out


def merge_operator_counters(
    total: dict[str, dict], new: dict[str, dict]
) -> dict[str, dict]:
    """Fold one execution's ``by_operator`` summary into running totals."""
    for label, counters in new.items():
        agg = total.setdefault(
            label,
            {
                "calls": 0,
                "rows": 0,
                "seconds": 0.0,
                "parallel_morsels": 0,
                "peak_bytes": 0,
                "spilled_bytes": 0,
            },
        )
        for key, value in counters.items():
            if key == "peak_bytes":
                agg[key] = max(agg.get(key, 0), value)
            else:
                agg[key] = agg.get(key, 0) + value
    return total
