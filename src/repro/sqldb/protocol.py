"""Wire protocol shared by the socket server and the client driver.

Framing is deliberately simple — the psycopg2-era shape the paper
measures through, not a binary columnar format:

* every message is one **frame**: a 4-byte big-endian unsigned length
  followed by that many bytes of UTF-8 JSON encoding a single object;
* the object always carries a ``"type"`` key; everything else is
  per-message payload;
* results, :class:`~repro.sqldb.stats.ExecStats` summaries and errors
  have fixed wire shapes (:func:`result_to_wire`, :func:`error_to_wire`)
  so both ends stay in lockstep with the engine's own types.

The length prefix bounds the damage a confused or malicious peer can do:
a frame longer than ``max_bytes`` raises
:class:`~repro.errors.ProtocolViolation` *before* any allocation, and a
disconnect in the middle of a frame is distinguished from a clean EOF at
a frame boundary (``None``) so connection teardown is never mistaken for
a protocol error and vice versa.

Message types (client → server)::

    hello        {version, auth?, options?}     must be first
    cancel       {key}                          out-of-band, first + only
    query        {sql, params?}                 run a ;-script
    executemany  {sql, params_seq}              batched DML
    begin / commit / rollback                   transaction control
    reset        {}                             drop all relations (opt-in)
    stats        {}                             plan-cache/operator counters
    explain_analyze {sql, params?}              annotated plan text
    promote      {}                             replica → primary flip
    replica_status {}                           replication role/lag report
    close        {}                             orderly goodbye

Server → client: ``hello_ok``, ``results``, ``ok``, ``stats``, ``text``,
``promoted``, ``status``, ``error``, ``bye``.

Replication subscription (after ``hello``, the connection switches into
a server-push stream; see :mod:`repro.sqldb.replication`)::

    replicate     {start_after, name}           subscribe from a commit id
    -- server then pushes, each frame acknowledged stop-and-wait:
    snapshot      {state, last_txn, primary_commit_id}   bootstrap payload
    wal_batch     {seq, commits: [{id, records}], primary_commit_id}
    wal_heartbeat {seq, primary_commit_id}      idle keepalive
    replicate_ack {seq, applied}                replica → server, per frame
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Optional

from repro import errors as _errors
from repro.errors import ProtocolViolation, SQLError
from repro.sqldb.engine import Result

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "result_to_wire",
    "result_from_wire",
    "error_to_wire",
    "exception_from_wire",
]

#: bumped on incompatible wire changes; the handshake rejects mismatches
PROTOCOL_VERSION = 1

#: default ceiling on one frame's JSON payload (server and client side)
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


def _json_default(value: Any) -> Any:
    """Last-resort JSON encoder: numpy scalars become Python scalars
    (``.item()``), anything else its ``str``.  Rows out of the engine are
    plain Python values, but pipeline parameters occasionally carry
    numpy types."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except Exception:  # pragma: no cover - exotic .item() failures
            pass
    return str(value)


def encode_frame(message: dict) -> bytes:
    """One wire frame: length prefix + UTF-8 JSON payload."""
    payload = json.dumps(
        message, default=_json_default, separators=(",", ":")
    ).encode("utf-8")
    return _HEADER.pack(len(payload)) + payload


def send_frame(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly *n* bytes; ``None`` on EOF before the first byte;
    :class:`ProtocolViolation` on EOF mid-way (a torn frame)."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if not chunks:
                return None
            raise ProtocolViolation(
                f"connection closed mid-frame ({n - remaining} of {n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""


def recv_frame(
    sock: socket.socket, max_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`ProtocolViolation` for an oversized length prefix, a
    disconnect mid-frame, undecodable JSON, or a payload that is not a
    JSON object with a string ``"type"``.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolViolation(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ProtocolViolation("connection closed between header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolViolation(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict) or not isinstance(
        message.get("type"), str
    ):
        raise ProtocolViolation("frame payload must be an object with a 'type'")
    return message


# -- engine type <-> wire shapes ----------------------------------------------


def result_to_wire(result: Result) -> dict:
    return {
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "rowcount": result.rowcount,
        "statement": result.statement,
    }


def result_from_wire(data: dict) -> Result:
    return Result(
        columns=list(data.get("columns", ())),
        rows=[tuple(row) for row in data.get("rows", ())],
        rowcount=int(data.get("rowcount", 0)),
        statement=data.get("statement", ""),
    )


#: engine error classes addressable by name on the wire (subset of
#: repro.errors: everything that is an SQLError)
_ERROR_CLASSES: dict[str, type] = {
    name: cls
    for name, cls in vars(_errors).items()
    if isinstance(cls, type) and issubclass(cls, SQLError)
}


def error_to_wire(exc: BaseException) -> dict:
    """An error frame carrying class name, SQLSTATE and message.

    Non-engine errors (a bug in a worker) are reported as a generic
    ``SQLError`` with SQLSTATE XX000 so the client still gets a typed
    failure instead of a dropped connection."""
    if isinstance(exc, SQLError):
        name = type(exc).__name__
        sqlstate = exc.sqlstate
        message = str(exc) or name
    else:
        name = "SQLError"
        sqlstate = "XX000"
        message = f"internal server error: {type(exc).__name__}: {exc}"
    return {
        "type": "error",
        "error_class": name,
        "sqlstate": sqlstate,
        "message": message,
    }


def exception_from_wire(data: dict) -> SQLError:
    """Rebuild a server error frame as the matching engine exception.

    The class is resolved by name against :mod:`repro.errors` (falling
    back to :class:`SQLError`), and the SQLSTATE travels verbatim — so
    client-side ``except SerializationFailure`` and retry-loop SQLSTATE
    checks behave exactly as they do in-process."""
    cls = _ERROR_CLASSES.get(data.get("error_class", ""), SQLError)
    message = data.get("message", "unknown server error")
    sqlstate = data.get("sqlstate")
    exc = cls(message)
    if sqlstate:
        exc.sqlstate = sqlstate
    return exc
