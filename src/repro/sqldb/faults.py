"""Deterministic fault injection for the durability layer.

The WAL/checkpoint/commit code paths are threaded with *named
crashpoints* (:data:`CRASHPOINTS`).  A :class:`FaultInjector` armed at a
crashpoint raises :class:`SimulatedCrash` the n-th time execution reaches
it; the test harness then abandons the :class:`~repro.sqldb.engine.Database`
object — as if the process had died — and reopens the same WAL path to
exercise recovery.  Two crash models are supported:

* **process crash** — the WAL file is left exactly as written (buffered
  writes are flushed to the file on every append, modelling data that
  reached the kernel page cache);
* **power loss** — the harness truncates the WAL to
  :attr:`~repro.sqldb.wal.WriteAheadLog.synced_size`, modelling the loss
  of everything after the last ``fsync``.

``*.torn`` crashpoints additionally write a *prefix* of the pending
record before crashing, producing a genuinely torn tail that recovery
must detect (checksum/length mismatch) and truncate.

The default injector (:data:`NO_FAULTS`) is inert and shared; the fast
path pays one attribute load and a falsy check per crashpoint.
"""

from __future__ import annotations

import random
import threading

from repro.errors import ReproError

__all__ = [
    "CRASHPOINTS",
    "FaultInjector",
    "NetworkFaultInjector",
    "NO_FAULTS",
    "SimulatedCrash",
]


class SimulatedCrash(ReproError):
    """Raised at an armed crashpoint; models sudden process death.

    Deliberately *not* an :class:`~repro.errors.SQLError`: the engine
    never catches it, so it unwinds through every layer exactly like a
    real crash would (the in-memory state is torn; the database object
    must be abandoned and the WAL path reopened)."""

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


#: every named crashpoint threaded through the durability code, in rough
#: execution order.  Tests sweep this registry, so adding a crashpoint
#: here automatically adds it to the crash-at-every-point property test.
CRASHPOINTS: tuple[str, ...] = (
    # WAL record append (fired for every record, including commit records)
    "wal.append.before",
    "wal.append.torn",
    "wal.append.after",
    # fsync of the WAL file
    "wal.fsync.before",
    "wal.fsync.after",
    # transaction commit: before any record is written / after the commit
    # record is durably on disk (but before the engine acknowledges)
    "wal.commit.begin",
    "wal.commit.end",
    # between the durable commit record and the in-memory install of the
    # committed state (the MVCC catalog swap / autocommit acknowledgement)
    "commit.install",
    # checkpoint: snapshot write, atomic rename, WAL reset
    "checkpoint.begin",
    "checkpoint.snapshot.torn",
    "checkpoint.snapshot.written",
    "checkpoint.before_rename",
    "checkpoint.after_rename",
    "checkpoint.end",
)

_CRASHPOINT_SET = frozenset(CRASHPOINTS)


class FaultInjector:
    """Arms crashpoints and raises :class:`SimulatedCrash` when reached.

    ``arm(point, hits=n)`` makes the *n*-th :meth:`check` of *point*
    raise; earlier hits pass through (so a test can crash on the commit
    record of the third transaction, say).  The injector records every
    crashpoint it passes in :attr:`trace`, which tests use to assert a
    workload actually exercised the point they armed.
    """

    def __init__(self) -> None:
        self._armed: dict[str, int] = {}
        #: crashpoints reached, in order (armed or not)
        self.trace: list[str] = []
        #: the crashpoint that fired, once one has
        self.fired: str | None = None

    def arm(self, point: str, hits: int = 1) -> "FaultInjector":
        if point not in _CRASHPOINT_SET:
            raise ValueError(
                f"unknown crashpoint {point!r}; see faults.CRASHPOINTS"
            )
        if hits < 1:
            raise ValueError("hits must be >= 1")
        self._armed[point] = hits
        return self

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def clear(self) -> None:
        self._armed.clear()

    def pending(self, point: str) -> bool:
        """True when the next :meth:`check` of *point* would crash (used
        by torn-write sites to do their partial write first)."""
        return self._armed.get(point) == 1

    def check(self, point: str) -> None:
        """Record passage through *point*; crash if armed and due."""
        self.trace.append(point)
        hits = self._armed.get(point)
        if hits is None:
            return
        if hits > 1:
            self._armed[point] = hits - 1
            return
        del self._armed[point]
        self.fired = point
        raise SimulatedCrash(point)


class _NoFaults(FaultInjector):
    """Inert injector: no tracing, never crashes (the default)."""

    def arm(self, point: str, hits: int = 1) -> "FaultInjector":
        raise ValueError("NO_FAULTS is shared; build a FaultInjector()")

    def pending(self, point: str) -> bool:
        return False

    def check(self, point: str) -> None:
        return None


#: shared inert injector used when a Database is built without faults
NO_FAULTS = _NoFaults()


class NetworkFaultInjector:
    """Seeded per-frame fault decisions for the network layer.

    The wire-level sibling of :class:`FaultInjector`: where crashpoints
    model a dying *process*, this models a misbehaving *network* between
    two healthy processes.  A :class:`~repro.sqldb.netfaults.FaultProxy`
    consults :meth:`decide` once per forwarded protocol frame and acts
    it out:

    * ``drop``       — the frame silently disappears;
    * ``duplicate``  — the frame is delivered twice back to back;
    * ``tear``       — a *prefix* of the frame is delivered, then the
      connection dies (the receiver sees a mid-frame disconnect — the
      torn-frame case the protocol layer must flag, never misparse);
    * ``pass``       — delivered intact, optionally after a delay.

    Probabilities are independent per frame and drawn from one seeded
    RNG, so a chaos round is reproducible up to thread interleaving.  A
    **partition** (:meth:`partition`/:meth:`heal`) overrides everything:
    every frame in both directions blackholes until healed — connections
    appear hung, exactly like a dropped link, and both ends must recover
    by timeout + reconnect."""

    ACTIONS = ("pass", "drop", "duplicate", "tear")

    def __init__(
        self,
        seed: int = 0,
        *,
        drop: float = 0.0,
        duplicate: float = 0.0,
        tear: float = 0.0,
        delay: float = 0.0,
        delay_range_s: tuple[float, float] = (0.001, 0.02),
    ) -> None:
        for name, p in (
            ("drop", drop), ("duplicate", duplicate),
            ("tear", tear), ("delay", delay),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1]")
        self._rng = random.Random(seed)
        self.drop = drop
        self.duplicate = duplicate
        self.tear = tear
        self.delay = delay
        self.delay_range_s = delay_range_s
        self._mutex = threading.Lock()
        self._partitioned = False
        self.stats = {
            "frames": 0,
            "dropped": 0,
            "duplicated": 0,
            "torn": 0,
            "delayed": 0,
            "blackholed": 0,
        }

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    def partition(self) -> None:
        """Blackhole every frame in both directions until :meth:`heal`."""
        with self._mutex:
            self._partitioned = True

    def heal(self) -> None:
        with self._mutex:
            self._partitioned = False

    def decide(self, direction: str) -> tuple[str, float]:
        """``(action, delay_s)`` for the next frame in *direction*
        (``"c2s"`` or ``"s2c"``; recorded for stats only — probabilities
        apply symmetrically)."""
        with self._mutex:
            self.stats["frames"] += 1
            if self._partitioned:
                self.stats["blackholed"] += 1
                return ("drop", 0.0)
            roll = self._rng.random()
            if roll < self.drop:
                self.stats["dropped"] += 1
                return ("drop", 0.0)
            roll -= self.drop
            if roll < self.duplicate:
                self.stats["duplicated"] += 1
                action = "duplicate"
            else:
                roll -= self.duplicate
                if roll < self.tear:
                    self.stats["torn"] += 1
                    return ("tear", 0.0)
                action = "pass"
            delay_s = 0.0
            if self.delay and self._rng.random() < self.delay:
                lo, hi = self.delay_range_s
                delay_s = lo + (hi - lo) * self._rng.random()
                self.stats["delayed"] += 1
            return (action, delay_s)

    def tear_point(self, frame_len: int) -> int:
        """How many bytes of a torn frame to deliver (at least the first
        byte of the header, never the whole frame)."""
        with self._mutex:
            return self._rng.randrange(1, max(2, frame_len))
