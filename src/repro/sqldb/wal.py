"""Write-ahead log and snapshot checkpoints for the sqldb engine.

Durability is opt-in (``Database(durable=True, wal_path=...)``) and uses
logical redo logging: every committed transaction's DDL/DML statements
are appended to an append-only log and replayed on the next open.  The
in-memory engine never pages, so there is no undo to log — a crash simply
discards uncommitted memory, and recovery rebuilds committed state.

File format (``wal_path``)
--------------------------
A 6-byte magic header (``RWAL1\\n``) followed by length-prefixed,
CRC32-checksummed JSON records::

    <u32 payload-length> <u32 crc32(payload)> <payload bytes>

Records are appended contiguously per commit (group commit: a
transaction's ``begin``/``stmt``.../``commit`` records hit the file in
one run, followed by a single ``fsync``), so a torn tail can only clip
the *last* transaction, which then lacks its ``commit`` record and is
discarded.  :func:`read_wal` stops at the first short or checksum-failing
record and reports the byte offset of the intact prefix; recovery
truncates the file there.

Record types
------------
``{"t": "begin",  "txn": n}``                     transaction start
``{"t": "stmt",   "txn": n, "sql": s, "i": k, "p": [...]}``
                                                  one redo statement —
                                                  statement *k* of script
                                                  *s* with bound params
``{"t": "many",   "txn": n, "sql": s, "rows": [[...], ...]}``
                                                  an ``executemany`` batch
``{"t": "commit", "txn": n}``                     transaction commit
``{"t": "auto",   "txn": n, "sql": s, "i": k, "p": [...]}``
                                                  an autocommitted
                                                  statement (``begin`` +
                                                  ``stmt`` + ``commit``
                                                  compressed into one)

Only *successful* statements are logged (redo-only): statements rolled
back by statement-level atomicity or ``ROLLBACK TO SAVEPOINT`` never
reach the file, because transaction records are buffered in memory and
flushed at commit after savepoint truncation.

Checkpoints (``wal_path + ".ckpt"``)
------------------------------------
A checkpoint pickles the full catalog (tables, views, statistics,
indexes, trained models) plus
the highest transaction id it covers into a sidecar file — written to a
temp path, fsynced, then atomically renamed — and resets the WAL to an
empty header.  Recovery loads the checkpoint (if present and intact) and
replays only WAL transactions with a higher id, so a crash between the
rename and the WAL reset cannot double-apply.

Crashpoints (see :mod:`repro.sqldb.faults`) are threaded through every
append/fsync/checkpoint step.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import zlib
from typing import Any, Optional

from repro.errors import DurabilityError
from repro.sqldb.faults import NO_FAULTS, FaultInjector

__all__ = [
    "WAL_SYNC_POLICIES",
    "WriteAheadLog",
    "read_checkpoint",
    "read_wal",
    "write_checkpoint",
]

_WAL_MAGIC = b"RWAL1\n"
_CKPT_MAGIC = b"RCKP1\n"
_HEADER = struct.Struct("<II")  # payload length, crc32(payload)


def _jsonable(value: Any) -> Any:
    """Coerce a redo-record value to a JSON-serialisable Python value.

    Numpy scalars are unwrapped via ``.item()``; anything else
    unserialisable raises :class:`DurabilityError` instead of silently
    corrupting the log."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    item = getattr(value, "item", None)
    if callable(item):
        return _jsonable(item())
    raise DurabilityError(
        f"cannot serialise {type(value).__name__!r} value into a WAL record"
    )


def encode_record(record: dict) -> bytes:
    payload = json.dumps(
        _jsonable(record), separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


#: fsync policies for :meth:`WriteAheadLog.commit_sync` — what an
#: acknowledged commit guarantees (see ``Database(wal_sync=...)``):
#:
#: ``"commit"``  fsync before every acknowledgement: an acked commit
#:               survives power loss (the default, PostgreSQL's
#:               ``synchronous_commit = on``).
#: ``"group"``   fsync once every ``group_every`` commits: an acked
#:               commit survives a *process* crash (the bytes reached
#:               the file), but power loss may roll back up to the last
#:               ``group_every - 1`` acked commits.  Commit order is
#:               still never reordered — a surviving prefix is always a
#:               valid prefix.
#: ``"off"``     never fsync on commit (only at checkpoints/close): an
#:               acked commit survives a process crash, while power
#:               loss may lose anything since the last checkpoint.
WAL_SYNC_POLICIES: tuple[str, ...] = ("commit", "group", "off")


class WriteAheadLog:
    """Append-only redo log over one file; single writer (the engine
    serialises writers on its write lock).

    ``sync_policy`` selects what :meth:`commit_sync` — the call every
    commit path makes before acknowledging — actually does; see
    :data:`WAL_SYNC_POLICIES`.  :meth:`sync` itself always fsyncs.
    """

    def __init__(
        self,
        path: str,
        faults: FaultInjector = NO_FAULTS,
        sync_policy: str = "commit",
        group_every: int = 8,
    ) -> None:
        if sync_policy not in WAL_SYNC_POLICIES:
            raise DurabilityError(
                f"unknown wal_sync policy {sync_policy!r}; "
                f"expected one of {WAL_SYNC_POLICIES}"
            )
        if group_every < 1:
            raise DurabilityError("wal_sync group size must be >= 1")
        self.path = path
        self.sync_policy = sync_policy
        self.group_every = group_every
        self._commits_since_sync = 0
        #: fsyncs issued so far (tests/benchmarks compare policies by it)
        self.sync_count = 0
        self.faults = faults
        size = os.path.getsize(path) if os.path.exists(path) else 0
        self._file = open(path, "ab")
        self._size = size
        if size == 0:
            self._file.write(_WAL_MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())
            self._size = len(_WAL_MAGIC)
        #: file size at the last fsync — the "power loss" crash model
        #: truncates here (everything after it may not have hit the disk)
        self.synced_size = self._size

    def append(self, record: dict) -> None:
        """Append one record; flushed to the file, not yet fsynced."""
        data = encode_record(record)
        faults = self.faults
        faults.check("wal.append.before")
        if faults.pending("wal.append.torn"):
            # model a crash mid-write: a prefix of the record reaches the
            # file (flushed so it is visible to recovery), then death
            self._file.write(data[: max(1, len(data) // 2)])
            self._file.flush()
            self._size += max(1, len(data) // 2)
            faults.check("wal.append.torn")
        self._file.write(data)
        self._file.flush()
        self._size += len(data)
        faults.check("wal.append.after")

    def sync(self) -> None:
        """fsync the log; a commit is durable once this returns."""
        self.faults.check("wal.fsync.before")
        os.fsync(self._file.fileno())
        self.synced_size = self._size
        self._commits_since_sync = 0
        self.sync_count += 1
        self.faults.check("wal.fsync.after")

    def commit_sync(self) -> None:
        """The fsync a committing transaction performs before the engine
        acknowledges it, honouring :attr:`sync_policy` (records are
        already flushed to the file by :meth:`append` under every
        policy)."""
        if self.sync_policy == "commit":
            self.sync()
            return
        if self.sync_policy == "group":
            self._commits_since_sync += 1
            if self._commits_since_sync >= self.group_every:
                self.sync()

    def reset(self) -> None:
        """Truncate to an empty header (after a checkpoint)."""
        self._file.close()
        self._file = open(self.path, "wb")
        self._file.write(_WAL_MAGIC)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._size = len(_WAL_MAGIC)
        self.synced_size = self._size
        self._commits_since_sync = 0

    def close(self) -> None:
        if not self._file.closed:
            if self._size > self.synced_size:
                # clean close under "group"/"off": don't leave acked
                # commits exposed to power loss when we had the chance
                try:
                    os.fsync(self._file.fileno())
                    self.synced_size = self._size
                except OSError:  # pragma: no cover - fs teardown races
                    pass
            self._file.close()


def read_wal(path: str) -> tuple[list[dict], Optional[int]]:
    """Decode the intact record prefix of the WAL at *path*.

    Returns ``(records, valid_size)`` where ``valid_size`` is the byte
    offset of the end of the last intact record — the caller truncates
    the file there to drop a torn tail.  A missing file yields
    ``([], None)``; a file whose *header* is unrecognisable (not a torn
    prefix of it) raises :class:`DurabilityError`.
    """
    if not os.path.exists(path):
        return [], None
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < len(_WAL_MAGIC):
        if _WAL_MAGIC.startswith(data):  # torn header write
            return [], 0
        raise DurabilityError(f"{path}: not a repro WAL file")
    if not data.startswith(_WAL_MAGIC):
        raise DurabilityError(f"{path}: not a repro WAL file")
    records: list[dict] = []
    offset = len(_WAL_MAGIC)
    n = len(data)
    while offset + _HEADER.size <= n:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > n:
            break  # torn tail: record body clipped
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # torn or corrupt tail: checksum mismatch
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break  # checksummed garbage — treat as tail corruption
        records.append(record)
        offset = end
    return records, offset


def truncate_wal(path: str, valid_size: int) -> None:
    """Drop a torn tail in place (no-op when the file is already clean)."""
    if os.path.getsize(path) > valid_size:
        with open(path, "r+b") as handle:
            handle.truncate(valid_size)
            handle.flush()
            os.fsync(handle.fileno())


def write_checkpoint(
    path: str, payload: Any, faults: FaultInjector = NO_FAULTS
) -> None:
    """Atomically publish a checkpoint snapshot at *path*.

    Write-to-temp + fsync + rename: a crash at any point leaves either
    the previous checkpoint (or none) or the complete new one — never a
    torn file under the published name.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    data = _CKPT_MAGIC + _HEADER.pack(len(blob), zlib.crc32(blob)) + blob
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        if faults.pending("checkpoint.snapshot.torn"):
            handle.write(data[: max(1, len(data) // 2)])
            handle.flush()
            os.fsync(handle.fileno())
            faults.check("checkpoint.snapshot.torn")
        handle.write(data)
        handle.flush()
        faults.check("checkpoint.snapshot.written")
        os.fsync(handle.fileno())
    faults.check("checkpoint.before_rename")
    os.replace(tmp, path)
    directory = os.path.dirname(os.path.abspath(path))
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        dir_fd = None
    if dir_fd is not None:
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    faults.check("checkpoint.after_rename")


def read_checkpoint(path: str) -> Optional[Any]:
    """Load a checkpoint snapshot, or None when absent.

    The published checkpoint is written atomically, so corruption here is
    disk rot rather than a torn write — surfaced as
    :class:`DurabilityError` instead of being silently ignored.
    """
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        data = handle.read()
    if not data.startswith(_CKPT_MAGIC) or len(data) < len(_CKPT_MAGIC) + _HEADER.size:
        raise DurabilityError(f"{path}: not a repro checkpoint file")
    length, crc = _HEADER.unpack_from(data, len(_CKPT_MAGIC))
    blob = data[len(_CKPT_MAGIC) + _HEADER.size :]
    if len(blob) != length or zlib.crc32(blob) != crc:
        raise DurabilityError(f"{path}: checkpoint checksum mismatch")
    try:
        return pickle.loads(blob)
    except Exception as exc:  # pickle raises a zoo of error types
        raise DurabilityError(f"{path}: cannot unpickle checkpoint ({exc})") from exc
