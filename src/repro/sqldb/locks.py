"""Concurrency-control primitives for the sqldb engine.

Two layers, used together by :class:`~repro.sqldb.engine.Database`:

* :class:`ReadWriteLock` — the global catalog latch.  SELECTs on the
  committed catalog hold the read side for the whole statement; DDL,
  autocommit DML and the commit-time catalog swap take the write side.
  The latch is *fair to writers*: once a writer queues, new readers wait
  behind it, so a stream of readers can never starve a writer (the PR 4
  readers-preference version could).  Critical sections under the write
  side are short — nothing blocks on a table lock while holding the
  latch — so reader latency stays bounded too.

* :class:`LockManager` — per-table write locks for DML, replacing the
  global write lock as the serialisation point between transactions.
  Locks are exclusive per table and per session, held until commit or
  rollback (strict two-phase locking over named relations).  Blocking
  acquires maintain a wait-for graph; because every session waits for at
  most one table and every table has at most one owner, the graph is
  functional and cycle detection is a single chain walk.  The requester
  that closes a cycle is the victim: it raises
  :class:`~repro.errors.DeadlockDetected` (SQLSTATE 40P01) and the
  engine aborts its transaction, releasing its locks so the peers make
  progress.  Lock waits also honour the statement deadline and cancel
  flag, surfacing :class:`~repro.errors.QueryCancelled` (57014) — both
  SQLSTATEs the connector layer treats as retryable.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Optional

from repro.errors import DeadlockDetected, QueryCancelled

__all__ = ["LockManager", "ReadWriteLock"]


class ReadWriteLock:
    """Many readers or one writer, fair to writers.

    A queued writer blocks *new* readers (writer preference), and the
    writer proceeds once in-flight readers drain; with only short write
    sections this approximates phase-fair behaviour without reader
    starvation in practice.  No reentrancy — the engine acquires it
    exactly once per statement, never nested.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


class LockManager:
    """Exclusive per-table locks keyed by session id, with deadlock
    detection over the wait-for graph.

    ``acquire`` takes tables in sorted order (callers pass the full
    statement target set at once) which avoids most deadlocks outright;
    the chain-walk detector catches the rest — cross-table lock orders
    established by *earlier* statements of two transactions.
    """

    #: granularity of deadline/cancel re-checks while blocked (seconds)
    _WAIT_SLICE = 0.05

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: table name -> owning session id
        self._owner: dict[str, int] = {}
        #: session id -> set of table names it holds
        self._held: dict[int, set[str]] = {}
        #: session id -> the single table it is currently blocked on
        self._waiting: dict[int, str] = {}

    def acquire(
        self,
        session_id: int,
        tables: list[str],
        deadline: Optional[float] = None,
        cancel_event: Optional[threading.Event] = None,
    ) -> list[str]:
        """Lock every table in *tables* for *session_id* (reentrant:
        already-held tables are skipped).  Returns the newly acquired
        names, so a transient caller can release exactly those.

        All-or-nothing: if the acquire fails part-way (deadlock victim,
        cancel, timeout while blocked on a later table), the tables this
        *call* already took are released before the error propagates.
        Without this, an autocommit statement cancelled between its
        first and second lock leaked the first one forever — no commit
        or rollback would ever release it, and every peer touching that
        table deadlocked."""
        acquired: list[str] = []
        try:
            for table in sorted(set(tables)):
                if self._acquire_one(table, session_id, deadline, cancel_event):
                    acquired.append(table)
        except BaseException:
            if acquired:
                self.release(session_id, acquired)
            raise
        return acquired

    def _acquire_one(
        self,
        table: str,
        session_id: int,
        deadline: Optional[float],
        cancel_event: Optional[threading.Event],
    ) -> bool:
        with self._cond:
            while True:
                owner = self._owner.get(table)
                if owner is None or owner == session_id:
                    newly = owner is None
                    self._owner[table] = session_id
                    self._held.setdefault(session_id, set()).add(table)
                    return newly
                self._waiting[session_id] = table
                try:
                    if self._closes_cycle(session_id):
                        raise DeadlockDetected(
                            f"deadlock detected: session {session_id} "
                            f"waiting for table {table!r} held by session "
                            f"{owner} completes a wait-for cycle"
                        )
                    if cancel_event is not None and cancel_event.is_set():
                        raise QueryCancelled(
                            "query cancelled while waiting for a table lock"
                        )
                    if deadline is not None and time.monotonic() > deadline:
                        raise QueryCancelled(
                            f"statement timeout while waiting for table "
                            f"{table!r}"
                        )
                    self._cond.wait(self._WAIT_SLICE)
                finally:
                    self._waiting.pop(session_id, None)

    def _closes_cycle(self, session_id: int) -> bool:
        """Walk owner-of(waited-table) edges from *session_id*.

        Each session waits on at most one table and each table has one
        owner, so the wait-for graph is functional: following the chain
        either terminates or returns to the start (a cycle).
        """
        seen = {session_id}
        current = session_id
        while True:
            table = self._waiting.get(current)
            if table is None:
                return False
            current = self._owner.get(table)
            if current is None:
                return False
            if current == session_id:
                return True
            if current in seen:  # cycle not through the requester
                return False
            seen.add(current)

    def release(self, session_id: int, tables: list[str]) -> None:
        """Release specific tables held by *session_id*."""
        with self._cond:
            held = self._held.get(session_id)
            for table in tables:
                if self._owner.get(table) == session_id:
                    del self._owner[table]
                if held is not None:
                    held.discard(table)
            if held is not None and not held:
                del self._held[session_id]
            self._cond.notify_all()

    def release_all(self, session_id: int) -> None:
        """Release every lock held by *session_id* (commit/rollback/abort)."""
        with self._cond:
            held = self._held.pop(session_id, set())
            for table in held:
                if self._owner.get(table) == session_id:
                    del self._owner[table]
            if held:
                self._cond.notify_all()

    def held_by(self, session_id: int) -> set[str]:
        with self._cond:
            return set(self._held.get(session_id, set()))
