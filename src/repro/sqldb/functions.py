"""Scalar and aggregate SQL function implementations.

Scalar functions consume/produce :class:`~repro.sqldb.vector.Vector`;
aggregates consume a vector plus per-row group codes and produce one output
row per group.  The set covers everything the transpiler emits (§5 of the
paper): ``coalesce``, ``regexp_replace``, ``least``/``greatest``,
``floor``/``ceil``, ``array_fill``/``array_length``/``array_position``,
``unnest`` (handled by the executor), plus aggregates ``count``, ``sum``,
``avg``, ``min``, ``max``, ``stddev_pop``/``stddev_samp``, ``array_agg``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable

import numpy as np

from repro.errors import SQLBindError, SQLExecutionError
from repro.sqldb.vector import Vector, from_values

__all__ = [
    "AGGREGATE_NAMES",
    "SCALAR_FUNCTIONS",
    "compute_aggregate",
    "is_aggregate",
    "pg_text",
]


# ---------------------------------------------------------------------------
# value -> text coercion
# ---------------------------------------------------------------------------


def pg_text(value: Any) -> Any:
    """Render one SQL value as PostgreSQL's text cast would.

    Every value→text coercion in the engine (``||``, ``CAST .. AS TEXT``,
    ``LIKE`` operands, string functions) routes through here so integers
    stored in float64-backed vectors print as ``'1'`` rather than ``'1.0'``.
    Returns None for SQL NULL.
    """
    if value is None:
        return None
    if isinstance(value, (bool, np.bool_)):
        return "true" if value else "false"
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        as_float = float(value)
        if as_float.is_integer() and abs(as_float) < 1e16:
            return str(int(as_float))
        return repr(as_float)
    if isinstance(value, list):
        parts = ["NULL" if v is None else pg_text(v) for v in value]
        return "{" + ",".join(parts) + "}"
    return str(value)


# ---------------------------------------------------------------------------
# scalar functions
# ---------------------------------------------------------------------------


def _fn_coalesce(args: list[Vector]) -> Vector:
    if not args:
        raise SQLExecutionError("coalesce requires at least one argument")
    result = args[0].copy()
    for candidate in args[1:]:
        still_null = result.nulls
        if not still_null.any():
            break
        fill = still_null & ~candidate.nulls
        if not fill.any():
            continue
        if result.values.dtype == candidate.values.dtype and result.values.dtype != object:
            result.values[fill] = candidate.values[fill]
        else:
            merged = result.values.astype(object)
            merged[fill] = candidate.values[fill]
            result = Vector(merged, result.nulls)
        result.nulls = result.nulls & ~fill
    return result


def _fn_regexp_replace(args: list[Vector]) -> Vector:
    if len(args) != 3:
        raise SQLExecutionError("regexp_replace(text, pattern, replacement)")
    text, pattern, replacement = args
    out = np.empty(len(text), dtype=object)
    nulls = text.nulls | pattern.nulls | replacement.nulls
    cache: dict[str, re.Pattern] = {}
    for i in np.flatnonzero(~nulls):
        pat = pg_text(pattern.item(i))
        compiled = cache.get(pat)
        if compiled is None:
            compiled = re.compile(pat)
            cache[pat] = compiled
        out[i] = compiled.sub(
            pg_text(replacement.item(i)), pg_text(text.item(i)), count=1
        )
    return Vector(out, nulls)


def _extremum(args: list[Vector], pick: Callable) -> Vector:
    if not args:
        raise SQLExecutionError("least/greatest require arguments")
    numeric = all(a.values.dtype.kind in ("f", "i", "u") for a in args)
    length = len(args[0])
    if numeric:
        stacked = np.vstack([a.values.astype(np.float64) for a in args])
        null_stack = np.vstack([a.nulls for a in args])
        masked = np.where(null_stack, np.nan, stacked)
        with np.errstate(all="ignore"):
            values = pick(masked, axis=0)
        nulls = np.isnan(values)
        return Vector(np.where(nulls, np.nan, values), nulls)
    out = np.empty(length, dtype=object)
    nulls = np.zeros(length, dtype=bool)
    reducer = min if pick is np.nanmin else max
    for i in range(length):
        candidates = [a.values[i] for a in args if not a.nulls[i]]
        if candidates:
            out[i] = reducer(candidates)
        else:
            nulls[i] = True
    return Vector(out, nulls)


def _fn_least(args: list[Vector]) -> Vector:
    return _extremum(args, np.nanmin)


def _fn_greatest(args: list[Vector]) -> Vector:
    return _extremum(args, np.nanmax)


def _numeric_unary(args: list[Vector], func: Callable, name: str) -> Vector:
    if len(args) != 1:
        raise SQLExecutionError(f"{name} takes one argument")
    arg = args[0]
    values = arg.values.astype(np.float64, copy=False)
    with np.errstate(all="ignore"):
        out = func(values)
    nulls = arg.nulls | ~np.isfinite(out)
    return Vector(np.where(nulls, np.nan, out), nulls)


def _fn_round(args: list[Vector]) -> Vector:
    if len(args) == 1:
        return _numeric_unary(args, np.round, "round")
    if len(args) == 2:
        digits = int(args[1].values[0])
        return _numeric_unary(args[:1], lambda v: np.round(v, digits), "round")
    raise SQLExecutionError("round takes one or two arguments")


def _fn_array_fill(args: list[Vector]) -> Vector:
    """``array_fill(value, count)`` — array of *count* copies of *value*.

    PostgreSQL's form takes the count wrapped in an array literal; the
    transpiler emits the scalar-count variant for simplicity.
    """
    if len(args) != 2:
        raise SQLExecutionError("array_fill(value, count)")
    value, count = args
    out = np.empty(len(value), dtype=object)
    nulls = count.nulls.copy()
    counts = count.values
    fill_values = value.values
    fill_nulls = value.nulls
    cache: dict[tuple, list] = {}
    for i in np.flatnonzero(~nulls):
        fill = None if fill_nulls[i] else value.item(i)
        key = (fill, int(counts[i]))
        prototype = cache.get(key)
        if prototype is None:
            prototype = [fill] * max(key[1], 0)
            cache[key] = prototype
        out[i] = list(prototype)
    return Vector(out, nulls)


def _fn_array_length(args: list[Vector]) -> Vector:
    if len(args) not in (1, 2):
        raise SQLExecutionError("array_length(array[, dim])")
    arr = args[0]
    out = np.empty(len(arr), dtype=np.float64)
    nulls = arr.nulls.copy()
    for i in np.flatnonzero(~nulls):
        value = arr.values[i]
        if not isinstance(value, list):
            raise SQLExecutionError("array_length argument is not an array")
        out[i] = len(value)
    return Vector(np.where(nulls, np.nan, out), nulls)


def _fn_array_position(args: list[Vector]) -> Vector:
    """1-based index of an element inside an array (null when absent)."""
    if len(args) != 2:
        raise SQLExecutionError("array_position(array, element)")
    arr, element = args
    out = np.full(len(arr), np.nan)
    nulls = arr.nulls | element.nulls
    for i in np.flatnonzero(~nulls):
        value = arr.values[i]
        try:
            out[i] = value.index(element.item(i)) + 1
        except ValueError:
            nulls[i] = True
    return Vector(out, nulls)


def _string_unary(args: list[Vector], func: Callable[[str], Any], name: str) -> Vector:
    if len(args) != 1:
        raise SQLExecutionError(f"{name} takes one argument")
    arg = args[0]
    out = np.empty(len(arg), dtype=object)
    for i in np.flatnonzero(~arg.nulls):
        out[i] = func(pg_text(arg.item(i)))
    return Vector(out, arg.nulls.copy())


def _fn_nullif(args: list[Vector]) -> Vector:
    if len(args) != 2:
        raise SQLExecutionError("nullif(a, b)")
    from repro.sqldb.vector import compare

    equal = compare("=", args[0], args[1])
    result = args[0].copy()
    hit = equal.values & ~equal.nulls
    result.nulls = result.nulls | hit
    return result


def _fn_char_length(args: list[Vector]) -> Vector:
    vec = _string_unary(args, len, "length")
    values = np.array(
        [float(v) if v is not None else np.nan for v in vec.values], dtype=np.float64
    )
    return Vector(values, vec.nulls)


SCALAR_FUNCTIONS: dict[str, Callable[[list[Vector]], Vector]] = {
    "coalesce": _fn_coalesce,
    "regexp_replace": _fn_regexp_replace,
    "least": _fn_least,
    "greatest": _fn_greatest,
    "floor": lambda args: _numeric_unary(args, np.floor, "floor"),
    "ceil": lambda args: _numeric_unary(args, np.ceil, "ceil"),
    "ceiling": lambda args: _numeric_unary(args, np.ceil, "ceiling"),
    "abs": lambda args: _numeric_unary(args, np.abs, "abs"),
    "sqrt": lambda args: _numeric_unary(args, np.sqrt, "sqrt"),
    "ln": lambda args: _numeric_unary(args, np.log, "ln"),
    "exp": lambda args: _numeric_unary(args, np.exp, "exp"),
    "tanh": lambda args: _numeric_unary(args, np.tanh, "tanh"),
    "round": _fn_round,
    "array_fill": _fn_array_fill,
    "array_length": _fn_array_length,
    "array_position": _fn_array_position,
    "upper": lambda args: _string_unary(args, str.upper, "upper"),
    "lower": lambda args: _string_unary(args, str.lower, "lower"),
    "trim": lambda args: _string_unary(args, str.strip, "trim"),
    "length": _fn_char_length,
    "char_length": _fn_char_length,
    "nullif": _fn_nullif,
}


# ---------------------------------------------------------------------------
# aggregate functions
# ---------------------------------------------------------------------------

AGGREGATE_NAMES = {
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "stddev_pop",
    "stddev_samp",
    "stddev",
    "var_pop",
    "array_agg",
}


def is_aggregate(name: str) -> bool:
    return name in AGGREGATE_NAMES


def _group_sums(values: np.ndarray, codes: np.ndarray, n_groups: int) -> np.ndarray:
    return np.bincount(codes, weights=values, minlength=n_groups)


def compute_aggregate(
    name: str,
    arg: Vector | None,
    codes: np.ndarray,
    n_groups: int,
    distinct: bool = False,
) -> Vector:
    """Evaluate one aggregate over pre-computed group codes.

    ``arg`` is None for ``count(*)``.  Null inputs are skipped by every
    aggregate except ``count(*)`` (SQL semantics).
    """
    if name == "count" and arg is None:
        counts = np.bincount(codes, minlength=n_groups).astype(np.float64)
        return Vector(counts, np.zeros(n_groups, dtype=bool))
    if arg is None:
        raise SQLExecutionError(f"aggregate {name} requires an argument")

    keep = ~arg.nulls
    if distinct:
        if name != "count":
            raise SQLExecutionError("DISTINCT is only supported inside count()")
        seen: set[tuple[int, Any]] = set()
        counts = np.zeros(n_groups, dtype=np.float64)
        for i in np.flatnonzero(keep):
            key = (int(codes[i]), arg.values[i])
            if key not in seen:
                seen.add(key)
                counts[int(codes[i])] += 1
        return Vector(counts, np.zeros(n_groups, dtype=bool))

    if name == "count":
        counts = np.bincount(codes[keep], minlength=n_groups).astype(np.float64)
        return Vector(counts, np.zeros(n_groups, dtype=bool))

    if name == "array_agg":
        out = np.empty(n_groups, dtype=object)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = np.searchsorted(
            sorted_codes, np.arange(n_groups + 1), side="left"
        )
        has_null = arg.nulls.any()
        values = arg.values[order]
        nulls = arg.nulls[order] if has_null else None
        for g in range(n_groups):
            lo, hi = int(boundaries[g]), int(boundaries[g + 1])
            segment = values[lo:hi]
            if has_null:
                bucket = [
                    None if nulls[lo + k] else segment[k]
                    for k in range(hi - lo)
                ]
            else:
                bucket = segment.tolist()
            out[g] = bucket
        return Vector(out, np.zeros(n_groups, dtype=bool))

    if name in ("min", "max") and arg.values.dtype == object:
        out = np.empty(n_groups, dtype=object)
        nulls = np.ones(n_groups, dtype=bool)
        better = (lambda a, b: a < b) if name == "min" else (lambda a, b: a > b)
        for i in np.flatnonzero(keep):
            g = int(codes[i])
            value = arg.values[i]
            if nulls[g] or better(value, out[g]):
                out[g] = value
                nulls[g] = False
        return Vector(out, nulls)

    values = arg.values.astype(np.float64, copy=False)
    kept_codes = codes[keep]
    kept_values = values[keep]
    counts = np.bincount(kept_codes, minlength=n_groups).astype(np.float64)
    empty = counts == 0

    if name == "sum":
        sums = _group_sums(kept_values, kept_codes, n_groups)
        return Vector(np.where(empty, np.nan, sums), empty)
    if name == "avg":
        sums = _group_sums(kept_values, kept_codes, n_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = sums / counts
        return Vector(np.where(empty, np.nan, means), empty)
    if name == "min" or name == "max":
        fill = math.inf if name == "min" else -math.inf
        out = np.full(n_groups, fill)
        reducer = np.minimum if name == "min" else np.maximum
        getattr(reducer, "at")(out, kept_codes, kept_values)
        nulls = empty | ~np.isfinite(out)
        return Vector(np.where(nulls, np.nan, out), nulls)
    if name in ("stddev_pop", "stddev_samp", "stddev", "var_pop"):
        sums = _group_sums(kept_values, kept_codes, n_groups)
        squares = _group_sums(kept_values * kept_values, kept_codes, n_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = sums / counts
            variance = squares / counts - means * means
        variance = np.maximum(variance, 0.0)
        if name in ("stddev_samp", "stddev"):
            # unbiased: n/(n-1) correction; undefined for single-row groups
            with np.errstate(invalid="ignore", divide="ignore"):
                variance = variance * counts / (counts - 1.0)
            undefined = counts < 2
        else:
            undefined = empty
        result = variance if name == "var_pop" else np.sqrt(variance)
        nulls = undefined | empty
        return Vector(np.where(nulls, np.nan, result), nulls)
    raise SQLBindError(f"unknown aggregate function {name!r}")
