"""Column vector model of the SQL engine.

A :class:`Vector` is a pair of numpy arrays: ``values`` and a boolean
``nulls`` mask.  Numeric vectors store float64 (ints are widened), booleans
store bool, and everything else (text, arrays) stores object.  All engine
operators exchange vectors, which keeps SQL three-valued logic explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.errors import SQLExecutionError

__all__ = ["Vector", "from_values", "constant", "gather", "concat_vectors"]


@dataclass
class Vector:
    """A column of SQL values with an explicit null mask."""

    values: np.ndarray
    nulls: np.ndarray

    def __post_init__(self) -> None:
        if len(self.values) != len(self.nulls):
            raise SQLExecutionError("vector values/nulls length mismatch")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def is_numeric(self) -> bool:
        return self.values.dtype.kind in ("f", "i", "u")

    @property
    def is_bool(self) -> bool:
        return self.values.dtype.kind == "b"

    def copy(self) -> "Vector":
        return Vector(self.values.copy(), self.nulls.copy())

    def item(self, i: int) -> Any:
        """Python value at row *i* (None when null)."""
        if self.nulls[i]:
            return None
        value = self.values[i]
        if isinstance(value, np.floating):
            as_float = float(value)
            return int(as_float) if as_float.is_integer() else as_float
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.bool_):
            return bool(value)
        return value

    def tolist(self) -> list:
        return [self.item(i) for i in range(len(self))]


def from_values(items: Iterable[Any]) -> Vector:
    """Build a vector from Python values, inferring the backing dtype."""
    items = list(items)
    nulls = np.array([v is None for v in items], dtype=bool)
    present = [v for v in items if v is not None]
    if present and all(isinstance(v, bool) for v in present):
        values = np.array([bool(v) if v is not None else False for v in items])
        return Vector(values, nulls)
    if present and all(
        isinstance(v, (int, float, np.integer, np.floating))
        and not isinstance(v, bool)
        for v in present
    ):
        values = np.array(
            [float(v) if v is not None else np.nan for v in items], dtype=np.float64
        )
        return Vector(values, nulls)
    values = np.empty(len(items), dtype=object)
    for i, v in enumerate(items):
        values[i] = v
    return Vector(values, nulls)


def constant(value: Any, length: int) -> Vector:
    """A vector repeating one value."""
    if value is None:
        return Vector(np.zeros(length), np.ones(length, dtype=bool))
    nulls = np.zeros(length, dtype=bool)
    if isinstance(value, bool):
        return Vector(np.full(length, value, dtype=bool), nulls)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return Vector(np.full(length, float(value)), nulls)
    values = np.empty(length, dtype=object)
    values[:] = [value] * length
    return Vector(values, nulls)


def gather(vector: Vector, positions: np.ndarray, missing_null: bool = False) -> Vector:
    """Reorder/duplicate rows by position; -1 yields null when allowed."""
    if missing_null:
        hole = positions < 0
        if len(vector) == 0:
            # outer join against an empty side: all positions are holes
            return Vector(
                np.full(len(positions), np.nan),
                np.ones(len(positions), dtype=bool),
            )
        safe = np.where(hole, 0, positions)
        values = vector.values[safe]
        nulls = vector.nulls[safe] | hole
        if values.dtype == object:
            values = values.copy()
            values[hole] = None
        return Vector(values, nulls)
    return Vector(vector.values[positions], vector.nulls[positions])


def concat_vectors(parts: list[Vector]) -> Vector:
    """Stack vectors vertically, reconciling dtypes."""
    if not parts:
        return from_values([])
    kinds = {p.values.dtype.kind for p in parts}
    if kinds <= {"f", "i", "u"}:
        values = np.concatenate([p.values.astype(np.float64) for p in parts])
    elif kinds == {"b"}:
        values = np.concatenate([p.values for p in parts])
    else:
        values = np.concatenate([p.values.astype(object) for p in parts])
    nulls = np.concatenate([p.nulls for p in parts])
    return Vector(values, nulls)


# ---------------------------------------------------------------------------
# element-wise operations with SQL semantics
# ---------------------------------------------------------------------------


def _as_float(vector: Vector, context: str) -> np.ndarray:
    if vector.values.dtype.kind in ("f", "i", "u"):
        return vector.values.astype(np.float64, copy=False)
    if vector.values.dtype.kind == "b":
        return vector.values.astype(np.float64)
    out = np.empty(len(vector), dtype=np.float64)
    for i, value in enumerate(vector.values):
        if vector.nulls[i]:
            out[i] = np.nan
            continue
        try:
            out[i] = float(value)
        except (TypeError, ValueError):
            raise SQLExecutionError(
                f"{context}: cannot interpret {value!r} as a number"
            ) from None
    return out


def arithmetic(op: str, left: Vector, right: Vector) -> Vector:
    """``+ - * / %`` with null propagation; ``||`` concatenates text/arrays."""
    nulls = left.nulls | right.nulls
    if op == "||":
        # lazy import: functions imports this module at load time
        from repro.sqldb.functions import pg_text

        out = np.empty(len(left), dtype=object)
        for i in np.flatnonzero(~nulls):
            a, b = left.values[i], right.values[i]
            if isinstance(a, list) or isinstance(b, list):
                a_list = a if isinstance(a, list) else [a]
                b_list = b if isinstance(b, list) else [b]
                out[i] = a_list + b_list
            else:
                out[i] = pg_text(left.item(i)) + pg_text(right.item(i))
        return Vector(out, nulls.copy())
    a = _as_float(left, op)
    b = _as_float(right, op)
    with np.errstate(invalid="ignore", divide="ignore"):
        if op == "+":
            values = a + b
        elif op == "-":
            values = a - b
        elif op == "*":
            values = a * b
        elif op == "/":
            values = a / b
            nulls = nulls | (b == 0)
        elif op == "%":
            values = np.mod(a, b)
            nulls = nulls | (b == 0)
        else:
            raise SQLExecutionError(f"unknown arithmetic operator {op!r}")
    return Vector(np.where(nulls, np.nan, values), nulls)


_COMPARators: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compare(op: str, left: Vector, right: Vector) -> Vector:
    """SQL comparison: null operands yield null (unknown)."""
    nulls = left.nulls | right.nulls
    out = np.zeros(len(left), dtype=bool)
    func = _COMPARators.get(op)
    if func is None:
        raise SQLExecutionError(f"unknown comparison operator {op!r}")
    numeric = (
        left.values.dtype.kind in ("f", "i", "u", "b")
        and right.values.dtype.kind in ("f", "i", "u", "b")
    )
    if numeric:
        with np.errstate(invalid="ignore"):
            out = func(
                left.values.astype(np.float64, copy=False),
                right.values.astype(np.float64, copy=False),
            )
        out = np.where(nulls, False, out)
    else:
        try:
            # numpy applies Python rich comparison per element in a C loop,
            # much faster than an interpreted row loop
            with np.errstate(invalid="ignore"):
                raw = func(left.values, right.values)
            out = np.asarray(raw, dtype=bool)
            out = np.where(nulls, False, out)
        except TypeError:
            for i in np.flatnonzero(~nulls):
                a, b = left.values[i], right.values[i]
                try:
                    out[i] = bool(func(a, b))
                except TypeError:
                    # mixed types (e.g. text vs numeric): compare as text
                    out[i] = bool(func(str(a), str(b)))
    return Vector(out, nulls)


def logical_and(left: Vector, right: Vector) -> Vector:
    """Three-valued AND."""
    lv = left.values.astype(bool, copy=False)
    rv = right.values.astype(bool, copy=False)
    false_l = ~lv & ~left.nulls
    false_r = ~rv & ~right.nulls
    result_false = false_l | false_r
    nulls = (left.nulls | right.nulls) & ~result_false
    values = lv & rv & ~nulls
    return Vector(values, nulls)


def logical_or(left: Vector, right: Vector) -> Vector:
    """Three-valued OR."""
    lv = left.values.astype(bool, copy=False)
    rv = right.values.astype(bool, copy=False)
    true_l = lv & ~left.nulls
    true_r = rv & ~right.nulls
    result_true = true_l | true_r
    nulls = (left.nulls | right.nulls) & ~result_true
    values = result_true
    return Vector(values, nulls)


def logical_not(operand: Vector) -> Vector:
    values = ~operand.values.astype(bool, copy=False)
    return Vector(np.where(operand.nulls, False, values), operand.nulls.copy())


def truthy_rows(predicate: Vector) -> np.ndarray:
    """Row positions where the predicate is TRUE (not false, not null)."""
    values = predicate.values.astype(bool, copy=False)
    return np.flatnonzero(values & ~predicate.nulls)
