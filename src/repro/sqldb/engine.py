"""Database façade: statement execution over a catalog with a profile.

``Database("postgres")`` behaves like the paper's PostgreSQL 12 (CTEs
materialise by default, operators materialise their outputs, views inline);
``Database("umbra")`` behaves like Umbra (everything inlines and pipelines).
"""

from __future__ import annotations

import csv
import itertools
import logging
import os
import threading
import time
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, Optional, Sequence

from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    ConfigurationLimitExceeded,
    DeadlockDetected,
    DurabilityError,
    OutOfMemory,
    ReadOnlySQLTransaction,
    SerializationFailure,
    SQLExecutionError,
    TransactionError,
)
from repro.sqldb import ast_nodes as ast
from repro.sqldb.catalog import (
    CTID,
    Catalog,
    Table,
    View,
    _resolve_index_method,
    build_index,
    coerce_to_type,
    normalise_type,
)
from repro.sqldb.executor import ExecContext, execute_plan
from repro.sqldb.faults import NO_FAULTS, FaultInjector
from repro.sqldb.memory import (
    MemoryBroker,
    MemoryFaultInjector,
    MemoryGrant,
    batch_bytes,
    parse_memory_limit,
)
from repro.sqldb.locks import LockManager, ReadWriteLock
from repro.sqldb.session import Session
from repro.sqldb.txn import SavepointState, Transaction
from repro.sqldb.wal import (
    WAL_SYNC_POLICIES,
    WriteAheadLog,
    read_checkpoint,
    read_wal,
    truncate_wal,
    write_checkpoint,
)
from repro.sqldb.optimizer import (
    estimate_plan_rows,
    fold_select,
    optimize_select_plan,
    prune_plan,
    prune_shared_plans,
)
from repro.sqldb.parser import parse_script, parse_statement
from repro.sqldb.plan import Batch, PlanNode
from repro.sqldb.planner import Planner, Scope, ScopeEntry
from repro.sqldb.prepared import bind_parameters, normalize_sql
from repro.sqldb.profile import POSTGRES, Profile, profile_by_name
from repro.sqldb.stats import ExecStats, merge_operator_counters
from repro.sqldb.vector import Vector, from_values, gather

logger = logging.getLogger(__name__)

__all__ = [
    "Database",
    "PlanCache",
    "Result",
    "resolve_timeout_ms",
    "resolve_workers",
]

#: environment variable that opts a connection into parallel execution
WORKERS_ENV = "REPRO_SQL_WORKERS"

#: statements that mutate the catalog (take the exclusive lock, are
#: snapshot-protected for statement atomicity, and get WAL-logged)
_WRITE_TYPES = (
    ast.CreateTable,
    ast.CreateView,
    ast.CreateIndex,
    ast.Insert,
    ast.Copy,
    ast.Update,
    ast.Delete,
    ast.Drop,
    ast.DropIndex,
    ast.Train,
    ast.DropModel,
    ast.Analyze,
)

#: transaction-control statements (exclusive lock, never WAL-logged
#: themselves — only committed work reaches the log)
_TXN_TYPES = (
    ast.Begin,
    ast.Commit,
    ast.Rollback,
    ast.Savepoint,
    ast.RollbackTo,
    ast.ReleaseSavepoint,
    ast.Checkpoint,
)

#: environment variable providing a default statement timeout (ms)
TIMEOUT_ENV = "REPRO_SQL_TIMEOUT_MS"

#: environment variable providing a default global memory budget
#: (bytes, or a ``kb``/``mb``/``gb``-suffixed string)
MEMORY_ENV = "REPRO_SQL_MEMORY_LIMIT"


def resolve_memory_limit(limit: Optional[int | str]) -> Optional[int]:
    """Memory budget from the argument, else ``REPRO_SQL_MEMORY_LIMIT``.

    Accepts plain byte counts or ``kb``/``mb``/``gb``-suffixed strings;
    ``None`` (and no environment default) means unbounded."""
    raw: Any = limit
    if raw is None:
        raw = os.environ.get(MEMORY_ENV)
        if raw is None:
            return None
    if isinstance(raw, str):
        try:
            return parse_memory_limit(raw)
        except ValueError as exc:
            raise SQLExecutionError(str(exc)) from None
    return int(raw)


def resolve_workers(workers: Optional[int], profile: Profile) -> int:
    """Worker count from (in precedence order) argument, environment
    variable ``REPRO_SQL_WORKERS``, then the profile default."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw is not None:
            try:
                workers = int(raw)
            except ValueError:
                raise SQLExecutionError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            workers = profile.parallelism
    return max(1, int(workers))


def resolve_timeout_ms(timeout_ms: Optional[float]) -> Optional[float]:
    """Statement timeout from the argument, else ``REPRO_SQL_TIMEOUT_MS``.

    ``None`` or a non-positive value disables the timeout (PostgreSQL's
    ``statement_timeout = 0`` convention)."""
    if timeout_ms is None:
        raw = os.environ.get(TIMEOUT_ENV)
        if raw is None:
            return None
        try:
            timeout_ms = float(raw)
        except ValueError:
            raise SQLExecutionError(
                f"{TIMEOUT_ENV} must be a number, got {raw!r}"
            ) from None
    return float(timeout_ms) if timeout_ms > 0 else None


@dataclass
class Result:
    """Query result: column names plus Python-value row tuples."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    #: rows affected / loaded for DML, row count for queries
    rowcount: int = 0
    statement: str = ""

    def scalar(self) -> Any:
        """Single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SQLExecutionError(
                f"expected a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


@dataclass
class _CachedStatement:
    """One parsed statement plus its lazily built (pruned) plan."""

    statement: ast.Statement
    plan: Optional[PlanNode] = None


@dataclass
class _CacheEntry:
    """Cached parse/plan state for one normalized statement text."""

    statements: list[_CachedStatement]
    n_params: Optional[int] = None


class PlanCache:
    """LRU cache of parsed statements and pruned logical plans.

    Keys are ``(normalized SQL, profile name, optimizer flag, catalog
    schema version, statistics version, schema fingerprint)``: any DDL —
    and, conservatively, INSERT/COPY — bumps the schema version and any
    ``ANALYZE`` bumps the statistics version, so entries planned against
    a stale catalog (or optimized under stale statistics) stop matching
    and age out; the fingerprint keeps a cache shared across reconnects
    from matching a differently shaped schema.  ``maxsize=0`` (or
    ``enabled=False``) disables caching entirely.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self.enabled = maxsize > 0
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        #: concurrent sessions share one cache; LRU reordering and
        #: eviction must not interleave
        self._mutex = threading.Lock()

    def get(self, key: tuple) -> Optional[_CacheEntry]:
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, entry: _CacheEntry) -> None:
        with self._mutex:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}


class Database:
    """An in-process SQL database with a pluggable execution profile."""

    def __init__(
        self,
        profile: Profile | str = POSTGRES,
        plan_cache_size: int = 128,
        workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
        collect_exec_stats: bool = False,
        optimize: Optional[bool] = None,
        durable: bool = False,
        wal_path: Optional[str] = None,
        wal_sync: str = "commit",
        wal_group_every: int = 8,
        checkpoint_every: Optional[int] = None,
        statement_timeout_ms: Optional[float] = None,
        read_only: bool = False,
        faults: Optional[FaultInjector] = None,
        memory_limit: Optional[int | str] = None,
        query_memory_limit: Optional[int | str] = None,
        spill_dir: Optional[str] = None,
        memory_faults: Optional[MemoryFaultInjector] = None,
    ) -> None:
        if isinstance(profile, str):
            profile = profile_by_name(profile)
        self.profile = profile
        #: statistics-driven rewrite layer (argument overrides the profile)
        self.optimize = profile.optimize if optimize is None else bool(optimize)
        self.catalog = Catalog()
        self.plan_cache = PlanCache(plan_cache_size)
        #: exact-text memo in front of the normalizer; normalization is
        #: schema-independent, so entries never go stale
        self._normalized: OrderedDict[str, tuple[str, int]] = OrderedDict()
        #: cumulative wall-clock seconds spent executing statements
        self.total_execution_time = 0.0
        #: morsel-driven parallelism (resolve_workers: arg > env > profile)
        self.workers = resolve_workers(workers, profile)
        self.morsel_size = (
            profile.morsel_size if morsel_size is None else max(1, int(morsel_size))
        )
        self._pool: Optional[ThreadPoolExecutor] = None
        #: when set, every SELECT records per-operator runtime stats
        self.collect_exec_stats = collect_exec_stats
        #: cumulative per-operator counters across collected executions
        self.operator_counters: dict[str, dict] = {}
        #: stats of the most recent recorded execution
        self.last_exec_stats: Optional[ExecStats] = None
        #: statement timeout (arg > REPRO_SQL_TIMEOUT_MS env > off)
        self.statement_timeout_ms = resolve_timeout_ms(statement_timeout_ms)
        #: fair catalog latch: committed-state SELECTs hold the read side
        #: for their whole execution (every in-flight morsel included);
        #: DDL, autocommit DML and the commit-time catalog swap take the
        #: exclusive side.  Fair: a queued writer blocks new readers.
        self._lock = ReadWriteLock()
        #: per-table DML locks across sessions (2PL with deadlock detection)
        self.locks = LockManager()
        #: session registry: the default session serves the Database's own
        #: execute() API; DB-API connections sharing this database open
        #: one session each
        self._sessions: dict[int, Session] = {}
        self._session_ids = itertools.count(1)
        self._session_mutex = threading.Lock()
        self._default_session = Session(self, 0)
        self._sessions[0] = self._default_session
        #: transaction identities (deadlock reporting) — distinct from
        #: commit ids, which are allocated at COMMIT under the write
        #: latch so WAL order equals commit order
        self._txn_ids = itertools.count(1)
        self._next_txn = 1
        #: monotonic serialization of _normalized against concurrent use
        self._prepare_mutex = threading.Lock()
        self._stats_mutex = threading.Lock()
        #: fault injection for the durability layer (inert by default)
        self.faults = faults if faults is not None else NO_FAULTS
        #: memory governor (arg > REPRO_SQL_MEMORY_LIMIT env > unbounded);
        #: ``None`` keeps every statement on the zero-overhead fast path
        resolved_limit = resolve_memory_limit(memory_limit)
        resolved_query_limit = (
            parse_memory_limit(query_memory_limit)
            if isinstance(query_memory_limit, str)
            else query_memory_limit
        )
        self.memory: Optional[MemoryBroker] = None
        if (
            resolved_limit is not None
            or resolved_query_limit is not None
            or spill_dir is not None
            or memory_faults is not None
        ):
            self.memory = MemoryBroker(
                limit=resolved_limit,
                query_limit=resolved_query_limit,
                spill_dir=spill_dir,
                faults=memory_faults,
            )
        #: durability: opt in with durable=True/wal_path=...
        self.durable = bool(durable) or wal_path is not None
        self.wal_path = wal_path
        if wal_sync not in WAL_SYNC_POLICIES:
            raise DurabilityError(
                f"unknown wal_sync policy {wal_sync!r}; "
                f"expected one of {WAL_SYNC_POLICIES}"
            )
        self.wal_sync = wal_sync
        self.wal_group_every = wal_group_every
        self.checkpoint_every = checkpoint_every
        self._commits_since_checkpoint = 0
        self._wal: Optional[WriteAheadLog] = None
        self._replaying = False
        #: read-only mode: every client write raises 25006 (a streaming
        #: replica's SQL surface); the replication applier bypasses it
        #: through :meth:`apply_replicated_commit`
        self.read_only = bool(read_only)
        #: post-commit hooks ``fn(commit_id, records)`` — called in
        #: commit order, under the write latch, after the commit is
        #: locally durable and installed.  Replication streams hang off
        #: this; hooks must be fast or intentionally synchronous.
        self._commit_hooks: list = []
        #: commit id of the newest replicated commit applied here (a
        #: replica's replay position; 0 on a primary)
        self.last_applied_commit_id = 0
        #: parsed-statement memo for replicated replay (sql -> stmts)
        self._replay_parsed: OrderedDict[str, list] = OrderedDict()
        if self.durable:
            if not wal_path:
                raise DurabilityError("durable=True requires wal_path")
            self._recover()
            self._wal = WriteAheadLog(
                wal_path,
                self.faults,
                sync_policy=wal_sync,
                group_every=wal_group_every,
            )

    @property
    def in_transaction(self) -> bool:
        """True while the default session has an open transaction."""
        return self._default_session.txn is not None

    def session(self) -> Session:
        """Open a new session (one per concurrent client connection)."""
        with self._session_mutex:
            session = Session(self, next(self._session_ids))
            self._sessions[session.session_id] = session
        return session

    def _forget_session(self, session: Session) -> None:
        with self._session_mutex:
            self._sessions.pop(session.session_id, None)

    def _resolve_session(self, session: Optional[Session]) -> Session:
        return self._default_session if session is None else session

    def close(self) -> None:
        """Release the worker pool and the WAL file handle (idempotent;
        the database stays usable serially and will lazily recreate the
        pool if needed — but not the WAL, mirroring a closed connection).

        Deliberately does *not* commit, checkpoint, or roll back: an open
        transaction's memory state is simply abandoned, exactly like a
        process exit, so recovery semantics stay uniform."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._wal is not None:
            self._wal.close()
        if self.memory is not None:
            self.memory.close()

    def reset_storage(self) -> None:
        """Drop every relation and start from an empty committed catalog.

        The server-side counterpart of a connector ``reset()`` (which
        in-process simply reconnects to a fresh :class:`Database`): the
        catalog is replaced wholesale under the write latch, so the
        schema-version counter restarts at 0 and a replayed identical
        DDL history re-hits the surviving plan cache, exactly like the
        reconnect path.  Statement caches, the worker pool and session
        registry survive.  Concurrent *open* transactions are not
        supported across a reset (their forks reference discarded
        state); the network server exposes this only behind its
        ``allow_reset`` flag.  Refused on durable databases — the WAL
        describes the old history."""
        if self.durable:
            raise DurabilityError(
                "reset_storage is not supported on a durable database"
            )
        self._check_writable()
        with self._lock.write():
            self.catalog = Catalog()
            self.operator_counters = {}
            self.last_exec_stats = None
        if self.memory is not None:
            # a reset must not strand spill files from discarded queries
            self.memory.spill.cleanup_all()

    def cancel(self, session: Optional[Session] = None) -> None:
        """Cooperatively cancel one session's in-flight statements (the
        default session's when none is given — psycopg2's per-connection
        ``cancel`` shape; other sessions' queries are unaffected).

        Safe from any thread; the running statements observe the flag at
        their next operator or morsel boundary and raise
        :class:`~repro.errors.QueryCancelled`."""
        self._resolve_session(session).cancel()

    def cancel_all(self) -> None:
        """Cancel every in-flight statement on every session (shutdown)."""
        with self._session_mutex:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.cancel()

    @property
    def _active_cancels(self) -> set[threading.Event]:
        """Union of every session's in-flight cancel events (diagnostics
        and tests; cancellation itself is session-scoped)."""
        with self._session_mutex:
            sessions = list(self._sessions.values())
        events: set[threading.Event] = set()
        for session in sessions:
            with session._cancel_mutex:
                events |= session._active_cancels
        return events

    def _ensure_pool(self) -> Optional[ThreadPoolExecutor]:
        if self.workers <= 1:
            return None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-sql-worker",
            )
        return self._pool

    def _make_context(
        self,
        params: tuple = (),
        stats: Optional[ExecStats] = None,
        cancel_event: Optional[threading.Event] = None,
        catalog: Optional[Catalog] = None,
        memory: Optional[MemoryGrant] = None,
    ) -> ExecContext:
        """One execution context per statement; pools, stats and the
        cancellation deadline attach here so cached plans stay immutable
        and re-executable concurrently.  ``catalog`` selects the state to
        read: a transaction's private fork, or (default) committed."""
        if stats is None and self.collect_exec_stats:
            stats = ExecStats(workers=self.workers)
        deadline = None
        if self.statement_timeout_ms is not None:
            deadline = time.monotonic() + self.statement_timeout_ms / 1000.0
        return ExecContext(
            self.catalog if catalog is None else catalog,
            self.profile,
            params=params,
            workers=self.workers,
            morsel_size=self.morsel_size,
            pool=self._ensure_pool(),
            stats=stats,
            deadline=deadline,
            cancel_event=cancel_event,
            memory=memory,
        )

    # -- memory grants -------------------------------------------------------

    def _begin_grant(
        self, cancel_event: Optional[threading.Event] = None
    ) -> Optional[MemoryGrant]:
        """Admit one statement through the memory broker (None when the
        database runs unbounded — the zero-overhead fast path)."""
        if self.memory is None:
            return None
        deadline = None
        if self.statement_timeout_ms is not None:
            deadline = time.monotonic() + self.statement_timeout_ms / 1000.0
        return self.memory.begin_query(
            deadline=deadline, cancel_event=cancel_event
        )

    def _end_grant(
        self, grant: Optional[MemoryGrant], session: Optional[Session] = None
    ) -> None:
        """Release a grant (bytes + spill files) and fold its counters
        into the session; safe on every exit path and idempotent."""
        if grant is None:
            return
        self.memory.end_query(grant)
        if session is not None:
            session.note_memory(grant.peak_bytes, grant.spilled_bytes)

    def memory_stats(self, session: Optional[Session] = None) -> dict:
        """Broker snapshot plus the session's peak/spilled counters
        (empty when no memory governor is configured)."""
        if self.memory is None:
            return {}
        snapshot = self.memory.snapshot()
        snapshot["session"] = self._resolve_session(session).memory_stats()
        return snapshot

    # -- public API ----------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Optional[Sequence[Any]] = None,
        session: Optional[Session] = None,
    ) -> Result:
        """Parse and execute a single SQL statement.

        ``params`` binds positional ``?`` / ``%s`` placeholders;
        ``session`` selects the issuing session (default session when
        omitted).
        """
        session = self._resolve_session(session)
        entry = self._prepare(sql, params, self._active_catalog(session))
        if len(entry.statements) != 1:
            raise SQLExecutionError(
                "execute() takes a single statement; use run_script()"
            )
        bound = bind_parameters(params, entry.n_params)
        return self._execute_statement(entry.statements[0], sql, bound, 0, session)

    def run_script(
        self,
        sql: str,
        params: Optional[Sequence[Any]] = None,
        session: Optional[Session] = None,
    ) -> list[Result]:
        """Execute a ``;``-separated script, returning one result each."""
        session = self._resolve_session(session)
        entry = self._prepare(sql, params, self._active_catalog(session))
        bound = bind_parameters(params, entry.n_params)
        return [
            self._execute_statement(cached, sql, bound, index, session)
            for index, cached in enumerate(entry.statements)
        ]

    def _active_catalog(self, session: Session) -> Catalog:
        """The catalog this session's next statement reads: its open
        transaction's private fork, or the committed catalog."""
        txn = session.txn
        return self.catalog if txn is None else txn.catalog

    def executemany(
        self,
        sql: str,
        seq_of_params: Iterable[Sequence[Any]],
        session: Optional[Session] = None,
    ) -> int:
        """Execute one statement per parameter row; parse and plan once.

        The batch is atomic: a failure on row *k* rolls back rows
        ``0..k-1`` as well, leaving every table byte-identical to before
        the call (inside an explicit transaction, the transaction stays
        open at its pre-batch state).  Returns the summed rowcount
        (DB-API ``executemany`` semantics).
        """
        session = self._resolve_session(session)
        txn = session.txn
        self._check_not_aborted(session)
        self._check_writable()
        entry = self._prepare(sql, params=True, catalog=self._active_catalog(session))
        targets: list[str] = []
        for cached in entry.statements:
            if not isinstance(cached.statement, _WRITE_TYPES):
                raise SQLExecutionError(
                    "executemany only supports DDL/DML statements"
                )
            names, _ = self._write_targets(
                cached.statement, self._active_catalog(session)
            )
            targets.extend(names)
        started = time.perf_counter()
        total = 0
        logged_rows: list[list] = []
        acquired = self._acquire_locks(session, targets)
        try:
            if txn is not None:
                catalog = txn.catalog
                memento = catalog.snapshot()
                mark = len(txn.records)
                try:
                    for params in seq_of_params:
                        bound = bind_parameters(params, entry.n_params)
                        for cached in entry.statements:
                            total += self._apply_write(
                                cached.statement, bound, catalog
                            ).rowcount
                        if self._capturing_records:
                            for index in range(len(entry.statements)):
                                txn.records.append((sql, index, list(bound)))
                except Exception:
                    catalog.restore(memento)
                    del txn.records[mark:]
                    raise
                finally:
                    self.total_execution_time += time.perf_counter() - started
                txn.write_set.update(targets)
                return total
            with self._lock.write():
                memento = self.catalog.snapshot()
                try:
                    for params in seq_of_params:
                        bound = bind_parameters(params, entry.n_params)
                        for cached in entry.statements:
                            total += self._apply_write(
                                cached.statement, bound, self.catalog
                            ).rowcount
                        if self._capturing_records:
                            logged_rows.append(list(bound))
                except Exception:
                    self.catalog.restore(memento)
                    raise
                finally:
                    self.total_execution_time += time.perf_counter() - started
                commit_id = self._next_txn
                self._next_txn += 1
                records = (
                    self._batch_records(
                        sql, len(entry.statements), logged_rows, commit_id
                    )
                    if logged_rows
                    else []
                )
                durable = records and self._wal is not None
                if durable:
                    self._write_wal_commit(commit_id, records)
                for name in targets:
                    self.catalog.note_write(name)
                session.last_commit_id = commit_id
                if records:
                    self._notify_commit_hooks(commit_id, records)
                if durable:
                    self._note_commit()
            return total
        finally:
            if txn is None:
                self.locks.release(session.session_id, acquired)

    def _acquire_locks(
        self,
        session: Session,
        targets: list[str],
        cancel_event: Optional[threading.Event] = None,
    ) -> list[str]:
        """Take per-table locks for one statement's targets; a deadlock
        aborts the session's transaction (40P01) before propagating."""
        if not targets:
            return []
        deadline = None
        if self.statement_timeout_ms is not None:
            deadline = time.monotonic() + self.statement_timeout_ms / 1000.0
        try:
            return self.locks.acquire(
                session.session_id,
                targets,
                deadline=deadline,
                cancel_event=cancel_event,
            )
        except DeadlockDetected:
            if session.txn is not None:
                session.txn.aborted = True
                self.locks.release_all(session.session_id)
            raise

    # -- commit records and hooks ------------------------------------------------

    @property
    def _capturing_records(self) -> bool:
        """Whether writes must buffer redo records: a WAL needs them for
        durability, commit hooks (replication feeds) need them for
        streaming — replicated replay itself must not re-capture."""
        return (
            self._wal is not None or bool(self._commit_hooks)
        ) and not self._replaying

    def _check_writable(self, statement: Optional[ast.Statement] = None) -> None:
        if self.read_only:
            what = (
                type(statement).__name__.upper()
                if statement is not None
                else "write"
            )
            raise ReadOnlySQLTransaction(
                f"cannot execute {what} on a read-only database "
                f"(streaming replica)"
            )

    def add_commit_hook(self, hook) -> None:
        """Register ``hook(commit_id, records)`` to run after every commit
        that produced redo records — in commit order, under the write
        latch, after local durability and install.  Replication streams
        attach here; hooks must be fast (or deliberately synchronous,
        which stalls every committer)."""
        self._commit_hooks.append(hook)

    def remove_commit_hook(self, hook) -> None:
        try:
            self._commit_hooks.remove(hook)
        except ValueError:
            pass

    def _notify_commit_hooks(self, commit_id: int, records: list[dict]) -> None:
        # hook failures must never poison an already-installed commit:
        # the write happened and (if durable) is on disk — a raising hook
        # would report an error for a transaction that committed
        for hook in list(self._commit_hooks):
            try:
                hook(commit_id, records)
            except Exception:  # pragma: no cover - defensive
                logger.exception("commit hook failed (commit %d)", commit_id)

    @staticmethod
    def _batch_records(
        sql: str, n_statements: int, rows: list[list], txn_id: int
    ) -> list[dict]:
        """Redo records for an autocommitted ``executemany`` batch."""
        if n_statements == 1:
            # compressed batch record: one entry for the whole batch
            return [{"t": "many", "txn": txn_id, "sql": sql, "rows": rows}]
        return [
            {"t": "stmt", "txn": txn_id, "sql": sql, "i": index, "p": bound}
            for bound in rows
            for index in range(n_statements)
        ]

    def _write_wal_commit(self, commit_id: int, records: list[dict]) -> None:
        """Append one commit's redo records (with begin/commit framing
        where needed) and run the configured fsync policy."""
        self.faults.check("wal.commit.begin")
        if len(records) == 1 and records[0]["t"] in ("auto", "many"):
            # self-committing single record: no framing needed
            self._wal.append(records[0])
        else:
            self._wal.append({"t": "begin", "txn": commit_id})
            for record in records:
                self._wal.append(record)
            self._wal.append({"t": "commit", "txn": commit_id})
        self._wal.commit_sync()
        self.faults.check("wal.commit.end")

    def adopt_plan_cache(self, donor: "Database") -> None:
        """Share another database's statement caches (connector reconnects).

        Safe across databases: keys embed the catalog schema version and
        fingerprint, so donor entries only match once this database has
        replayed an identical DDL history, and plans resolve relations by
        name at execution time.
        """
        self.plan_cache = donor.plan_cache
        self._normalized = donor._normalized

    def _prepare(
        self, sql: str, params: Any = None, catalog: Optional[Catalog] = None
    ) -> _CacheEntry:
        """Fetch the cached parse/plan state for *sql*, or build it.

        The cache key embeds the catalog schema version, so entries made
        against a dropped/recreated schema never resurface.  ``catalog``
        is the state the statement will read (a transaction's fork or the
        committed catalog); its ``uid`` is part of the key, so two forks
        at the same schema version — which may have diverged — can never
        share an entry, while committed catalogs (always uid 0) keep
        sharing across :meth:`adopt_plan_cache`.
        """
        catalog = self.catalog if catalog is None else catalog
        use_cache = self.plan_cache.enabled
        key: Optional[tuple] = None
        n_params: Optional[int] = None
        if use_cache or params is not None:
            with self._prepare_mutex:
                memo = self._normalized.get(sql)
                if memo is None:
                    memo = normalize_sql(sql)
                    self._normalized[sql] = memo
                    while len(self._normalized) > 4 * max(self.plan_cache.maxsize, 1):
                        self._normalized.popitem(last=False)
                else:
                    self._normalized.move_to_end(sql)
            normalized, n_params = memo
            if use_cache:
                key = (
                    normalized,
                    self.profile.name,
                    self.optimize,
                    catalog.schema_version,
                    catalog.stats_version,
                    catalog.index_epoch,
                    catalog.schema_fingerprint(),
                    catalog.uid,
                )
                entry = self.plan_cache.get(key)
                if entry is not None:
                    return entry
        entry = _CacheEntry(
            [_CachedStatement(s) for s in parse_script(sql)], n_params
        )
        if key is not None:
            self.plan_cache.put(key, entry)
        return entry

    def explain(self, sql: str) -> str:
        """Plan a SELECT and return the (pruned) plan tree as text."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise SQLExecutionError("EXPLAIN only supports SELECT statements")
        with self._lock.read():
            plan = self._plan_select(statement)
        return plan.to_text()

    # -- statement dispatch -----------------------------------------------------

    def _check_not_aborted(self, session: Session) -> None:
        if session.in_aborted_transaction:
            raise TransactionError(
                "current transaction is aborted, commands ignored until "
                "end of transaction block",
                sqlstate="25P02",
            )

    def _execute_statement(
        self,
        cached: _CachedStatement,
        sql: str,
        params: tuple = (),
        index: int = 0,
        session: Optional[Session] = None,
    ) -> Result:
        session = self._resolve_session(session)
        statement = cached.statement
        if not isinstance(statement, (ast.Commit, ast.Rollback)):
            self._check_not_aborted(session)
        started = time.perf_counter()
        try:
            if isinstance(statement, ast.Select):
                txn = session.txn
                if txn is not None:
                    # the fork is private to this session: no latch needed
                    if cached.plan is None:
                        cached.plan = self._plan_select(statement, txn.catalog)
                    result = self._execute_select_plan(
                        cached.plan, params, session, txn.catalog
                    )
                else:
                    with self._lock.read():
                        if cached.plan is None:
                            cached.plan = self._plan_select(statement)
                        result = self._execute_select_plan(
                            cached.plan, params, session, self.catalog
                        )
            elif isinstance(statement, _TXN_TYPES):
                result = self._execute_txn_control(statement, session)
            elif isinstance(statement, _WRITE_TYPES):
                result = self._execute_write(
                    statement, sql, index, params, session
                )
            else:
                raise SQLExecutionError(
                    f"unsupported statement {type(statement).__name__}"
                )
        finally:
            self.total_execution_time += time.perf_counter() - started
        result.statement = sql.strip().split("\n", 1)[0][:120]
        return result

    def _write_targets(
        self, statement: ast.Statement, catalog: Catalog
    ) -> tuple[list[str], list[str]]:
        """(locked-and-installed, conflict-checked-only) relation names of
        one write statement.  A view's referenced relations land in the
        check set: the view's stored text is replayed at commit-order
        position, so the relations it reads must not have been rewritten
        by a concurrent committer."""
        if isinstance(statement, ast.CreateTable):
            return [statement.name], []
        if isinstance(statement, ast.CreateView):
            return (
                [statement.name],
                sorted(_referenced_relations(statement.query)),
            )
        if isinstance(statement, ast.Insert):
            return [statement.table], []
        if isinstance(statement, ast.Copy):
            return [statement.table], []
        if isinstance(statement, (ast.Update, ast.Delete)):
            return [statement.table], []
        if isinstance(statement, ast.CreateIndex):
            return [statement.table], []
        if isinstance(statement, ast.DropIndex):
            # locking the indexed table serialises the drop against DML
            if catalog.has_index(statement.name):
                return [catalog.index(statement.name).table], []
            return [], []  # missing index: IF EXISTS no-op or a plain error
        if isinstance(statement, ast.Drop):
            return [statement.name], []
        if isinstance(statement, ast.Train):
            # the model name is installed; the relations the training
            # query reads are conflict-checked (first-committer-wins,
            # like a view's referenced relations)
            return (
                [statement.name],
                sorted(_referenced_relations(statement.query)),
            )
        if isinstance(statement, ast.DropModel):
            return [statement.name], []
        if isinstance(statement, ast.Analyze):
            if statement.table is not None:
                return [statement.table], []
            return list(catalog.table_names), []
        raise SQLExecutionError(
            f"unsupported statement {type(statement).__name__}"
        )

    def _execute_write(
        self,
        statement: ast.Statement,
        sql: str,
        index: int,
        params: tuple,
        session: Session,
    ) -> Result:
        self._check_writable(statement)
        txn = session.txn
        targets, checks = self._write_targets(
            statement, self._active_catalog(session)
        )
        with session.statement_guard() as cancel_event:
            acquired = self._acquire_locks(session, targets, cancel_event)
        if txn is not None:
            memento = txn.catalog.snapshot()
            try:
                result = self._apply_write(statement, params, txn.catalog)
            except Exception:
                # statement-level atomicity: a failing DML/DDL statement
                # leaves the fork exactly as it was before it started
                txn.catalog.restore(memento)
                raise
            txn.write_set.update(targets)
            txn.check_set.update(checks)
            if self._capturing_records:
                txn.records.append((sql, index, list(params)))
            return result
        try:
            with self._lock.write():
                memento = self.catalog.snapshot()
                try:
                    result = self._apply_write(statement, params, self.catalog)
                except Exception:
                    self.catalog.restore(memento)
                    raise
                self._log_write(sql, index, params, session, targets)
            return result
        finally:
            # autocommit locks are transient: release exactly what this
            # statement newly took (a surrounding txn's locks persist)
            self.locks.release(session.session_id, acquired)

    def _apply_write(
        self,
        statement: ast.Statement,
        params: tuple = (),
        catalog: Optional[Catalog] = None,
    ) -> Result:
        catalog = self.catalog if catalog is None else catalog
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement, catalog)
        if isinstance(statement, ast.CreateView):
            return self._execute_create_view(statement, catalog)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, params, catalog)
        if isinstance(statement, ast.Copy):
            return self._execute_copy(statement, catalog)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement, params, catalog)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement, params, catalog)
        if isinstance(statement, ast.CreateIndex):
            return self._execute_create_index(statement, catalog)
        if isinstance(statement, ast.DropIndex):
            catalog.drop_index(statement.name, statement.if_exists)
            return Result()
        if isinstance(statement, ast.Drop):
            catalog.drop(statement.name, statement.kind, statement.if_exists)
            return Result()
        if isinstance(statement, ast.Train):
            return self._execute_train(statement, params, catalog)
        if isinstance(statement, ast.DropModel):
            catalog.drop_model(statement.name, statement.if_exists)
            return Result()
        if isinstance(statement, ast.Analyze):
            names = catalog.analyze(statement.table)
            return Result(rowcount=len(names))
        raise SQLExecutionError(
            f"unsupported statement {type(statement).__name__}"
        )

    def _execute_txn_control(
        self, statement: ast.Statement, session: Session
    ) -> Result:
        if isinstance(statement, ast.Begin):
            self._begin(session)
        elif isinstance(statement, ast.Commit):
            self._require_txn(session, "COMMIT")
            self._commit_session(session)
        elif isinstance(statement, ast.Rollback):
            self._require_txn(session, "ROLLBACK")
            self._rollback_session(session)
        elif isinstance(statement, ast.Savepoint):
            self._savepoint(session, statement.name)
        elif isinstance(statement, ast.RollbackTo):
            self._rollback_to(session, statement.name)
        elif isinstance(statement, ast.ReleaseSavepoint):
            self._release_savepoint(session, statement.name)
        else:  # ast.Checkpoint
            with self._lock.write():
                self._checkpoint_locked(session)
        return Result()

    # -- transactions -----------------------------------------------------------

    def begin(self, session: Optional[Session] = None) -> None:
        """Open an explicit transaction (``BEGIN``)."""
        self._begin(self._resolve_session(session))

    def commit(self, session: Optional[Session] = None) -> None:
        """Commit the session's open transaction; a no-op outside one
        (DB-API convention, unlike the ``COMMIT`` statement which raises).

        May raise :class:`~repro.errors.SerializationFailure` (40001) if a
        concurrent session committed a conflicting write first; the
        transaction is rolled back and should be retried."""
        session = self._resolve_session(session)
        if session.txn is not None:
            self._commit_session(session)

    def rollback(self, session: Optional[Session] = None) -> None:
        """Roll back the session's open transaction; a no-op outside one."""
        session = self._resolve_session(session)
        if session.txn is not None:
            self._rollback_session(session)

    def checkpoint(self, session: Optional[Session] = None) -> None:
        """Snapshot the catalog and reset the WAL (``CHECKPOINT``)."""
        session = self._resolve_session(session)
        with self._lock.write():
            self._checkpoint_locked(session)

    def _require_txn(self, session: Session, what: str) -> Transaction:
        if session.txn is None:
            raise TransactionError(
                f"{what}: no transaction in progress", sqlstate="25P01"
            )
        return session.txn

    def _begin(self, session: Session) -> None:
        if session.txn is not None:
            raise TransactionError(
                "there is already a transaction in progress", sqlstate="25001"
            )
        # the read latch keeps the fork capture consistent (no committer
        # is mid-install); commit ids are allocated later, at COMMIT
        with self._lock.read():
            fork = self.catalog.fork()
        session.txn = Transaction(
            next(self._txn_ids),
            fork,
            dict(fork.table_versions),
            start_stats_version=fork.stats_version,
        )

    def _commit_session(self, session: Session) -> None:
        txn = session.txn
        if txn.aborted:
            # PostgreSQL: COMMIT of an aborted transaction rolls back
            # quietly (reports ROLLBACK) instead of raising again
            self._rollback_session(session)
            return
        names = sorted(txn.write_set | txn.check_set)
        try:
            with self._lock.write():
                for name in names:
                    if self.catalog.table_versions.get(
                        name
                    ) != txn.start_versions.get(name):
                        raise SerializationFailure(
                            f"could not serialize access due to concurrent "
                            f"update of relation {name!r}; retry the "
                            f"transaction"
                        )
                commit_id = self._next_txn
                self._next_txn += 1
                records = [
                    {"t": "stmt", "txn": commit_id, "sql": sql, "i": index,
                     "p": bound}
                    for sql, index, bound in txn.records
                ]
                flushed = bool(records) and self._wal is not None
                if flushed:
                    self._write_wal_commit(commit_id, records)
                self.faults.check("commit.install")
                for name in sorted(txn.write_set):
                    self.catalog.adopt_relation(name, txn.catalog)
                    self.catalog.note_write(name)
                if txn.catalog.stats_version != txn.start_stats_version:
                    self.catalog.stats_version += 1
                self._refresh_committed_matviews(txn.write_set)
                session.last_commit_id = commit_id
                session.txn = None
                if records:
                    self._notify_commit_hooks(commit_id, records)
                if flushed:
                    self._note_commit()
        except SerializationFailure:
            session.txn = None
            raise
        finally:
            if session.txn is None:
                self.locks.release_all(session.session_id)

    def _rollback_session(self, session: Session) -> None:
        # the fork is simply discarded; committed state never saw the txn
        session.txn = None
        self.locks.release_all(session.session_id)

    def _savepoint(self, session: Session, name: str) -> None:
        txn = self._require_txn(session, "SAVEPOINT")
        txn.savepoints.append(
            SavepointState(name, txn.catalog.snapshot(), len(txn.records))
        )

    def _find_savepoint(self, txn: Transaction, name: str) -> int:
        # PostgreSQL: duplicate names mask; lookups find the newest one
        for idx in range(len(txn.savepoints) - 1, -1, -1):
            if txn.savepoints[idx].name == name:
                return idx
        raise TransactionError(
            f"savepoint {name!r} does not exist", sqlstate="3B001"
        )

    def _rollback_to(self, session: Session, name: str) -> None:
        txn = self._require_txn(session, "ROLLBACK TO SAVEPOINT")
        idx = self._find_savepoint(txn, name)
        savepoint = txn.savepoints[idx]
        txn.catalog.restore(savepoint.memento)
        # the savepoint survives and can be rolled back to again; the
        # undone statements must never reach the WAL.  write_set keeps
        # the undone targets — conservative (at worst a spurious 40001),
        # and their fork state now equals the savepoint's.
        del txn.savepoints[idx + 1 :]
        del txn.records[savepoint.record_mark :]

    def _release_savepoint(self, session: Session, name: str) -> None:
        txn = self._require_txn(session, "RELEASE SAVEPOINT")
        idx = self._find_savepoint(txn, name)
        del txn.savepoints[idx:]

    # -- durability -------------------------------------------------------------

    def _log_write(
        self,
        sql: str,
        index: int,
        params: tuple,
        session: Session,
        targets: list[str],
    ) -> None:
        """WAL-commit one autocommitted write and stamp its commit id
        (explicit transactions buffer records and flush at COMMIT)."""
        commit_id = self._next_txn
        self._next_txn += 1
        # "auto" compresses begin+stmt+commit into one self-committing
        # record
        records = (
            [{"t": "auto", "txn": commit_id, "sql": sql, "i": index,
              "p": list(params)}]
            if self._capturing_records
            else []
        )
        durable = bool(records) and self._wal is not None
        if durable:
            self._write_wal_commit(commit_id, records)
        self.faults.check("commit.install")
        for name in targets:
            self.catalog.note_write(name)
        session.last_commit_id = commit_id
        if records:
            self._notify_commit_hooks(commit_id, records)
        if durable:
            self._note_commit()

    def _note_commit(self) -> None:
        self._commits_since_checkpoint += 1
        if (
            self.checkpoint_every is not None
            and self._commits_since_checkpoint >= self.checkpoint_every
        ):
            self._checkpoint_locked()

    def _checkpoint_locked(self, session: Optional[Session] = None) -> None:
        if self._wal is None:
            raise DurabilityError(
                "CHECKPOINT requires a durable database (wal_path=...)"
            )
        if session is not None and session.txn is not None:
            raise TransactionError(
                "CHECKPOINT cannot run inside a transaction", sqlstate="25001"
            )
        self.faults.check("checkpoint.begin")
        tables, views, stats, indexes, models = self.catalog.export_state()
        payload = {
            "tables": tables,
            "views": views,
            "stats": stats,
            "indexes": indexes,
            "models": models,
            "last_txn": self._next_txn - 1,
        }
        write_checkpoint(self.wal_path + ".ckpt", payload, self.faults)
        # a crash between the rename above and this reset replays the old
        # WAL over the new snapshot; the recorded last_txn makes those
        # already-folded transactions no-ops
        self._wal.reset()
        self.faults.check("checkpoint.end")
        self._commits_since_checkpoint = 0

    def _recover(self) -> None:
        """Rebuild the last committed state from checkpoint + WAL.

        Replays every transaction with a commit (or self-committing)
        record, in commit order; anything after the last complete,
        checksum-valid record — a torn tail — is truncated away."""
        ckpt_path = self.wal_path + ".ckpt"
        last_txn = 0
        ckpt = read_checkpoint(ckpt_path)
        if ckpt is not None:
            self.catalog.install(
                ckpt["tables"],
                ckpt["views"],
                ckpt["stats"],
                ckpt.get("indexes", {}),  # pre-index checkpoints lack the key
                ckpt.get("models", {}),  # pre-model checkpoints likewise
            )
            last_txn = int(ckpt["last_txn"])
        records, valid_size = read_wal(self.wal_path)
        if valid_size is not None:
            truncate_wal(self.wal_path, valid_size)
        statements: dict[int, list[dict]] = {}
        committed: list[int] = []
        highest = last_txn
        for record in records:
            kind = record["t"]
            txn_id = int(record["txn"])
            highest = max(highest, txn_id)
            if kind == "begin":
                statements[txn_id] = []
            elif kind == "stmt":
                statements.setdefault(txn_id, []).append(record)
            elif kind == "commit":
                committed.append(txn_id)
            elif kind in ("auto", "many"):
                statements[txn_id] = [record]
                committed.append(txn_id)
        parsed: dict[str, list[ast.Statement]] = {}
        self._replaying = True
        try:
            for txn_id in committed:
                if txn_id <= last_txn:
                    continue  # already folded into the checkpoint snapshot
                for record in statements.get(txn_id, []):
                    self._replay_record(record, parsed)
        finally:
            self._replaying = False
        self._next_txn = highest + 1

    def _replay_record(
        self, record: dict, parsed: dict[str, list[ast.Statement]]
    ) -> None:
        sql = record["sql"]
        try:
            stmts = parsed.get(sql)
            if stmts is None:
                stmts = parse_script(sql)
                parsed[sql] = stmts
            if record["t"] == "many":
                for row in record["rows"]:
                    for statement in stmts:
                        self._apply_write(statement, tuple(row))
            else:
                statement = stmts[int(record["i"])]
                self._apply_write(statement, tuple(record.get("p", ())))
        except Exception as exc:
            raise DurabilityError(
                f"WAL replay failed for {sql!r}: {exc}"
            ) from exc

    # -- replication (replica-side apply) ---------------------------------------

    @property
    def current_commit_id(self) -> int:
        """Newest allocated commit id (the primary's stream position)."""
        return self._next_txn - 1

    def snapshot_state(self) -> dict:
        """Consistent full-state export for replication bootstrap: the
        committed catalog plus the commit id the export reflects.  Taken
        under the read latch, so no committer is mid-install."""
        with self._lock.read():
            tables, views, stats, indexes, models = self.catalog.export_state()
            return {
                "tables": tables,
                "views": views,
                "stats": stats,
                "indexes": indexes,
                "models": models,
                "last_txn": self._next_txn - 1,
            }

    def install_replica_snapshot(self, snapshot: dict) -> None:
        """Adopt a primary's full-state export wholesale (replica
        bootstrap, or re-sync after falling below the primary's retained
        stream horizon).  Resets the replay position to the snapshot's
        commit id; a durable replica folds the snapshot into its local
        checkpoint so a restart recovers to it without the stream."""
        with self._lock.write():
            self.catalog.install(
                snapshot["tables"],
                snapshot["views"],
                snapshot["stats"],
                snapshot.get("indexes", {}),
                snapshot.get("models", {}),
            )
            for name in self.catalog.table_names:
                self.catalog.note_write(name)
            last = int(snapshot["last_txn"])
            self.last_applied_commit_id = last
            self._next_txn = max(self._next_txn, last + 1)
            self._replay_parsed.clear()
            if self._wal is not None:
                self._checkpoint_locked()

    def apply_replicated_commit(
        self, commit_id: int, records: list[dict]
    ) -> bool:
        """Replay one replicated commit's redo records into committed
        state — the replication applier's entry point; bypasses
        ``read_only``.

        Idempotent: commits at or below :attr:`last_applied_commit_id`
        are skipped (duplicate delivery), so at-least-once streams
        converge.  Atomic: a failing replay restores the pre-commit
        catalog before raising.  A durable replica WAL-logs the commit
        under the same id, so local recovery rebuilds the same prefix.
        Returns True when applied, False when skipped as a duplicate."""
        with self._lock.write():
            if commit_id <= self.last_applied_commit_id:
                return False
            memento = self.catalog.snapshot()
            targets: set[str] = set()
            try:
                for record in records:
                    targets |= self._apply_replicated_record(record)
            except Exception as exc:
                self.catalog.restore(memento)
                raise DurabilityError(
                    f"replicated replay failed for commit {commit_id}: {exc}"
                ) from exc
            durable = self._wal is not None
            if durable:
                self._write_wal_commit(commit_id, records)
            for name in sorted(targets):
                self.catalog.note_write(name)
            self._refresh_committed_matviews(targets)
            self.last_applied_commit_id = commit_id
            self._next_txn = max(self._next_txn, commit_id + 1)
            # relay: a promoted (or cascading) node re-streams to its own
            # subscribers in the same commit order
            self._notify_commit_hooks(commit_id, records)
            if durable:
                self._note_commit()
        return True

    def _apply_replicated_record(self, record: dict) -> set[str]:
        """Apply one redo record to the committed catalog; returns the
        relation names whose versions must be bumped."""
        sql = record["sql"]
        stmts = self._replay_parsed.get(sql)
        if stmts is None:
            stmts = parse_script(sql)
            self._replay_parsed[sql] = stmts
            while len(self._replay_parsed) > 256:
                self._replay_parsed.popitem(last=False)
        else:
            self._replay_parsed.move_to_end(sql)
        targets: set[str] = set()
        if record["t"] == "many":
            for statement in stmts:
                names, _ = self._write_targets(statement, self.catalog)
                targets.update(names)
            for row in record["rows"]:
                for statement in stmts:
                    self._apply_write(statement, tuple(row))
        else:
            statement = stmts[int(record["i"])]
            names, _ = self._write_targets(statement, self.catalog)
            targets.update(names)
            self._apply_write(statement, tuple(record.get("p", ())))
        return targets

    # -- SELECT -------------------------------------------------------------------

    def analyze(
        self, table: Optional[str] = None, session: Optional[Session] = None
    ) -> list[str]:
        """Collect planner statistics (the ``ANALYZE`` statement's API
        twin); bumps the catalog's statistics version so cached plans
        re-optimize against the fresh statistics."""
        session = self._resolve_session(session)
        self._check_not_aborted(session)
        self._check_writable()
        target = f'ANALYZE "{table}"' if table is not None else "ANALYZE"
        txn = session.txn
        if txn is not None:
            targets = (
                [table] if table is not None else list(txn.catalog.table_names)
            )
            self._acquire_locks(session, targets)
            names = txn.catalog.analyze(table)
            txn.write_set.update(targets)
            if self._capturing_records:
                txn.records.append((target, 0, []))
            return names
        targets = (
            [table] if table is not None else list(self.catalog.table_names)
        )
        acquired = self._acquire_locks(session, targets)
        try:
            with self._lock.write():
                names = self.catalog.analyze(table)
                self._log_write(target, 0, (), session, targets)
            return names
        finally:
            self.locks.release(session.session_id, acquired)

    def _plan_select(
        self, statement: ast.Select, catalog: Optional[Catalog] = None
    ) -> PlanNode:
        plan, _ = self._plan_select_rewritten(statement, catalog)
        return plan

    def _plan_select_rewritten(
        self, statement: ast.Select, catalog: Optional[Catalog] = None
    ) -> tuple[PlanNode, list[str]]:
        """Plan a SELECT against *catalog* (committed state by default);
        with ``optimize`` on, also run the rewrite layer.

        Returns the plan plus the list of fired rewrite-rule names (empty
        when the optimizer is off or nothing applied).
        """
        catalog = self.catalog if catalog is None else catalog
        rewrites: list[str] = []
        if self.optimize:
            statement, folded = fold_select(statement)
            if folded:
                rewrites.append("constant-folding")
        planner = Planner(catalog, self.profile)
        plan = planner.plan_select(statement)
        visible = {out.key for out in plan.schema if not out.hidden}
        plan = prune_plan(plan, visible)
        prune_shared_plans(plan, planner.shared_plans, planner.subquery_plans)
        if self.optimize:
            plan = optimize_select_plan(
                plan,
                planner.shared_plans,
                planner.subquery_plans,
                catalog,
                rewrites,
            )
            # pushdown can strand projection columns only the (now moved)
            # filters needed; a second pruning pass reclaims them
            plan = prune_plan(plan, visible)
            prune_shared_plans(
                plan, planner.shared_plans, planner.subquery_plans
            )
        return plan, rewrites

    def _execute_select_plan(
        self,
        plan: PlanNode,
        params: tuple = (),
        session: Optional[Session] = None,
        catalog: Optional[Catalog] = None,
    ) -> Result:
        session = self._resolve_session(session)
        with session.statement_guard() as cancel_event:
            grant = None
            try:
                grant = self._begin_grant(cancel_event)
                ctx = self._make_context(
                    params,
                    cancel_event=cancel_event,
                    catalog=catalog,
                    memory=grant,
                )
                started = time.perf_counter()
                batch = execute_plan(plan, ctx)
                if grant is not None:
                    # the result batch is held until the grant closes —
                    # it outlives every operator
                    grant.require(batch_bytes(batch), "result.batch")
            except (OutOfMemory, ConfigurationLimitExceeded):
                session.memory_shed += 1
                raise
            finally:
                self._end_grant(grant, session)
        if ctx.stats is not None:
            ctx.stats.wall_seconds = time.perf_counter() - started
            self._record_exec_stats(ctx.stats)
        return _batch_to_result(plan, batch)

    def _record_exec_stats(self, stats: ExecStats) -> None:
        with self._stats_mutex:
            self.last_exec_stats = stats
            merge_operator_counters(self.operator_counters, stats.by_operator())

    def explain_analyze(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> str:
        """Execute a SELECT and return its plan annotated with per-operator
        actual row counts, call/morsel counts and wall time.

        For morsel-parallel operators ``calls`` counts executed morsels and
        ``time`` sums busy time across workers (so it can exceed the
        query's wall time, like PostgreSQL's parallel EXPLAIN ANALYZE).
        """
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise SQLExecutionError(
                "EXPLAIN ANALYZE only supports SELECT statements"
            )
        with self._lock.read():
            plan, rewrites = self._plan_select_rewritten(statement)
            estimates = estimate_plan_rows(plan, self.catalog)
            bound = tuple(params) if params is not None else ()
            stats = ExecStats(workers=self.workers)
            with self._default_session.statement_guard() as cancel_event:
                grant = None
                try:
                    grant = self._begin_grant(cancel_event)
                    ctx = self._make_context(
                        bound,
                        stats=stats,
                        cancel_event=cancel_event,
                        memory=grant,
                    )
                    started = time.perf_counter()
                    batch = execute_plan(plan, ctx)
                    if grant is not None:
                        grant.require(batch_bytes(batch), "result.batch")
                finally:
                    self._end_grant(grant, self._default_session)
                stats.wall_seconds = time.perf_counter() - started
        self._record_exec_stats(stats)
        if rewrites:
            counts = Counter(rewrites)
            fired = ", ".join(
                f"{name} x{count}" for name, count in sorted(counts.items())
            )
        else:
            fired = "none"
        footer = (
            f"Rewrites: {fired}\n"
            f"Execution time: {stats.wall_seconds * 1000.0:.3f} ms "
            f"(workers={self.workers})"
        )
        return stats.annotate(plan, estimates=estimates) + "\n" + footer

    # -- DDL / DML --------------------------------------------------------------------

    def _execute_create_table(
        self, statement: ast.CreateTable, catalog: Catalog
    ) -> Result:
        names = [c.name for c in statement.columns]
        types = [normalise_type(c.type_name) for c in statement.columns]
        catalog.create_table(Table(statement.name, names, types))
        return Result()

    def _execute_create_view(
        self, statement: ast.CreateView, catalog: Catalog
    ) -> Result:
        view = View(statement.name, statement.query, statement.materialized)
        if statement.materialized:
            plan = self._plan_select(statement.query, catalog)
            batch = execute_plan(plan, self._make_context(catalog=catalog))
            names: list[str] = []
            data: dict[str, Vector] = {}
            for out in plan.schema:
                if out.hidden:
                    continue
                if out.name in data:
                    raise SQLExecutionError(
                        f"materialized view {view.name!r} has duplicate "
                        f"column {out.name!r}"
                    )
                names.append(out.name)
                data[out.name] = batch.columns[out.key]
            view.snapshot = (names, data, batch.length)
        catalog.create_view(view)
        return Result()

    def _execute_insert(
        self, statement: ast.Insert, params: tuple = (), catalog: Optional[Catalog] = None
    ) -> Result:
        catalog = self.catalog if catalog is None else catalog
        table = catalog.table(statement.table)
        columns = statement.columns or [
            name
            for name, storage in zip(table.column_names, table.column_types)
            if storage != "serial" or statement.columns
        ]
        rows: list[dict[str, Any]] = []
        for row_exprs in statement.rows:
            if len(row_exprs) != len(columns):
                raise SQLExecutionError(
                    f"INSERT row has {len(row_exprs)} values, "
                    f"expected {len(columns)}"
                )
            row = {}
            for name, expr in zip(columns, row_exprs):
                row[name] = _literal_value(expr, params)
            rows.append(row)
        table.append_rows(rows)
        catalog.refresh_indexes(statement.table)
        catalog.bump_version()
        self._invalidate_dependent_snapshots(statement.table, catalog)
        return Result(rowcount=len(rows))

    def _execute_copy(
        self, statement: ast.Copy, catalog: Optional[Catalog] = None
    ) -> Result:
        catalog = self.catalog if catalog is None else catalog
        table = catalog.table(statement.table)
        columns = statement.columns or list(table.column_names)
        with open(statement.path, newline="") as handle:
            reader = csv.reader(handle, delimiter=statement.delimiter)
            raw_rows = list(reader)
        if statement.header and raw_rows:
            raw_rows = raw_rows[1:]
        raw_rows = [row for row in raw_rows if row]
        for line_no, raw in enumerate(raw_rows, start=2):
            if len(raw) != len(columns):
                raise SQLExecutionError(
                    f"{statement.path}: line {line_no} has {len(raw)} fields, "
                    f"expected {len(columns)}"
                )
        null_text = statement.null_text
        data: dict[str, list[Any]] = {}
        for j, name in enumerate(columns):
            # CSV format: the NULL text and the unquoted empty field both
            # read as NULL (PostgreSQL's CSV-mode default)
            data[name] = [
                None if row[j] == null_text or row[j] == "" else row[j]
                for row in raw_rows
            ]
        table.append_columns(data, len(raw_rows))
        catalog.refresh_indexes(statement.table)
        catalog.bump_version()
        self._invalidate_dependent_snapshots(statement.table, catalog)
        return Result(rowcount=len(raw_rows))

    def _execute_create_index(
        self, statement: ast.CreateIndex, catalog: Catalog
    ) -> Result:
        table = catalog.table(statement.table)
        columns = tuple(statement.columns)
        for column in columns:
            table.storage_of(column)  # raises CatalogError on unknown columns
        method = _resolve_index_method(statement.method, len(columns))
        index = build_index(
            statement.name, table, columns, statement.unique, method
        )
        catalog.create_index(index)
        return Result()

    def _execute_train(
        self, statement: ast.Train, params: tuple, catalog: Catalog
    ) -> Result:
        """Run the in-database trainer and store the fitted model.

        The trainer's iteration/histogram queries execute against
        *catalog* (the transaction's fork, or committed state under the
        write latch) through a runner that never re-takes the catalog
        latch — `_apply_write` already holds whatever protection the
        calling path needs.  Retraining an existing model name replaces
        it (statement atomicity makes a failed retrain keep the old one).
        """
        from repro.sqldb import ml_train

        options = {
            key: _literal_value(expr, params)
            for key, expr in statement.options
        }

        # one grant covers the whole training loop: every iteration's
        # aggregate query accounts (and may spill) against it
        grant = self._begin_grant()

        def run(select: ast.Select) -> Result:
            plan = self._plan_select(select, catalog)
            batch = execute_plan(
                plan, self._make_context(params, catalog=catalog, memory=grant)
            )
            return _batch_to_result(plan, batch)

        try:
            model = ml_train.train_model(
                statement.name, statement.query, options, run
            )
        finally:
            self._end_grant(grant)
        catalog.create_model(model)
        return Result(rowcount=model.n_iter)

    def model(self, name: str, session: Optional[Session] = None):
        """The stored :class:`~repro.sqldb.catalog.TrainedModel` named
        *name*, as the session's snapshot sees it."""
        return self._active_catalog(self._resolve_session(session)).model(name)

    def model_names(self, session: Optional[Session] = None) -> list[str]:
        """Stored model names visible to the session's snapshot."""
        return self._active_catalog(self._resolve_session(session)).model_names

    def model_estimator(self, name: str, session: Optional[Session] = None):
        """Load a stored model back into a fitted ``repro.learn``
        estimator (predict/score ready)."""
        from repro.sqldb import ml_train

        return ml_train.model_to_estimator(self.model(name, session))

    def _dml_predicate_mask(
        self,
        table: Table,
        where: Optional[ast.Expr],
        params: tuple,
        catalog: Catalog,
    ) -> tuple[np.ndarray, Batch, Scope]:
        """Evaluate a DML WHERE clause over the whole table.

        Returns the boolean row mask (true = row affected) plus the batch
        and scope so UPDATE can reuse them for its assignment expressions.
        """
        entries = [
            ScopeEntry(table.name, name, name) for name in table.column_names
        ]
        entries.append(ScopeEntry(table.name, CTID, CTID, hidden=True))
        scope = Scope(entries)
        columns = {name: table.columns[name] for name in table.column_names}
        columns[CTID] = table.ctid
        batch = Batch(table.n_rows, columns)
        if where is None:
            return np.ones(table.n_rows, dtype=bool), batch, scope
        planner = Planner(catalog, self.profile)
        predicate = planner.compile_expr(where, scope, {})
        ctx = self._make_context(params, catalog=catalog)
        result = predicate(batch, ctx)
        mask = result.values.astype(bool, copy=True)
        mask &= ~result.nulls
        return mask, batch, scope

    def _execute_update(
        self, statement: ast.Update, params: tuple, catalog: Catalog
    ) -> Result:
        table = catalog.table(statement.table)
        seen: set[str] = set()
        for column, _ in statement.assignments:
            table.storage_of(column)
            if column in seen:
                raise SQLExecutionError(
                    f"column {column!r} assigned more than once in UPDATE"
                )
            seen.add(column)
        mask, batch, scope = self._dml_predicate_mask(
            table, statement.where, params, catalog
        )
        affected = int(mask.sum())
        if affected:
            planner = Planner(catalog, self.profile)
            ctx = self._make_context(params, catalog=catalog)
            positions = np.flatnonzero(mask)
            for column, expr in statement.assignments:
                # all assignments see the pre-statement row images
                compiled = planner.compile_expr(expr, scope, {})
                fresh = compiled(batch, ctx)
                storage = table.storage_of(column)
                old = table.columns[column]
                merged = old.tolist()
                for pos in positions:
                    raw = fresh.item(int(pos))
                    merged[int(pos)] = (
                        None if raw is None else coerce_to_type(raw, storage)
                    )
                table.columns[column] = from_values(merged)
        catalog.refresh_indexes(statement.table)
        catalog.bump_version()
        self._invalidate_dependent_snapshots(statement.table, catalog)
        return Result(rowcount=affected)

    def _execute_delete(
        self, statement: ast.Delete, params: tuple, catalog: Catalog
    ) -> Result:
        table = catalog.table(statement.table)
        mask, _, _ = self._dml_predicate_mask(
            table, statement.where, params, catalog
        )
        removed = int(mask.sum())
        if removed:
            keep = np.flatnonzero(~mask)
            for name in table.column_names:
                # fresh vectors: forks/mementos sharing the old ones are safe
                table.columns[name] = gather(table.columns[name], keep)
            table.n_rows = len(keep)
        catalog.refresh_indexes(statement.table)
        catalog.bump_version()
        self._invalidate_dependent_snapshots(statement.table, catalog)
        return Result(rowcount=removed)

    def _recompute_snapshot(self, view: View, catalog: Catalog) -> None:
        """Re-materialise one view's cached result against *catalog*."""
        plan = self._plan_select(view.query, catalog)
        batch = execute_plan(plan, self._make_context(catalog=catalog))
        names = [out.name for out in plan.schema if not out.hidden]
        data = {
            out.name: batch.columns[out.key]
            for out in plan.schema
            if not out.hidden
        }
        view.snapshot = (names, data, batch.length)

    def _invalidate_dependent_snapshots(
        self, changed_table: str, catalog: Optional[Catalog] = None
    ) -> None:
        """Refresh materialised views that (transitively) read a table.

        PostgreSQL keeps stale snapshots until ``REFRESH MATERIALIZED
        VIEW``; the transpiler never mutates base tables after creating
        views over them, so eager dependency-aware refresh is a safe
        simplification.
        """
        catalog = self.catalog if catalog is None else catalog
        dirty = {changed_table}
        # views may reference other views; iterate until fixpoint
        ordered = list(catalog.view_names)
        changed = True
        refreshed: set[str] = set()
        while changed:
            changed = False
            for name in ordered:
                if name in refreshed:
                    continue
                view = catalog.resolve(name)
                if not isinstance(view, View):
                    continue
                references = _referenced_relations(view.query)
                if references & dirty:
                    dirty.add(name)
                    refreshed.add(name)
                    changed = True
                    if view.materialized:
                        self._recompute_snapshot(view, catalog)

    def _refresh_committed_matviews(self, write_set: set[str]) -> None:
        """After a transaction's relations are installed, bring the
        committed catalog's materialised views back in line.

        A matview the transaction itself created/refreshed was computed
        against the *fork*; concurrent committers may have changed its
        inputs since, so its snapshot is recomputed against committed
        state — exactly what a serial replay at this commit-order
        position would produce.  Matviews *depending* on installed
        relations refresh through the usual dependency walk.  Runs under
        the write latch."""
        for name in sorted(write_set):
            if name in self.catalog.view_names:
                view = self.catalog.resolve(name)
                if isinstance(view, View) and view.materialized:
                    self._recompute_snapshot(view, self.catalog)
            self._invalidate_dependent_snapshots(name, self.catalog)


def _referenced_relations(select: ast.Select) -> set[str]:
    """All table/view/CTE names a SELECT references (transitively in its
    own text, not through the catalog)."""
    names: set[str] = set()

    def walk_source(source: ast.TableSource) -> None:
        if isinstance(source, ast.NamedTable):
            names.add(source.name)
        elif isinstance(source, ast.SubquerySource):
            walk_select(source.query)
        elif isinstance(source, ast.JoinSource):
            walk_source(source.left)
            walk_source(source.right)
            if source.condition is not None:
                walk_expr(source.condition)

    def walk_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.ScalarSubquery):
            walk_select(expr.query)
        elif isinstance(expr, ast.BinaryOp):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, ast.UnaryOp):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.IsNull):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.InList):
            walk_expr(expr.operand)
            for item in expr.items:
                walk_expr(item)
        elif isinstance(expr, ast.Between):
            walk_expr(expr.operand)
            walk_expr(expr.low)
            walk_expr(expr.high)
        elif isinstance(expr, ast.Case):
            for condition, result in expr.whens:
                walk_expr(condition)
                walk_expr(result)
            if expr.else_ is not None:
                walk_expr(expr.else_)
        elif isinstance(expr, ast.Cast):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.FuncCall):
            for arg in expr.args:
                walk_expr(arg)

    def walk_select(node: ast.Select) -> None:
        for cte in node.ctes:
            walk_select(cte.query)
        for source in node.sources:
            walk_source(source)
        for item in node.items:
            if not isinstance(item.expr, ast.Star):
                walk_expr(item.expr)
        if node.where is not None:
            walk_expr(node.where)
        for expr in node.group_by:
            walk_expr(expr)
        if node.having is not None:
            walk_expr(node.having)
        for order in node.order_by:
            walk_expr(order.expr)
        if node.union_all_with is not None:
            walk_select(node.union_all_with)

    walk_select(select)
    return names


def _literal_value(expr: ast.Expr, params: tuple = ()) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Parameter):
        try:
            return params[expr.index]
        except IndexError:
            raise SQLExecutionError(
                f"statement parameter ${expr.index + 1} was not bound"
            ) from None
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _literal_value(expr.operand, params)
        if isinstance(inner, (int, float)):
            return -inner
    raise SQLExecutionError("values must be literals or parameters")


def _batch_to_result(plan: PlanNode, batch: Batch) -> Result:
    visible = [out for out in plan.schema if not out.hidden]
    columns = [out.name for out in visible]
    converted = []
    for out in visible:
        vector = batch.columns[out.key]
        values = vector.values
        if values.dtype.kind == "f":
            # integral floats surface as Python ints (like psycopg2 would
            # for INT columns); done vectorised for large results
            as_object = values.astype(object)
            integral = np.isfinite(values) & (np.floor(values) == values)
            if integral.any():
                ints = values[integral].astype(np.int64)
                as_object[integral] = ints
        elif values.dtype.kind == "b":
            as_object = values.astype(object)
        else:
            as_object = values.copy()
        if vector.nulls.any():
            as_object[vector.nulls] = None
        converted.append(as_object)
    rows = list(zip(*converted)) if converted else []
    return Result(columns=columns, rows=rows, rowcount=batch.length)
