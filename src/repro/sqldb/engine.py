"""Database façade: statement execution over a catalog with a profile.

``Database("postgres")`` behaves like the paper's PostgreSQL 12 (CTEs
materialise by default, operators materialise their outputs, views inline);
``Database("umbra")`` behaves like Umbra (everything inlines and pipelines).
"""

from __future__ import annotations

import csv
import os
import time
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.errors import SQLExecutionError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.catalog import Catalog, Table, View, normalise_type
from repro.sqldb.executor import ExecContext, execute_plan
from repro.sqldb.optimizer import (
    estimate_plan_rows,
    fold_select,
    optimize_select_plan,
    prune_plan,
    prune_shared_plans,
)
from repro.sqldb.parser import parse_script, parse_statement
from repro.sqldb.plan import Batch, PlanNode
from repro.sqldb.planner import Planner
from repro.sqldb.prepared import bind_parameters, normalize_sql
from repro.sqldb.profile import POSTGRES, Profile, profile_by_name
from repro.sqldb.stats import ExecStats, merge_operator_counters
from repro.sqldb.vector import Vector

__all__ = ["Database", "PlanCache", "Result", "resolve_workers"]

#: environment variable that opts a connection into parallel execution
WORKERS_ENV = "REPRO_SQL_WORKERS"


def resolve_workers(workers: Optional[int], profile: Profile) -> int:
    """Worker count from (in precedence order) argument, environment
    variable ``REPRO_SQL_WORKERS``, then the profile default."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw is not None:
            try:
                workers = int(raw)
            except ValueError:
                raise SQLExecutionError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            workers = profile.parallelism
    return max(1, int(workers))


@dataclass
class Result:
    """Query result: column names plus Python-value row tuples."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    #: rows affected / loaded for DML, row count for queries
    rowcount: int = 0
    statement: str = ""

    def scalar(self) -> Any:
        """Single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SQLExecutionError(
                f"expected a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


@dataclass
class _CachedStatement:
    """One parsed statement plus its lazily built (pruned) plan."""

    statement: ast.Statement
    plan: Optional[PlanNode] = None


@dataclass
class _CacheEntry:
    """Cached parse/plan state for one normalized statement text."""

    statements: list[_CachedStatement]
    n_params: Optional[int] = None


class PlanCache:
    """LRU cache of parsed statements and pruned logical plans.

    Keys are ``(normalized SQL, profile name, optimizer flag, catalog
    schema version, statistics version, schema fingerprint)``: any DDL —
    and, conservatively, INSERT/COPY — bumps the schema version and any
    ``ANALYZE`` bumps the statistics version, so entries planned against
    a stale catalog (or optimized under stale statistics) stop matching
    and age out; the fingerprint keeps a cache shared across reconnects
    from matching a differently shaped schema.  ``maxsize=0`` (or
    ``enabled=False``) disables caching entirely.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self.enabled = maxsize > 0
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()

    def get(self, key: tuple) -> Optional[_CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, entry: _CacheEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}


class Database:
    """An in-process SQL database with a pluggable execution profile."""

    def __init__(
        self,
        profile: Profile | str = POSTGRES,
        plan_cache_size: int = 128,
        workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
        collect_exec_stats: bool = False,
        optimize: Optional[bool] = None,
    ) -> None:
        if isinstance(profile, str):
            profile = profile_by_name(profile)
        self.profile = profile
        #: statistics-driven rewrite layer (argument overrides the profile)
        self.optimize = profile.optimize if optimize is None else bool(optimize)
        self.catalog = Catalog()
        self.plan_cache = PlanCache(plan_cache_size)
        #: exact-text memo in front of the normalizer; normalization is
        #: schema-independent, so entries never go stale
        self._normalized: OrderedDict[str, tuple[str, int]] = OrderedDict()
        #: cumulative wall-clock seconds spent executing statements
        self.total_execution_time = 0.0
        #: morsel-driven parallelism (resolve_workers: arg > env > profile)
        self.workers = resolve_workers(workers, profile)
        self.morsel_size = (
            profile.morsel_size if morsel_size is None else max(1, int(morsel_size))
        )
        self._pool: Optional[ThreadPoolExecutor] = None
        #: when set, every SELECT records per-operator runtime stats
        self.collect_exec_stats = collect_exec_stats
        #: cumulative per-operator counters across collected executions
        self.operator_counters: dict[str, dict] = {}
        #: stats of the most recent recorded execution
        self.last_exec_stats: Optional[ExecStats] = None

    def close(self) -> None:
        """Release the worker pool (idempotent; the database stays usable
        serially and will lazily recreate the pool if needed)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> Optional[ThreadPoolExecutor]:
        if self.workers <= 1:
            return None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-sql-worker",
            )
        return self._pool

    def _make_context(
        self, params: tuple = (), stats: Optional[ExecStats] = None
    ) -> ExecContext:
        """One execution context per statement; pools and stats attach here
        so cached plans stay immutable and re-executable concurrently."""
        if stats is None and self.collect_exec_stats:
            stats = ExecStats(workers=self.workers)
        return ExecContext(
            self.catalog,
            self.profile,
            params=params,
            workers=self.workers,
            morsel_size=self.morsel_size,
            pool=self._ensure_pool(),
            stats=stats,
        )

    # -- public API ----------------------------------------------------------

    def execute(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> Result:
        """Parse and execute a single SQL statement.

        ``params`` binds positional ``?`` / ``%s`` placeholders.
        """
        entry = self._prepare(sql, params)
        if len(entry.statements) != 1:
            raise SQLExecutionError(
                "execute() takes a single statement; use run_script()"
            )
        bound = bind_parameters(params, entry.n_params)
        return self._execute_statement(entry.statements[0], sql, bound)

    def run_script(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> list[Result]:
        """Execute a ``;``-separated script, returning one result each."""
        entry = self._prepare(sql, params)
        bound = bind_parameters(params, entry.n_params)
        return [
            self._execute_statement(cached, sql, bound)
            for cached in entry.statements
        ]

    def executemany(
        self, sql: str, seq_of_params: Iterable[Sequence[Any]]
    ) -> int:
        """Execute one statement per parameter row; parse and plan once.

        Returns the summed rowcount (DB-API ``executemany`` semantics).
        """
        entry = self._prepare(sql, params=True)
        total = 0
        for params in seq_of_params:
            bound = bind_parameters(params, entry.n_params)
            for cached in entry.statements:
                total += self._execute_statement(cached, sql, bound).rowcount
        return total

    def adopt_plan_cache(self, donor: "Database") -> None:
        """Share another database's statement caches (connector reconnects).

        Safe across databases: keys embed the catalog schema version and
        fingerprint, so donor entries only match once this database has
        replayed an identical DDL history, and plans resolve relations by
        name at execution time.
        """
        self.plan_cache = donor.plan_cache
        self._normalized = donor._normalized

    def _prepare(
        self, sql: str, params: Any = None
    ) -> _CacheEntry:
        """Fetch the cached parse/plan state for *sql*, or build it.

        The cache key embeds the catalog schema version, so entries made
        against a dropped/recreated schema never resurface.
        """
        use_cache = self.plan_cache.enabled
        key: Optional[tuple] = None
        n_params: Optional[int] = None
        if use_cache or params is not None:
            memo = self._normalized.get(sql)
            if memo is None:
                memo = normalize_sql(sql)
                self._normalized[sql] = memo
                while len(self._normalized) > 4 * max(self.plan_cache.maxsize, 1):
                    self._normalized.popitem(last=False)
            else:
                self._normalized.move_to_end(sql)
            normalized, n_params = memo
            if use_cache:
                key = (
                    normalized,
                    self.profile.name,
                    self.optimize,
                    self.catalog.schema_version,
                    self.catalog.stats_version,
                    self.catalog.schema_fingerprint(),
                )
                entry = self.plan_cache.get(key)
                if entry is not None:
                    return entry
        entry = _CacheEntry(
            [_CachedStatement(s) for s in parse_script(sql)], n_params
        )
        if key is not None:
            self.plan_cache.put(key, entry)
        return entry

    def explain(self, sql: str) -> str:
        """Plan a SELECT and return the (pruned) plan tree as text."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise SQLExecutionError("EXPLAIN only supports SELECT statements")
        plan = self._plan_select(statement)
        return plan.to_text()

    # -- statement dispatch -----------------------------------------------------

    def _execute_statement(
        self, cached: _CachedStatement, sql: str, params: tuple = ()
    ) -> Result:
        statement = cached.statement
        started = time.perf_counter()
        try:
            if isinstance(statement, ast.Select):
                if cached.plan is None:
                    cached.plan = self._plan_select(statement)
                result = self._execute_select_plan(cached.plan, params)
            elif isinstance(statement, ast.CreateTable):
                result = self._execute_create_table(statement)
            elif isinstance(statement, ast.CreateView):
                result = self._execute_create_view(statement)
            elif isinstance(statement, ast.Insert):
                result = self._execute_insert(statement, params)
            elif isinstance(statement, ast.Copy):
                result = self._execute_copy(statement)
            elif isinstance(statement, ast.Drop):
                self.catalog.drop(statement.name, statement.kind, statement.if_exists)
                result = Result()
            elif isinstance(statement, ast.Analyze):
                names = self.catalog.analyze(statement.table)
                result = Result(rowcount=len(names))
            else:
                raise SQLExecutionError(
                    f"unsupported statement {type(statement).__name__}"
                )
        finally:
            self.total_execution_time += time.perf_counter() - started
        result.statement = sql.strip().split("\n", 1)[0][:120]
        return result

    # -- SELECT -------------------------------------------------------------------

    def analyze(self, table: Optional[str] = None) -> list[str]:
        """Collect planner statistics (the ``ANALYZE`` statement's API
        twin); bumps the catalog's statistics version so cached plans
        re-optimize against the fresh statistics."""
        return self.catalog.analyze(table)

    def _plan_select(self, statement: ast.Select) -> PlanNode:
        plan, _ = self._plan_select_rewritten(statement)
        return plan

    def _plan_select_rewritten(
        self, statement: ast.Select
    ) -> tuple[PlanNode, list[str]]:
        """Plan a SELECT; with ``optimize`` on, also run the rewrite layer.

        Returns the plan plus the list of fired rewrite-rule names (empty
        when the optimizer is off or nothing applied).
        """
        rewrites: list[str] = []
        if self.optimize:
            statement, folded = fold_select(statement)
            if folded:
                rewrites.append("constant-folding")
        planner = Planner(self.catalog, self.profile)
        plan = planner.plan_select(statement)
        visible = {out.key for out in plan.schema if not out.hidden}
        plan = prune_plan(plan, visible)
        prune_shared_plans(plan, planner.shared_plans, planner.subquery_plans)
        if self.optimize:
            plan = optimize_select_plan(
                plan,
                planner.shared_plans,
                planner.subquery_plans,
                self.catalog,
                rewrites,
            )
            # pushdown can strand projection columns only the (now moved)
            # filters needed; a second pruning pass reclaims them
            plan = prune_plan(plan, visible)
            prune_shared_plans(
                plan, planner.shared_plans, planner.subquery_plans
            )
        return plan, rewrites

    def _execute_select_plan(self, plan: PlanNode, params: tuple = ()) -> Result:
        ctx = self._make_context(params)
        started = time.perf_counter()
        batch = execute_plan(plan, ctx)
        if ctx.stats is not None:
            ctx.stats.wall_seconds = time.perf_counter() - started
            self._record_exec_stats(ctx.stats)
        return _batch_to_result(plan, batch)

    def _record_exec_stats(self, stats: ExecStats) -> None:
        self.last_exec_stats = stats
        merge_operator_counters(self.operator_counters, stats.by_operator())

    def explain_analyze(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> str:
        """Execute a SELECT and return its plan annotated with per-operator
        actual row counts, call/morsel counts and wall time.

        For morsel-parallel operators ``calls`` counts executed morsels and
        ``time`` sums busy time across workers (so it can exceed the
        query's wall time, like PostgreSQL's parallel EXPLAIN ANALYZE).
        """
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise SQLExecutionError(
                "EXPLAIN ANALYZE only supports SELECT statements"
            )
        plan, rewrites = self._plan_select_rewritten(statement)
        estimates = estimate_plan_rows(plan, self.catalog)
        bound = tuple(params) if params is not None else ()
        stats = ExecStats(workers=self.workers)
        ctx = self._make_context(bound, stats=stats)
        started = time.perf_counter()
        execute_plan(plan, ctx)
        stats.wall_seconds = time.perf_counter() - started
        self._record_exec_stats(stats)
        if rewrites:
            counts = Counter(rewrites)
            fired = ", ".join(
                f"{name} x{count}" for name, count in sorted(counts.items())
            )
        else:
            fired = "none"
        footer = (
            f"Rewrites: {fired}\n"
            f"Execution time: {stats.wall_seconds * 1000.0:.3f} ms "
            f"(workers={self.workers})"
        )
        return stats.annotate(plan, estimates=estimates) + "\n" + footer

    # -- DDL / DML --------------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTable) -> Result:
        names = [c.name for c in statement.columns]
        types = [normalise_type(c.type_name) for c in statement.columns]
        self.catalog.create_table(Table(statement.name, names, types))
        return Result()

    def _execute_create_view(self, statement: ast.CreateView) -> Result:
        view = View(statement.name, statement.query, statement.materialized)
        if statement.materialized:
            plan = self._plan_select(statement.query)
            batch = execute_plan(plan, self._make_context())
            names: list[str] = []
            data: dict[str, Vector] = {}
            for out in plan.schema:
                if out.hidden:
                    continue
                if out.name in data:
                    raise SQLExecutionError(
                        f"materialized view {view.name!r} has duplicate "
                        f"column {out.name!r}"
                    )
                names.append(out.name)
                data[out.name] = batch.columns[out.key]
            view.snapshot = (names, data, batch.length)
        self.catalog.create_view(view)
        return Result()

    def _execute_insert(self, statement: ast.Insert, params: tuple = ()) -> Result:
        table = self.catalog.table(statement.table)
        columns = statement.columns or [
            name
            for name, storage in zip(table.column_names, table.column_types)
            if storage != "serial" or statement.columns
        ]
        rows: list[dict[str, Any]] = []
        for row_exprs in statement.rows:
            if len(row_exprs) != len(columns):
                raise SQLExecutionError(
                    f"INSERT row has {len(row_exprs)} values, "
                    f"expected {len(columns)}"
                )
            row = {}
            for name, expr in zip(columns, row_exprs):
                row[name] = _literal_value(expr, params)
            rows.append(row)
        table.append_rows(rows)
        self.catalog.bump_version()
        self._invalidate_dependent_snapshots(statement.table)
        return Result(rowcount=len(rows))

    def _execute_copy(self, statement: ast.Copy) -> Result:
        table = self.catalog.table(statement.table)
        columns = statement.columns or list(table.column_names)
        with open(statement.path, newline="") as handle:
            reader = csv.reader(handle, delimiter=statement.delimiter)
            raw_rows = list(reader)
        if statement.header and raw_rows:
            raw_rows = raw_rows[1:]
        raw_rows = [row for row in raw_rows if row]
        for line_no, raw in enumerate(raw_rows, start=2):
            if len(raw) != len(columns):
                raise SQLExecutionError(
                    f"{statement.path}: line {line_no} has {len(raw)} fields, "
                    f"expected {len(columns)}"
                )
        null_text = statement.null_text
        data: dict[str, list[Any]] = {}
        for j, name in enumerate(columns):
            # CSV format: the NULL text and the unquoted empty field both
            # read as NULL (PostgreSQL's CSV-mode default)
            data[name] = [
                None if row[j] == null_text or row[j] == "" else row[j]
                for row in raw_rows
            ]
        table.append_columns(data, len(raw_rows))
        self.catalog.bump_version()
        self._invalidate_dependent_snapshots(statement.table)
        return Result(rowcount=len(raw_rows))

    def _invalidate_dependent_snapshots(self, changed_table: str) -> None:
        """Refresh materialised views that (transitively) read a table.

        PostgreSQL keeps stale snapshots until ``REFRESH MATERIALIZED
        VIEW``; the transpiler never mutates base tables after creating
        views over them, so eager dependency-aware refresh is a safe
        simplification.
        """
        dirty = {changed_table}
        # views may reference other views; iterate until fixpoint
        ordered = list(self.catalog.view_names)
        changed = True
        refreshed: set[str] = set()
        while changed:
            changed = False
            for name in ordered:
                if name in refreshed:
                    continue
                view = self.catalog.resolve(name)
                if not isinstance(view, View):
                    continue
                references = _referenced_relations(view.query)
                if references & dirty:
                    dirty.add(name)
                    refreshed.add(name)
                    changed = True
                    if view.materialized:
                        plan = self._plan_select(view.query)
                        batch = execute_plan(plan, self._make_context())
                        names = [
                            out.name for out in plan.schema if not out.hidden
                        ]
                        data = {
                            out.name: batch.columns[out.key]
                            for out in plan.schema
                            if not out.hidden
                        }
                        view.snapshot = (names, data, batch.length)


def _referenced_relations(select: ast.Select) -> set[str]:
    """All table/view/CTE names a SELECT references (transitively in its
    own text, not through the catalog)."""
    names: set[str] = set()

    def walk_source(source: ast.TableSource) -> None:
        if isinstance(source, ast.NamedTable):
            names.add(source.name)
        elif isinstance(source, ast.SubquerySource):
            walk_select(source.query)
        elif isinstance(source, ast.JoinSource):
            walk_source(source.left)
            walk_source(source.right)
            if source.condition is not None:
                walk_expr(source.condition)

    def walk_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.ScalarSubquery):
            walk_select(expr.query)
        elif isinstance(expr, ast.BinaryOp):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, ast.UnaryOp):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.IsNull):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.InList):
            walk_expr(expr.operand)
            for item in expr.items:
                walk_expr(item)
        elif isinstance(expr, ast.Between):
            walk_expr(expr.operand)
            walk_expr(expr.low)
            walk_expr(expr.high)
        elif isinstance(expr, ast.Case):
            for condition, result in expr.whens:
                walk_expr(condition)
                walk_expr(result)
            if expr.else_ is not None:
                walk_expr(expr.else_)
        elif isinstance(expr, ast.Cast):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.FuncCall):
            for arg in expr.args:
                walk_expr(arg)

    def walk_select(node: ast.Select) -> None:
        for cte in node.ctes:
            walk_select(cte.query)
        for source in node.sources:
            walk_source(source)
        for item in node.items:
            if not isinstance(item.expr, ast.Star):
                walk_expr(item.expr)
        if node.where is not None:
            walk_expr(node.where)
        for expr in node.group_by:
            walk_expr(expr)
        if node.having is not None:
            walk_expr(node.having)
        for order in node.order_by:
            walk_expr(order.expr)
        if node.union_all_with is not None:
            walk_select(node.union_all_with)

    walk_select(select)
    return names


def _literal_value(expr: ast.Expr, params: tuple = ()) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Parameter):
        try:
            return params[expr.index]
        except IndexError:
            raise SQLExecutionError(
                f"statement parameter ${expr.index + 1} was not bound"
            ) from None
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _literal_value(expr.operand, params)
        if isinstance(inner, (int, float)):
            return -inner
    raise SQLExecutionError("INSERT values must be literals or parameters")


def _batch_to_result(plan: PlanNode, batch: Batch) -> Result:
    visible = [out for out in plan.schema if not out.hidden]
    columns = [out.name for out in visible]
    converted = []
    for out in visible:
        vector = batch.columns[out.key]
        values = vector.values
        if values.dtype.kind == "f":
            # integral floats surface as Python ints (like psycopg2 would
            # for INT columns); done vectorised for large results
            as_object = values.astype(object)
            integral = np.isfinite(values) & (np.floor(values) == values)
            if integral.any():
                ints = values[integral].astype(np.int64)
                as_object[integral] = ints
        elif values.dtype.kind == "b":
            as_object = values.astype(object)
        else:
            as_object = values.copy()
        if vector.nulls.any():
            as_object[vector.nulls] = None
        converted.append(as_object)
    rows = list(zip(*converted)) if converted else []
    return Result(columns=columns, rows=rows, rowcount=batch.length)
