"""Database façade: statement execution over a catalog with a profile.

``Database("postgres")`` behaves like the paper's PostgreSQL 12 (CTEs
materialise by default, operators materialise their outputs, views inline);
``Database("umbra")`` behaves like Umbra (everything inlines and pipelines).
"""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import SQLExecutionError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.catalog import Catalog, Table, View, normalise_type
from repro.sqldb.executor import ExecContext, execute_plan
from repro.sqldb.optimizer import prune_plan, prune_shared_plans
from repro.sqldb.parser import parse_script, parse_statement
from repro.sqldb.plan import Batch, PlanNode
from repro.sqldb.planner import Planner
from repro.sqldb.profile import POSTGRES, Profile, profile_by_name
from repro.sqldb.vector import Vector

__all__ = ["Database", "Result"]


@dataclass
class Result:
    """Query result: column names plus Python-value row tuples."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    #: rows affected / loaded for DML, row count for queries
    rowcount: int = 0
    statement: str = ""

    def scalar(self) -> Any:
        """Single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SQLExecutionError(
                f"expected a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


class Database:
    """An in-process SQL database with a pluggable execution profile."""

    def __init__(self, profile: Profile | str = POSTGRES) -> None:
        if isinstance(profile, str):
            profile = profile_by_name(profile)
        self.profile = profile
        self.catalog = Catalog()
        #: cumulative wall-clock seconds spent executing statements
        self.total_execution_time = 0.0

    # -- public API ----------------------------------------------------------

    def execute(self, sql: str) -> Result:
        """Parse and execute a single SQL statement."""
        statement = parse_statement(sql)
        return self._execute_statement(statement, sql)

    def run_script(self, sql: str) -> list[Result]:
        """Execute a ``;``-separated script, returning one result each."""
        return [
            self._execute_statement(statement, sql)
            for statement in parse_script(sql)
        ]

    def explain(self, sql: str) -> str:
        """Plan a SELECT and return the (pruned) plan tree as text."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise SQLExecutionError("EXPLAIN only supports SELECT statements")
        plan = self._plan_select(statement)
        return plan.to_text()

    # -- statement dispatch -----------------------------------------------------

    def _execute_statement(self, statement: ast.Statement, sql: str) -> Result:
        started = time.perf_counter()
        try:
            if isinstance(statement, ast.Select):
                result = self._execute_select(statement)
            elif isinstance(statement, ast.CreateTable):
                result = self._execute_create_table(statement)
            elif isinstance(statement, ast.CreateView):
                result = self._execute_create_view(statement)
            elif isinstance(statement, ast.Insert):
                result = self._execute_insert(statement)
            elif isinstance(statement, ast.Copy):
                result = self._execute_copy(statement)
            elif isinstance(statement, ast.Drop):
                self.catalog.drop(statement.name, statement.kind, statement.if_exists)
                result = Result()
            else:
                raise SQLExecutionError(
                    f"unsupported statement {type(statement).__name__}"
                )
        finally:
            self.total_execution_time += time.perf_counter() - started
        result.statement = sql.strip().split("\n", 1)[0][:120]
        return result

    # -- SELECT -------------------------------------------------------------------

    def _plan_select(self, statement: ast.Select) -> PlanNode:
        planner = Planner(self.catalog, self.profile)
        plan = planner.plan_select(statement)
        visible = {out.key for out in plan.schema if not out.hidden}
        plan = prune_plan(plan, visible)
        prune_shared_plans(plan, planner.shared_plans, planner.subquery_plans)
        return plan

    def _execute_select(self, statement: ast.Select) -> Result:
        plan = self._plan_select(statement)
        ctx = ExecContext(self.catalog, self.profile)
        batch = execute_plan(plan, ctx)
        return _batch_to_result(plan, batch)

    # -- DDL / DML --------------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTable) -> Result:
        names = [c.name for c in statement.columns]
        types = [normalise_type(c.type_name) for c in statement.columns]
        self.catalog.create_table(Table(statement.name, names, types))
        return Result()

    def _execute_create_view(self, statement: ast.CreateView) -> Result:
        view = View(statement.name, statement.query, statement.materialized)
        if statement.materialized:
            plan = self._plan_select(statement.query)
            ctx = ExecContext(self.catalog, self.profile)
            batch = execute_plan(plan, ctx)
            names: list[str] = []
            data: dict[str, Vector] = {}
            for out in plan.schema:
                if out.hidden:
                    continue
                if out.name in data:
                    raise SQLExecutionError(
                        f"materialized view {view.name!r} has duplicate "
                        f"column {out.name!r}"
                    )
                names.append(out.name)
                data[out.name] = batch.columns[out.key]
            view.snapshot = (names, data, batch.length)
        self.catalog.create_view(view)
        return Result()

    def _execute_insert(self, statement: ast.Insert) -> Result:
        table = self.catalog.table(statement.table)
        columns = statement.columns or [
            name
            for name, storage in zip(table.column_names, table.column_types)
            if storage != "serial" or statement.columns
        ]
        rows: list[dict[str, Any]] = []
        for row_exprs in statement.rows:
            if len(row_exprs) != len(columns):
                raise SQLExecutionError(
                    f"INSERT row has {len(row_exprs)} values, "
                    f"expected {len(columns)}"
                )
            row = {}
            for name, expr in zip(columns, row_exprs):
                row[name] = _literal_value(expr)
            rows.append(row)
        table.append_rows(rows)
        self._invalidate_dependent_snapshots(statement.table)
        return Result(rowcount=len(rows))

    def _execute_copy(self, statement: ast.Copy) -> Result:
        table = self.catalog.table(statement.table)
        columns = statement.columns or list(table.column_names)
        with open(statement.path, newline="") as handle:
            reader = csv.reader(handle, delimiter=statement.delimiter)
            raw_rows = list(reader)
        if statement.header and raw_rows:
            raw_rows = raw_rows[1:]
        raw_rows = [row for row in raw_rows if row]
        for line_no, raw in enumerate(raw_rows, start=2):
            if len(raw) != len(columns):
                raise SQLExecutionError(
                    f"{statement.path}: line {line_no} has {len(raw)} fields, "
                    f"expected {len(columns)}"
                )
        null_text = statement.null_text
        data: dict[str, list[Any]] = {}
        for j, name in enumerate(columns):
            # CSV format: the NULL text and the unquoted empty field both
            # read as NULL (PostgreSQL's CSV-mode default)
            data[name] = [
                None if row[j] == null_text or row[j] == "" else row[j]
                for row in raw_rows
            ]
        table.append_columns(data, len(raw_rows))
        self._invalidate_dependent_snapshots(statement.table)
        return Result(rowcount=len(raw_rows))

    def _invalidate_dependent_snapshots(self, changed_table: str) -> None:
        """Refresh materialised views that (transitively) read a table.

        PostgreSQL keeps stale snapshots until ``REFRESH MATERIALIZED
        VIEW``; the transpiler never mutates base tables after creating
        views over them, so eager dependency-aware refresh is a safe
        simplification.
        """
        dirty = {changed_table}
        # views may reference other views; iterate until fixpoint
        ordered = list(self.catalog.view_names)
        changed = True
        refreshed: set[str] = set()
        while changed:
            changed = False
            for name in ordered:
                if name in refreshed:
                    continue
                view = self.catalog.resolve(name)
                if not isinstance(view, View):
                    continue
                references = _referenced_relations(view.query)
                if references & dirty:
                    dirty.add(name)
                    refreshed.add(name)
                    changed = True
                    if view.materialized:
                        plan = self._plan_select(view.query)
                        ctx = ExecContext(self.catalog, self.profile)
                        batch = execute_plan(plan, ctx)
                        names = [
                            out.name for out in plan.schema if not out.hidden
                        ]
                        data = {
                            out.name: batch.columns[out.key]
                            for out in plan.schema
                            if not out.hidden
                        }
                        view.snapshot = (names, data, batch.length)


def _referenced_relations(select: ast.Select) -> set[str]:
    """All table/view/CTE names a SELECT references (transitively in its
    own text, not through the catalog)."""
    names: set[str] = set()

    def walk_source(source: ast.TableSource) -> None:
        if isinstance(source, ast.NamedTable):
            names.add(source.name)
        elif isinstance(source, ast.SubquerySource):
            walk_select(source.query)
        elif isinstance(source, ast.JoinSource):
            walk_source(source.left)
            walk_source(source.right)
            if source.condition is not None:
                walk_expr(source.condition)

    def walk_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.ScalarSubquery):
            walk_select(expr.query)
        elif isinstance(expr, ast.BinaryOp):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, ast.UnaryOp):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.IsNull):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.InList):
            walk_expr(expr.operand)
            for item in expr.items:
                walk_expr(item)
        elif isinstance(expr, ast.Between):
            walk_expr(expr.operand)
            walk_expr(expr.low)
            walk_expr(expr.high)
        elif isinstance(expr, ast.Case):
            for condition, result in expr.whens:
                walk_expr(condition)
                walk_expr(result)
            if expr.else_ is not None:
                walk_expr(expr.else_)
        elif isinstance(expr, ast.Cast):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.FuncCall):
            for arg in expr.args:
                walk_expr(arg)

    def walk_select(node: ast.Select) -> None:
        for cte in node.ctes:
            walk_select(cte.query)
        for source in node.sources:
            walk_source(source)
        for item in node.items:
            if not isinstance(item.expr, ast.Star):
                walk_expr(item.expr)
        if node.where is not None:
            walk_expr(node.where)
        for expr in node.group_by:
            walk_expr(expr)
        if node.having is not None:
            walk_expr(node.having)
        for order in node.order_by:
            walk_expr(order.expr)
        if node.union_all_with is not None:
            walk_select(node.union_all_with)

    walk_select(select)
    return names


def _literal_value(expr: ast.Expr) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _literal_value(expr.operand)
        if isinstance(inner, (int, float)):
            return -inner
    raise SQLExecutionError("INSERT values must be literals")


def _batch_to_result(plan: PlanNode, batch: Batch) -> Result:
    visible = [out for out in plan.schema if not out.hidden]
    columns = [out.name for out in visible]
    converted = []
    for out in visible:
        vector = batch.columns[out.key]
        values = vector.values
        if values.dtype.kind == "f":
            # integral floats surface as Python ints (like psycopg2 would
            # for INT columns); done vectorised for large results
            as_object = values.astype(object)
            integral = np.isfinite(values) & (np.floor(values) == values)
            if integral.any():
                ints = values[integral].astype(np.int64)
                as_object[integral] = ints
        elif values.dtype.kind == "b":
            as_object = values.astype(object)
        else:
            as_object = values.copy()
        if vector.nulls.any():
            as_object[vector.nulls] = None
        converted.append(as_object)
    rows = list(zip(*converted)) if converted else []
    return Result(columns=columns, rows=rows, rowcount=batch.length)
