"""Database façade: statement execution over a catalog with a profile.

``Database("postgres")`` behaves like the paper's PostgreSQL 12 (CTEs
materialise by default, operators materialise their outputs, views inline);
``Database("umbra")`` behaves like Umbra (everything inlines and pipelines).
"""

from __future__ import annotations

import csv
import os
import threading
import time
from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.errors import (
    DurabilityError,
    SQLExecutionError,
    TransactionError,
)
from repro.sqldb import ast_nodes as ast
from repro.sqldb.catalog import Catalog, Table, View, normalise_type
from repro.sqldb.executor import ExecContext, execute_plan
from repro.sqldb.faults import NO_FAULTS, FaultInjector
from repro.sqldb.txn import ReadWriteLock, SavepointState, Transaction
from repro.sqldb.wal import (
    WriteAheadLog,
    read_checkpoint,
    read_wal,
    truncate_wal,
    write_checkpoint,
)
from repro.sqldb.optimizer import (
    estimate_plan_rows,
    fold_select,
    optimize_select_plan,
    prune_plan,
    prune_shared_plans,
)
from repro.sqldb.parser import parse_script, parse_statement
from repro.sqldb.plan import Batch, PlanNode
from repro.sqldb.planner import Planner
from repro.sqldb.prepared import bind_parameters, normalize_sql
from repro.sqldb.profile import POSTGRES, Profile, profile_by_name
from repro.sqldb.stats import ExecStats, merge_operator_counters
from repro.sqldb.vector import Vector

__all__ = [
    "Database",
    "PlanCache",
    "Result",
    "resolve_timeout_ms",
    "resolve_workers",
]

#: environment variable that opts a connection into parallel execution
WORKERS_ENV = "REPRO_SQL_WORKERS"

#: statements that mutate the catalog (take the exclusive lock, are
#: snapshot-protected for statement atomicity, and get WAL-logged)
_WRITE_TYPES = (
    ast.CreateTable,
    ast.CreateView,
    ast.Insert,
    ast.Copy,
    ast.Drop,
    ast.Analyze,
)

#: transaction-control statements (exclusive lock, never WAL-logged
#: themselves — only committed work reaches the log)
_TXN_TYPES = (
    ast.Begin,
    ast.Commit,
    ast.Rollback,
    ast.Savepoint,
    ast.RollbackTo,
    ast.ReleaseSavepoint,
    ast.Checkpoint,
)

#: environment variable providing a default statement timeout (ms)
TIMEOUT_ENV = "REPRO_SQL_TIMEOUT_MS"


def resolve_workers(workers: Optional[int], profile: Profile) -> int:
    """Worker count from (in precedence order) argument, environment
    variable ``REPRO_SQL_WORKERS``, then the profile default."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw is not None:
            try:
                workers = int(raw)
            except ValueError:
                raise SQLExecutionError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            workers = profile.parallelism
    return max(1, int(workers))


def resolve_timeout_ms(timeout_ms: Optional[float]) -> Optional[float]:
    """Statement timeout from the argument, else ``REPRO_SQL_TIMEOUT_MS``.

    ``None`` or a non-positive value disables the timeout (PostgreSQL's
    ``statement_timeout = 0`` convention)."""
    if timeout_ms is None:
        raw = os.environ.get(TIMEOUT_ENV)
        if raw is None:
            return None
        try:
            timeout_ms = float(raw)
        except ValueError:
            raise SQLExecutionError(
                f"{TIMEOUT_ENV} must be a number, got {raw!r}"
            ) from None
    return float(timeout_ms) if timeout_ms > 0 else None


@dataclass
class Result:
    """Query result: column names plus Python-value row tuples."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    #: rows affected / loaded for DML, row count for queries
    rowcount: int = 0
    statement: str = ""

    def scalar(self) -> Any:
        """Single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SQLExecutionError(
                f"expected a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


@dataclass
class _CachedStatement:
    """One parsed statement plus its lazily built (pruned) plan."""

    statement: ast.Statement
    plan: Optional[PlanNode] = None


@dataclass
class _CacheEntry:
    """Cached parse/plan state for one normalized statement text."""

    statements: list[_CachedStatement]
    n_params: Optional[int] = None


class PlanCache:
    """LRU cache of parsed statements and pruned logical plans.

    Keys are ``(normalized SQL, profile name, optimizer flag, catalog
    schema version, statistics version, schema fingerprint)``: any DDL —
    and, conservatively, INSERT/COPY — bumps the schema version and any
    ``ANALYZE`` bumps the statistics version, so entries planned against
    a stale catalog (or optimized under stale statistics) stop matching
    and age out; the fingerprint keeps a cache shared across reconnects
    from matching a differently shaped schema.  ``maxsize=0`` (or
    ``enabled=False``) disables caching entirely.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self.enabled = maxsize > 0
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()

    def get(self, key: tuple) -> Optional[_CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, entry: _CacheEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}


class Database:
    """An in-process SQL database with a pluggable execution profile."""

    def __init__(
        self,
        profile: Profile | str = POSTGRES,
        plan_cache_size: int = 128,
        workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
        collect_exec_stats: bool = False,
        optimize: Optional[bool] = None,
        durable: bool = False,
        wal_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        statement_timeout_ms: Optional[float] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if isinstance(profile, str):
            profile = profile_by_name(profile)
        self.profile = profile
        #: statistics-driven rewrite layer (argument overrides the profile)
        self.optimize = profile.optimize if optimize is None else bool(optimize)
        self.catalog = Catalog()
        self.plan_cache = PlanCache(plan_cache_size)
        #: exact-text memo in front of the normalizer; normalization is
        #: schema-independent, so entries never go stale
        self._normalized: OrderedDict[str, tuple[str, int]] = OrderedDict()
        #: cumulative wall-clock seconds spent executing statements
        self.total_execution_time = 0.0
        #: morsel-driven parallelism (resolve_workers: arg > env > profile)
        self.workers = resolve_workers(workers, profile)
        self.morsel_size = (
            profile.morsel_size if morsel_size is None else max(1, int(morsel_size))
        )
        self._pool: Optional[ThreadPoolExecutor] = None
        #: when set, every SELECT records per-operator runtime stats
        self.collect_exec_stats = collect_exec_stats
        #: cumulative per-operator counters across collected executions
        self.operator_counters: dict[str, dict] = {}
        #: stats of the most recent recorded execution
        self.last_exec_stats: Optional[ExecStats] = None
        #: statement timeout (arg > REPRO_SQL_TIMEOUT_MS env > off)
        self.statement_timeout_ms = resolve_timeout_ms(statement_timeout_ms)
        #: cancel events of in-flight statements (guarded by _cancel_mutex)
        self._cancel_mutex = threading.Lock()
        self._active_cancels: set[threading.Event] = set()
        #: SELECTs hold the read side for their whole execution (every
        #: in-flight morsel included); writes take the exclusive side
        self._lock = ReadWriteLock()
        #: the open explicit transaction, if any
        self._txn: Optional[Transaction] = None
        self._next_txn = 1
        #: fault injection for the durability layer (inert by default)
        self.faults = faults if faults is not None else NO_FAULTS
        #: durability: opt in with durable=True/wal_path=...
        self.durable = bool(durable) or wal_path is not None
        self.wal_path = wal_path
        self.checkpoint_every = checkpoint_every
        self._commits_since_checkpoint = 0
        self._wal: Optional[WriteAheadLog] = None
        self._replaying = False
        if self.durable:
            if not wal_path:
                raise DurabilityError("durable=True requires wal_path")
            self._recover()
            self._wal = WriteAheadLog(wal_path, self.faults)

    @property
    def in_transaction(self) -> bool:
        """True while an explicit transaction is open."""
        return self._txn is not None

    def close(self) -> None:
        """Release the worker pool and the WAL file handle (idempotent;
        the database stays usable serially and will lazily recreate the
        pool if needed — but not the WAL, mirroring a closed connection).

        Deliberately does *not* commit, checkpoint, or roll back: an open
        transaction's memory state is simply abandoned, exactly like a
        process exit, so recovery semantics stay uniform."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._wal is not None:
            self._wal.close()

    def cancel(self) -> None:
        """Cooperatively cancel every in-flight statement.

        Safe from any thread; the running statements observe the flag at
        their next operator or morsel boundary and raise
        :class:`~repro.errors.QueryCancelled`."""
        with self._cancel_mutex:
            for event in self._active_cancels:
                event.set()

    @contextmanager
    def _statement_guard(self):
        """Register a fresh cancel event for one statement execution."""
        event = threading.Event()
        with self._cancel_mutex:
            self._active_cancels.add(event)
        try:
            yield event
        finally:
            with self._cancel_mutex:
                self._active_cancels.discard(event)

    def _ensure_pool(self) -> Optional[ThreadPoolExecutor]:
        if self.workers <= 1:
            return None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-sql-worker",
            )
        return self._pool

    def _make_context(
        self,
        params: tuple = (),
        stats: Optional[ExecStats] = None,
        cancel_event: Optional[threading.Event] = None,
    ) -> ExecContext:
        """One execution context per statement; pools, stats and the
        cancellation deadline attach here so cached plans stay immutable
        and re-executable concurrently."""
        if stats is None and self.collect_exec_stats:
            stats = ExecStats(workers=self.workers)
        deadline = None
        if self.statement_timeout_ms is not None:
            deadline = time.monotonic() + self.statement_timeout_ms / 1000.0
        return ExecContext(
            self.catalog,
            self.profile,
            params=params,
            workers=self.workers,
            morsel_size=self.morsel_size,
            pool=self._ensure_pool(),
            stats=stats,
            deadline=deadline,
            cancel_event=cancel_event,
        )

    # -- public API ----------------------------------------------------------

    def execute(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> Result:
        """Parse and execute a single SQL statement.

        ``params`` binds positional ``?`` / ``%s`` placeholders.
        """
        entry = self._prepare(sql, params)
        if len(entry.statements) != 1:
            raise SQLExecutionError(
                "execute() takes a single statement; use run_script()"
            )
        bound = bind_parameters(params, entry.n_params)
        return self._execute_statement(entry.statements[0], sql, bound, 0)

    def run_script(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> list[Result]:
        """Execute a ``;``-separated script, returning one result each."""
        entry = self._prepare(sql, params)
        bound = bind_parameters(params, entry.n_params)
        return [
            self._execute_statement(cached, sql, bound, index)
            for index, cached in enumerate(entry.statements)
        ]

    def executemany(
        self, sql: str, seq_of_params: Iterable[Sequence[Any]]
    ) -> int:
        """Execute one statement per parameter row; parse and plan once.

        The batch is atomic: a failure on row *k* rolls back rows
        ``0..k-1`` as well, leaving every table byte-identical to before
        the call (inside an explicit transaction, the transaction stays
        open at its pre-batch state).  Returns the summed rowcount
        (DB-API ``executemany`` semantics).
        """
        entry = self._prepare(sql, params=True)
        for cached in entry.statements:
            if not isinstance(cached.statement, _WRITE_TYPES):
                raise SQLExecutionError(
                    "executemany only supports DDL/DML statements"
                )
        started = time.perf_counter()
        total = 0
        logged_rows: list[list] = []
        with self._lock.write():
            memento = self.catalog.snapshot()
            mark = len(self._txn.records) if self._txn is not None else 0
            try:
                for params in seq_of_params:
                    bound = bind_parameters(params, entry.n_params)
                    for cached in entry.statements:
                        total += self._apply_write(
                            cached.statement, bound
                        ).rowcount
                    if self._wal is not None:
                        if self._txn is not None:
                            for index in range(len(entry.statements)):
                                self._txn.records.append(
                                    (sql, index, list(bound))
                                )
                        else:
                            logged_rows.append(list(bound))
            except Exception:
                self.catalog.restore(memento)
                if self._txn is not None:
                    del self._txn.records[mark:]
                raise
            finally:
                self.total_execution_time += time.perf_counter() - started
            if logged_rows and self._wal is not None and self._txn is None:
                self._flush_batch(sql, len(entry.statements), logged_rows)
        return total

    def _flush_batch(
        self, sql: str, n_statements: int, rows: list[list]
    ) -> None:
        """WAL-commit an autocommitted ``executemany`` batch as one txn."""
        txn_id = self._next_txn
        self._next_txn += 1
        self.faults.check("wal.commit.begin")
        if n_statements == 1:
            # compressed batch record: one entry for the whole batch
            self._wal.append(
                {"t": "many", "txn": txn_id, "sql": sql, "rows": rows}
            )
        else:
            self._wal.append({"t": "begin", "txn": txn_id})
            for bound in rows:
                for index in range(n_statements):
                    self._wal.append(
                        {
                            "t": "stmt",
                            "txn": txn_id,
                            "sql": sql,
                            "i": index,
                            "p": bound,
                        }
                    )
            self._wal.append({"t": "commit", "txn": txn_id})
        self._wal.sync()
        self.faults.check("wal.commit.end")
        self._note_commit()

    def adopt_plan_cache(self, donor: "Database") -> None:
        """Share another database's statement caches (connector reconnects).

        Safe across databases: keys embed the catalog schema version and
        fingerprint, so donor entries only match once this database has
        replayed an identical DDL history, and plans resolve relations by
        name at execution time.
        """
        self.plan_cache = donor.plan_cache
        self._normalized = donor._normalized

    def _prepare(
        self, sql: str, params: Any = None
    ) -> _CacheEntry:
        """Fetch the cached parse/plan state for *sql*, or build it.

        The cache key embeds the catalog schema version, so entries made
        against a dropped/recreated schema never resurface.
        """
        use_cache = self.plan_cache.enabled
        key: Optional[tuple] = None
        n_params: Optional[int] = None
        if use_cache or params is not None:
            memo = self._normalized.get(sql)
            if memo is None:
                memo = normalize_sql(sql)
                self._normalized[sql] = memo
                while len(self._normalized) > 4 * max(self.plan_cache.maxsize, 1):
                    self._normalized.popitem(last=False)
            else:
                self._normalized.move_to_end(sql)
            normalized, n_params = memo
            if use_cache:
                key = (
                    normalized,
                    self.profile.name,
                    self.optimize,
                    self.catalog.schema_version,
                    self.catalog.stats_version,
                    self.catalog.schema_fingerprint(),
                )
                entry = self.plan_cache.get(key)
                if entry is not None:
                    return entry
        entry = _CacheEntry(
            [_CachedStatement(s) for s in parse_script(sql)], n_params
        )
        if key is not None:
            self.plan_cache.put(key, entry)
        return entry

    def explain(self, sql: str) -> str:
        """Plan a SELECT and return the (pruned) plan tree as text."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise SQLExecutionError("EXPLAIN only supports SELECT statements")
        with self._lock.read():
            plan = self._plan_select(statement)
        return plan.to_text()

    # -- statement dispatch -----------------------------------------------------

    def _execute_statement(
        self,
        cached: _CachedStatement,
        sql: str,
        params: tuple = (),
        index: int = 0,
    ) -> Result:
        statement = cached.statement
        started = time.perf_counter()
        try:
            if isinstance(statement, ast.Select):
                with self._lock.read():
                    if cached.plan is None:
                        cached.plan = self._plan_select(statement)
                    result = self._execute_select_plan(cached.plan, params)
            elif isinstance(statement, _TXN_TYPES):
                with self._lock.write():
                    result = self._execute_txn_control(statement)
            elif isinstance(statement, _WRITE_TYPES):
                with self._lock.write():
                    result = self._execute_write_locked(
                        statement, sql, index, params
                    )
            else:
                raise SQLExecutionError(
                    f"unsupported statement {type(statement).__name__}"
                )
        finally:
            self.total_execution_time += time.perf_counter() - started
        result.statement = sql.strip().split("\n", 1)[0][:120]
        return result

    def _execute_write_locked(
        self, statement: ast.Statement, sql: str, index: int, params: tuple
    ) -> Result:
        memento = self.catalog.snapshot()
        try:
            result = self._apply_write(statement, params)
        except Exception:
            # statement-level atomicity: a failing DML/DDL statement
            # leaves the catalog exactly as it was before it started
            self.catalog.restore(memento)
            raise
        self._log_write(sql, index, params)
        return result

    def _apply_write(
        self, statement: ast.Statement, params: tuple = ()
    ) -> Result:
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateView):
            return self._execute_create_view(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, params)
        if isinstance(statement, ast.Copy):
            return self._execute_copy(statement)
        if isinstance(statement, ast.Drop):
            self.catalog.drop(statement.name, statement.kind, statement.if_exists)
            return Result()
        if isinstance(statement, ast.Analyze):
            names = self.catalog.analyze(statement.table)
            return Result(rowcount=len(names))
        raise SQLExecutionError(
            f"unsupported statement {type(statement).__name__}"
        )

    def _execute_txn_control(self, statement: ast.Statement) -> Result:
        if isinstance(statement, ast.Begin):
            self._begin_locked()
        elif isinstance(statement, ast.Commit):
            self._require_txn("COMMIT")
            self._commit_locked()
        elif isinstance(statement, ast.Rollback):
            self._require_txn("ROLLBACK")
            self._rollback_locked()
        elif isinstance(statement, ast.Savepoint):
            self._savepoint_locked(statement.name)
        elif isinstance(statement, ast.RollbackTo):
            self._rollback_to_locked(statement.name)
        elif isinstance(statement, ast.ReleaseSavepoint):
            self._release_locked(statement.name)
        else:  # ast.Checkpoint
            self._checkpoint_locked()
        return Result()

    # -- transactions -----------------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction (``BEGIN``)."""
        with self._lock.write():
            self._begin_locked()

    def commit(self) -> None:
        """Commit the open transaction; a no-op outside one (DB-API
        convention, unlike the ``COMMIT`` statement which raises)."""
        with self._lock.write():
            if self._txn is not None:
                self._commit_locked()

    def rollback(self) -> None:
        """Roll back the open transaction; a no-op outside one."""
        with self._lock.write():
            if self._txn is not None:
                self._rollback_locked()

    def checkpoint(self) -> None:
        """Snapshot the catalog and reset the WAL (``CHECKPOINT``)."""
        with self._lock.write():
            self._checkpoint_locked()

    def _require_txn(self, what: str) -> Transaction:
        if self._txn is None:
            raise TransactionError(
                f"{what}: no transaction in progress", sqlstate="25P01"
            )
        return self._txn

    def _begin_locked(self) -> None:
        if self._txn is not None:
            raise TransactionError(
                "there is already a transaction in progress", sqlstate="25001"
            )
        txn_id = self._next_txn
        self._next_txn += 1
        self._txn = Transaction(txn_id, self.catalog.snapshot())

    def _commit_locked(self) -> None:
        txn = self._txn
        flushed = False
        if self._wal is not None and txn.records:
            self.faults.check("wal.commit.begin")
            self._wal.append({"t": "begin", "txn": txn.txn_id})
            for sql, index, bound in txn.records:
                self._wal.append(
                    {
                        "t": "stmt",
                        "txn": txn.txn_id,
                        "sql": sql,
                        "i": index,
                        "p": bound,
                    }
                )
            self._wal.append({"t": "commit", "txn": txn.txn_id})
            self._wal.sync()
            self.faults.check("wal.commit.end")
            flushed = True
        self._txn = None
        if flushed:
            self._note_commit()

    def _rollback_locked(self) -> None:
        txn = self._txn
        self._txn = None
        self.catalog.restore(txn.memento)

    def _savepoint_locked(self, name: str) -> None:
        txn = self._require_txn("SAVEPOINT")
        txn.savepoints.append(
            SavepointState(name, self.catalog.snapshot(), len(txn.records))
        )

    def _find_savepoint(self, txn: Transaction, name: str) -> int:
        # PostgreSQL: duplicate names mask; lookups find the newest one
        for idx in range(len(txn.savepoints) - 1, -1, -1):
            if txn.savepoints[idx].name == name:
                return idx
        raise TransactionError(
            f"savepoint {name!r} does not exist", sqlstate="3B001"
        )

    def _rollback_to_locked(self, name: str) -> None:
        txn = self._require_txn("ROLLBACK TO SAVEPOINT")
        idx = self._find_savepoint(txn, name)
        savepoint = txn.savepoints[idx]
        self.catalog.restore(savepoint.memento)
        # the savepoint survives and can be rolled back to again; the
        # undone statements must never reach the WAL
        del txn.savepoints[idx + 1 :]
        del txn.records[savepoint.record_mark :]

    def _release_locked(self, name: str) -> None:
        txn = self._require_txn("RELEASE SAVEPOINT")
        idx = self._find_savepoint(txn, name)
        del txn.savepoints[idx:]

    # -- durability -------------------------------------------------------------

    def _log_write(self, sql: str, index: int, params: tuple) -> None:
        """Record one successful write for redo (buffered inside an
        explicit transaction, WAL-committed immediately in autocommit)."""
        if self._wal is None or self._replaying:
            return
        if self._txn is not None:
            self._txn.records.append((sql, index, list(params)))
            return
        txn_id = self._next_txn
        self._next_txn += 1
        self.faults.check("wal.commit.begin")
        # "auto" compresses begin+stmt+commit into one self-committing record
        self._wal.append(
            {"t": "auto", "txn": txn_id, "sql": sql, "i": index,
             "p": list(params)}
        )
        self._wal.sync()
        self.faults.check("wal.commit.end")
        self._note_commit()

    def _note_commit(self) -> None:
        self._commits_since_checkpoint += 1
        if (
            self.checkpoint_every is not None
            and self._commits_since_checkpoint >= self.checkpoint_every
            and self._txn is None
        ):
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        if self._wal is None:
            raise DurabilityError(
                "CHECKPOINT requires a durable database (wal_path=...)"
            )
        if self._txn is not None:
            raise TransactionError(
                "CHECKPOINT cannot run inside a transaction", sqlstate="25001"
            )
        self.faults.check("checkpoint.begin")
        tables, views, stats = self.catalog.export_state()
        payload = {
            "tables": tables,
            "views": views,
            "stats": stats,
            "last_txn": self._next_txn - 1,
        }
        write_checkpoint(self.wal_path + ".ckpt", payload, self.faults)
        # a crash between the rename above and this reset replays the old
        # WAL over the new snapshot; the recorded last_txn makes those
        # already-folded transactions no-ops
        self._wal.reset()
        self.faults.check("checkpoint.end")
        self._commits_since_checkpoint = 0

    def _recover(self) -> None:
        """Rebuild the last committed state from checkpoint + WAL.

        Replays every transaction with a commit (or self-committing)
        record, in commit order; anything after the last complete,
        checksum-valid record — a torn tail — is truncated away."""
        ckpt_path = self.wal_path + ".ckpt"
        last_txn = 0
        ckpt = read_checkpoint(ckpt_path)
        if ckpt is not None:
            self.catalog.install(
                ckpt["tables"], ckpt["views"], ckpt["stats"]
            )
            last_txn = int(ckpt["last_txn"])
        records, valid_size = read_wal(self.wal_path)
        if valid_size is not None:
            truncate_wal(self.wal_path, valid_size)
        statements: dict[int, list[dict]] = {}
        committed: list[int] = []
        highest = last_txn
        for record in records:
            kind = record["t"]
            txn_id = int(record["txn"])
            highest = max(highest, txn_id)
            if kind == "begin":
                statements[txn_id] = []
            elif kind == "stmt":
                statements.setdefault(txn_id, []).append(record)
            elif kind == "commit":
                committed.append(txn_id)
            elif kind in ("auto", "many"):
                statements[txn_id] = [record]
                committed.append(txn_id)
        parsed: dict[str, list[ast.Statement]] = {}
        self._replaying = True
        try:
            for txn_id in committed:
                if txn_id <= last_txn:
                    continue  # already folded into the checkpoint snapshot
                for record in statements.get(txn_id, []):
                    self._replay_record(record, parsed)
        finally:
            self._replaying = False
        self._next_txn = highest + 1

    def _replay_record(
        self, record: dict, parsed: dict[str, list[ast.Statement]]
    ) -> None:
        sql = record["sql"]
        try:
            stmts = parsed.get(sql)
            if stmts is None:
                stmts = parse_script(sql)
                parsed[sql] = stmts
            if record["t"] == "many":
                for row in record["rows"]:
                    for statement in stmts:
                        self._apply_write(statement, tuple(row))
            else:
                statement = stmts[int(record["i"])]
                self._apply_write(statement, tuple(record.get("p", ())))
        except Exception as exc:
            raise DurabilityError(
                f"WAL replay failed for {sql!r}: {exc}"
            ) from exc

    # -- SELECT -------------------------------------------------------------------

    def analyze(self, table: Optional[str] = None) -> list[str]:
        """Collect planner statistics (the ``ANALYZE`` statement's API
        twin); bumps the catalog's statistics version so cached plans
        re-optimize against the fresh statistics."""
        with self._lock.write():
            names = self.catalog.analyze(table)
            target = f'ANALYZE "{table}"' if table is not None else "ANALYZE"
            self._log_write(target, 0, ())
        return names

    def _plan_select(self, statement: ast.Select) -> PlanNode:
        plan, _ = self._plan_select_rewritten(statement)
        return plan

    def _plan_select_rewritten(
        self, statement: ast.Select
    ) -> tuple[PlanNode, list[str]]:
        """Plan a SELECT; with ``optimize`` on, also run the rewrite layer.

        Returns the plan plus the list of fired rewrite-rule names (empty
        when the optimizer is off or nothing applied).
        """
        rewrites: list[str] = []
        if self.optimize:
            statement, folded = fold_select(statement)
            if folded:
                rewrites.append("constant-folding")
        planner = Planner(self.catalog, self.profile)
        plan = planner.plan_select(statement)
        visible = {out.key for out in plan.schema if not out.hidden}
        plan = prune_plan(plan, visible)
        prune_shared_plans(plan, planner.shared_plans, planner.subquery_plans)
        if self.optimize:
            plan = optimize_select_plan(
                plan,
                planner.shared_plans,
                planner.subquery_plans,
                self.catalog,
                rewrites,
            )
            # pushdown can strand projection columns only the (now moved)
            # filters needed; a second pruning pass reclaims them
            plan = prune_plan(plan, visible)
            prune_shared_plans(
                plan, planner.shared_plans, planner.subquery_plans
            )
        return plan, rewrites

    def _execute_select_plan(self, plan: PlanNode, params: tuple = ()) -> Result:
        with self._statement_guard() as cancel_event:
            ctx = self._make_context(params, cancel_event=cancel_event)
            started = time.perf_counter()
            batch = execute_plan(plan, ctx)
        if ctx.stats is not None:
            ctx.stats.wall_seconds = time.perf_counter() - started
            self._record_exec_stats(ctx.stats)
        return _batch_to_result(plan, batch)

    def _record_exec_stats(self, stats: ExecStats) -> None:
        self.last_exec_stats = stats
        merge_operator_counters(self.operator_counters, stats.by_operator())

    def explain_analyze(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> str:
        """Execute a SELECT and return its plan annotated with per-operator
        actual row counts, call/morsel counts and wall time.

        For morsel-parallel operators ``calls`` counts executed morsels and
        ``time`` sums busy time across workers (so it can exceed the
        query's wall time, like PostgreSQL's parallel EXPLAIN ANALYZE).
        """
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise SQLExecutionError(
                "EXPLAIN ANALYZE only supports SELECT statements"
            )
        with self._lock.read():
            plan, rewrites = self._plan_select_rewritten(statement)
            estimates = estimate_plan_rows(plan, self.catalog)
            bound = tuple(params) if params is not None else ()
            stats = ExecStats(workers=self.workers)
            with self._statement_guard() as cancel_event:
                ctx = self._make_context(
                    bound, stats=stats, cancel_event=cancel_event
                )
                started = time.perf_counter()
                execute_plan(plan, ctx)
                stats.wall_seconds = time.perf_counter() - started
        self._record_exec_stats(stats)
        if rewrites:
            counts = Counter(rewrites)
            fired = ", ".join(
                f"{name} x{count}" for name, count in sorted(counts.items())
            )
        else:
            fired = "none"
        footer = (
            f"Rewrites: {fired}\n"
            f"Execution time: {stats.wall_seconds * 1000.0:.3f} ms "
            f"(workers={self.workers})"
        )
        return stats.annotate(plan, estimates=estimates) + "\n" + footer

    # -- DDL / DML --------------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTable) -> Result:
        names = [c.name for c in statement.columns]
        types = [normalise_type(c.type_name) for c in statement.columns]
        self.catalog.create_table(Table(statement.name, names, types))
        return Result()

    def _execute_create_view(self, statement: ast.CreateView) -> Result:
        view = View(statement.name, statement.query, statement.materialized)
        if statement.materialized:
            plan = self._plan_select(statement.query)
            batch = execute_plan(plan, self._make_context())
            names: list[str] = []
            data: dict[str, Vector] = {}
            for out in plan.schema:
                if out.hidden:
                    continue
                if out.name in data:
                    raise SQLExecutionError(
                        f"materialized view {view.name!r} has duplicate "
                        f"column {out.name!r}"
                    )
                names.append(out.name)
                data[out.name] = batch.columns[out.key]
            view.snapshot = (names, data, batch.length)
        self.catalog.create_view(view)
        return Result()

    def _execute_insert(self, statement: ast.Insert, params: tuple = ()) -> Result:
        table = self.catalog.table(statement.table)
        columns = statement.columns or [
            name
            for name, storage in zip(table.column_names, table.column_types)
            if storage != "serial" or statement.columns
        ]
        rows: list[dict[str, Any]] = []
        for row_exprs in statement.rows:
            if len(row_exprs) != len(columns):
                raise SQLExecutionError(
                    f"INSERT row has {len(row_exprs)} values, "
                    f"expected {len(columns)}"
                )
            row = {}
            for name, expr in zip(columns, row_exprs):
                row[name] = _literal_value(expr, params)
            rows.append(row)
        table.append_rows(rows)
        self.catalog.bump_version()
        self._invalidate_dependent_snapshots(statement.table)
        return Result(rowcount=len(rows))

    def _execute_copy(self, statement: ast.Copy) -> Result:
        table = self.catalog.table(statement.table)
        columns = statement.columns or list(table.column_names)
        with open(statement.path, newline="") as handle:
            reader = csv.reader(handle, delimiter=statement.delimiter)
            raw_rows = list(reader)
        if statement.header and raw_rows:
            raw_rows = raw_rows[1:]
        raw_rows = [row for row in raw_rows if row]
        for line_no, raw in enumerate(raw_rows, start=2):
            if len(raw) != len(columns):
                raise SQLExecutionError(
                    f"{statement.path}: line {line_no} has {len(raw)} fields, "
                    f"expected {len(columns)}"
                )
        null_text = statement.null_text
        data: dict[str, list[Any]] = {}
        for j, name in enumerate(columns):
            # CSV format: the NULL text and the unquoted empty field both
            # read as NULL (PostgreSQL's CSV-mode default)
            data[name] = [
                None if row[j] == null_text or row[j] == "" else row[j]
                for row in raw_rows
            ]
        table.append_columns(data, len(raw_rows))
        self.catalog.bump_version()
        self._invalidate_dependent_snapshots(statement.table)
        return Result(rowcount=len(raw_rows))

    def _invalidate_dependent_snapshots(self, changed_table: str) -> None:
        """Refresh materialised views that (transitively) read a table.

        PostgreSQL keeps stale snapshots until ``REFRESH MATERIALIZED
        VIEW``; the transpiler never mutates base tables after creating
        views over them, so eager dependency-aware refresh is a safe
        simplification.
        """
        dirty = {changed_table}
        # views may reference other views; iterate until fixpoint
        ordered = list(self.catalog.view_names)
        changed = True
        refreshed: set[str] = set()
        while changed:
            changed = False
            for name in ordered:
                if name in refreshed:
                    continue
                view = self.catalog.resolve(name)
                if not isinstance(view, View):
                    continue
                references = _referenced_relations(view.query)
                if references & dirty:
                    dirty.add(name)
                    refreshed.add(name)
                    changed = True
                    if view.materialized:
                        plan = self._plan_select(view.query)
                        batch = execute_plan(plan, self._make_context())
                        names = [
                            out.name for out in plan.schema if not out.hidden
                        ]
                        data = {
                            out.name: batch.columns[out.key]
                            for out in plan.schema
                            if not out.hidden
                        }
                        view.snapshot = (names, data, batch.length)


def _referenced_relations(select: ast.Select) -> set[str]:
    """All table/view/CTE names a SELECT references (transitively in its
    own text, not through the catalog)."""
    names: set[str] = set()

    def walk_source(source: ast.TableSource) -> None:
        if isinstance(source, ast.NamedTable):
            names.add(source.name)
        elif isinstance(source, ast.SubquerySource):
            walk_select(source.query)
        elif isinstance(source, ast.JoinSource):
            walk_source(source.left)
            walk_source(source.right)
            if source.condition is not None:
                walk_expr(source.condition)

    def walk_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.ScalarSubquery):
            walk_select(expr.query)
        elif isinstance(expr, ast.BinaryOp):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, ast.UnaryOp):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.IsNull):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.InList):
            walk_expr(expr.operand)
            for item in expr.items:
                walk_expr(item)
        elif isinstance(expr, ast.Between):
            walk_expr(expr.operand)
            walk_expr(expr.low)
            walk_expr(expr.high)
        elif isinstance(expr, ast.Case):
            for condition, result in expr.whens:
                walk_expr(condition)
                walk_expr(result)
            if expr.else_ is not None:
                walk_expr(expr.else_)
        elif isinstance(expr, ast.Cast):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.FuncCall):
            for arg in expr.args:
                walk_expr(arg)

    def walk_select(node: ast.Select) -> None:
        for cte in node.ctes:
            walk_select(cte.query)
        for source in node.sources:
            walk_source(source)
        for item in node.items:
            if not isinstance(item.expr, ast.Star):
                walk_expr(item.expr)
        if node.where is not None:
            walk_expr(node.where)
        for expr in node.group_by:
            walk_expr(expr)
        if node.having is not None:
            walk_expr(node.having)
        for order in node.order_by:
            walk_expr(order.expr)
        if node.union_all_with is not None:
            walk_select(node.union_all_with)

    walk_select(select)
    return names


def _literal_value(expr: ast.Expr, params: tuple = ()) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Parameter):
        try:
            return params[expr.index]
        except IndexError:
            raise SQLExecutionError(
                f"statement parameter ${expr.index + 1} was not bound"
            ) from None
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _literal_value(expr.operand, params)
        if isinstance(inner, (int, float)):
            return -inner
    raise SQLExecutionError("INSERT values must be literals or parameters")


def _batch_to_result(plan: PlanNode, batch: Batch) -> Result:
    visible = [out for out in plan.schema if not out.hidden]
    columns = [out.name for out in visible]
    converted = []
    for out in visible:
        vector = batch.columns[out.key]
        values = vector.values
        if values.dtype.kind == "f":
            # integral floats surface as Python ints (like psycopg2 would
            # for INT columns); done vectorised for large results
            as_object = values.astype(object)
            integral = np.isfinite(values) & (np.floor(values) == values)
            if integral.any():
                ints = values[integral].astype(np.int64)
                as_object[integral] = ints
        elif values.dtype.kind == "b":
            as_object = values.astype(object)
        else:
            as_object = values.copy()
        if vector.nulls.any():
            as_object[vector.nulls] = None
        converted.append(as_object)
    rows = list(zip(*converted)) if converted else []
    return Result(columns=columns, rows=rows, rowcount=batch.length)
