"""WAL-streaming replication: primaries, read replicas, promotion.

The engine already produces everything a replication stream needs: every
commit's redo records are buffered for the WAL and handed — in commit
order, under the write latch — to post-commit hooks
(:meth:`~repro.sqldb.engine.Database.add_commit_hook`).  This module
turns that feed into a physical topology over the existing
length-prefixed JSON protocol:

* :class:`ReplicationManager` attaches to a database and retains a
  bounded in-memory log of ``(commit_id, records)``; the socket server
  (:class:`~repro.sqldb.server.DatabaseServer` with ``replication=``)
  serves ``replicate`` subscriptions from it — a snapshot bootstrap
  (pickled catalog export) when the subscriber starts below the retained
  horizon, then ``wal_batch`` frames in commit order, stop-and-wait
  acknowledged (``replicate_ack``), with ``wal_heartbeat`` keepalives
  while the primary is idle.
* :class:`Replica` owns a read-only :class:`~repro.sqldb.engine.Database`,
  a server for read traffic, and a background stream thread that applies
  batches via :meth:`~repro.sqldb.engine.Database.apply_replicated_commit`
  (idempotent, so at-least-once delivery converges) and reconnects with
  backoff from its last applied position after any fault — torn frame,
  dropped batch, partition, primary restart.
* :class:`Primary` bundles database + manager + server, including a
  ``kill()`` that models a crash (no drain, no goodbye) for failover
  tests.

**Stream robustness.**  Every server→replica frame carries a
per-subscription ``seq``; the replica acks the highest seq applied.  A
duplicated frame (seq ≤ last) is acked and skipped, a gap (seq jump) or
torn frame tears the connection down, and reconnect resumes from
``last_applied`` — so every network fault degenerates to reconnect +
resync, and commit application stays exactly-once because the applier
dedupes on commit id.

**Lag semantics.**  ``primary_commit_id`` on the wire is the newest
*record-bearing* commit id the manager has streamed — not the raw commit
counter, which also ticks for read-only explicit COMMITs that produce no
records and would make lag appear never to drain.  ``Replica.lag`` is
the difference between that and ``last_applied``; zero means the replica
has replayed every replicated commit the primary has produced.

**Synchronous mode.**  ``ReplicationManager(synchronous=True)`` makes
the commit hook block — commit latch held — until *some* subscriber
acknowledges the commit id (or the manager closes).  An acknowledged
commit then provably exists on at least one replica, which is the
invariant the failover chaos suite checks: promote the most-caught-up
replica and no acknowledged write is lost.  The price is writer latency
coupled to replica round-trips, and a partition stalls commits until it
heals; that is the contract synchronous replication buys.

Promotion (:meth:`Replica.promote`, or the ``promote`` wire frame)
stops the stream — the stop-and-wait protocol means there is no
unapplied buffered tail beyond the in-flight frame, which is allowed to
finish — flips the database writable, and the node's own manager (which
recorded every applied commit) starts serving downstream subscribers
from the same history.
"""

from __future__ import annotations

import base64
import pickle
import socket
import threading
import time
import zlib
from collections import deque
from typing import Any, Optional

from repro.errors import (
    CannotConnectNow,
    ProtocolViolation,
    SQLError,
)
from repro.sqldb.engine import Database
from repro.sqldb.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    exception_from_wire,
    recv_frame,
    send_frame,
)
from repro.sqldb.server import DatabaseServer

__all__ = [
    "ReplicationManager",
    "Replica",
    "Primary",
    "encode_snapshot",
    "decode_snapshot",
]


def encode_snapshot(state: dict) -> str:
    """Wire encoding of a full-state export: pickle → zlib → base64."""
    return base64.b64encode(
        zlib.compress(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
    ).decode("ascii")


def decode_snapshot(encoded: str) -> dict:
    try:
        return pickle.loads(zlib.decompress(base64.b64decode(encoded)))
    except Exception as exc:
        raise ProtocolViolation(f"undecodable snapshot frame: {exc}") from exc


class _Subscriber:
    """One downstream replica's stream state on the serving side."""

    __slots__ = ("name", "position", "acked", "needs_snapshot")

    def __init__(self, name: str, position: int, needs_snapshot: bool) -> None:
        self.name = name
        #: newest commit id sent to this subscriber
        self.position = position
        #: newest commit id the subscriber acknowledged as applied
        self.acked = position
        self.needs_snapshot = needs_snapshot


class ReplicationManager:
    """Bounded commit-order log of redo records plus subscriber registry.

    Attach one per node: on a primary it feeds downstream subscribers;
    on a replica it records every applied commit so the node can relay
    (cascading replication) and serve its own subscribers immediately
    after promotion.
    """

    def __init__(
        self,
        database: Database,
        *,
        name: str = "node",
        retain: int = 4096,
        synchronous: bool = False,
        sync_timeout_s: Optional[float] = None,
        max_batch_commits: int = 256,
    ) -> None:
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.database = database
        self.name = name
        self.retain = retain
        #: block each commit until a subscriber acknowledges it
        self.synchronous = synchronous
        #: safety valve for the synchronous wait (None = wait forever)
        self.sync_timeout_s = sync_timeout_s
        self.max_batch_commits = max_batch_commits
        self._cond = threading.Condition()
        #: (commit_id, records) in commit order, trimmed at ``retain``
        self._entries: deque[tuple[int, list]] = deque()
        #: commits at or below ``base`` predate the log (or were trimmed):
        #: a subscriber starting below it bootstraps by snapshot
        self.base = database.current_commit_id
        #: newest record-bearing commit id (the lag reference point)
        self.last_commit_id = self.base
        self._max_acked = self.base
        self._subscribers: set[_Subscriber] = set()
        self._closed = False
        self.stats = {"streamed_commits": 0, "trimmed": 0, "sync_waits": 0}
        database.add_commit_hook(self._on_commit)

    # -- commit feed (runs under the database write latch) ------------------

    def _on_commit(self, commit_id: int, records: list[dict]) -> None:
        with self._cond:
            if self._closed:
                return
            self._entries.append((commit_id, records))
            while len(self._entries) > self.retain:
                trimmed_id, _ = self._entries.popleft()
                self.base = trimmed_id
                self.stats["trimmed"] += 1
            self.last_commit_id = commit_id
            self.stats["streamed_commits"] += 1
            self._cond.notify_all()
            if not self.synchronous:
                return
            # synchronous replication: hold the commit (latch and all)
            # until some replica has durably applied it.  A partition
            # stalls writers until it heals — that is the deal.
            self.stats["sync_waits"] += 1
            deadline = (
                None
                if self.sync_timeout_s is None
                else time.monotonic() + self.sync_timeout_s
            )
            while not self._closed and self._max_acked < commit_id:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return  # acked locally only; caller opted into a valve
                self._cond.wait(remaining)

    # -- subscriptions ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def subscribe(self, name: str, start_after: int) -> _Subscriber:
        """Register a downstream subscriber resuming after commit id
        ``start_after``; positions below the retained horizon are flagged
        for snapshot bootstrap."""
        with self._cond:
            if self._closed:
                raise CannotConnectNow(
                    "replication manager is closed; cannot subscribe"
                )
            needs_snapshot = start_after < self.base
            sub = _Subscriber(name, max(start_after, 0), needs_snapshot)
            self._subscribers.add(sub)
            return sub

    def unsubscribe(self, sub: _Subscriber) -> None:
        with self._cond:
            self._subscribers.discard(sub)
            self._cond.notify_all()

    def record_ack(self, sub: _Subscriber, applied: int) -> None:
        with self._cond:
            sub.acked = max(sub.acked, int(applied))
            if sub.acked > self._max_acked:
                self._max_acked = sub.acked
                self._cond.notify_all()

    def snapshot_for(self, sub: _Subscriber) -> tuple[str, int]:
        """Full-state bootstrap for one subscriber; advances its position
        to the snapshot's commit id so the stream resumes right after."""
        state = self.database.snapshot_state()
        last_txn = int(state["last_txn"])
        encoded = encode_snapshot(state)
        with self._cond:
            sub.position = max(sub.position, last_txn)
            sub.acked = max(sub.acked, last_txn)
            sub.needs_snapshot = False
        return encoded, last_txn

    def next_batch(
        self, sub: _Subscriber, timeout: float
    ) -> Optional[tuple[list[dict], int]]:
        """Commits after the subscriber's position (bounded batch), in
        commit order; an empty list after ``timeout`` seconds of primary
        idleness (heartbeat time); ``None`` once the manager closes.

        Raises :class:`~repro.errors.ProtocolViolation` if the
        subscriber's position fell below the retained horizon (the log
        trimmed past it) — the connection tears down and the replica's
        reconnect gets a fresh snapshot."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    return None
                if sub.position < self.base:
                    raise ProtocolViolation(
                        f"subscriber {sub.name!r} fell below the retained "
                        f"horizon (position {sub.position}, base {self.base});"
                        f" resync required"
                    )
                commits = []
                for commit_id, records in self._entries:
                    if commit_id <= sub.position:
                        continue
                    commits.append({"id": commit_id, "records": records})
                    if len(commits) >= self.max_batch_commits:
                        break
                if commits:
                    sub.position = commits[-1]["id"]
                    return commits, self.last_commit_id
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], self.last_commit_id
                self._cond.wait(remaining)

    def subscriber_status(self) -> list[dict]:
        with self._cond:
            return [
                {
                    "name": sub.name,
                    "position": sub.position,
                    "acked": sub.acked,
                    "lag": max(0, self.last_commit_id - sub.acked),
                }
                for sub in self._subscribers
            ]

    def reset(self, commit_id: int) -> None:
        """Restart the log at ``commit_id`` (the node just adopted a
        snapshot: retained history predates its new state)."""
        with self._cond:
            self._entries.clear()
            self.base = commit_id
            self.last_commit_id = commit_id
            self._max_acked = max(self._max_acked, commit_id)
            self._cond.notify_all()

    def close(self) -> None:
        """Detach from the database and release every waiter — blocked
        synchronous commits and parked subscriber pumps all return.
        Call this *before* shutting the server down: a synchronous
        commit blocked in the hook holds the engine write latch."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self.database.remove_commit_hook(self._on_commit)


class Replica:
    """A read-only database continuously replaying a primary's stream.

    Owns three pieces: the replica :class:`Database` (pass ``wal_path``
    in ``database_kwargs`` for a durable replica that recovers its
    applied prefix after a crash), a :class:`DatabaseServer` answering
    read queries (writes get SQLSTATE 25006), and a stream thread that
    subscribes to the primary and applies batches.  The node's own
    :class:`ReplicationManager` records applied commits, so it can serve
    downstream subscribers — immediately relevant after
    :meth:`promote`."""

    def __init__(
        self,
        primary_address: tuple[str, int],
        *,
        name: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: Optional[str] = None,
        database: Optional[Database] = None,
        database_kwargs: Optional[dict] = None,
        server_kwargs: Optional[dict] = None,
        retain: int = 4096,
        connect_timeout_s: float = 5.0,
        recv_timeout_s: float = 10.0,
        reconnect_min_s: float = 0.05,
        reconnect_max_s: float = 1.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.primary_address = (str(primary_address[0]), int(primary_address[1]))
        self.name = name or f"replica-{id(self):x}"
        self.auth_token = auth_token
        self.connect_timeout_s = connect_timeout_s
        self.recv_timeout_s = recv_timeout_s
        self.reconnect_min_s = reconnect_min_s
        self.reconnect_max_s = reconnect_max_s
        self.max_frame_bytes = max_frame_bytes
        if database is None:
            kwargs = dict(database_kwargs or {})
            kwargs.setdefault("read_only", True)
            database = Database(**kwargs)
        self.database = database
        self.database.read_only = True
        # a durable replica that crash-recovered: its replay position is
        # whatever its local WAL rebuilt (every local commit there was a
        # replicated one)
        self.database.last_applied_commit_id = max(
            self.database.last_applied_commit_id,
            self.database.current_commit_id,
        )
        self.manager = ReplicationManager(
            self.database, name=self.name, retain=retain
        )
        self.server = DatabaseServer(
            self.database,
            host=host,
            port=port,
            replication=self.manager,
            **(server_kwargs or {}),
        )
        self.server.promote_hook = self.promote
        self.server.status_hook = self.status
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._sock_mutex = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        #: newest record-bearing primary commit id seen on the stream
        self.primary_commit_id = self.database.last_applied_commit_id
        self.connected = False
        self.promoted = False
        self.stats = {
            "reconnects": 0,
            "snapshots": 0,
            "batches": 0,
            "heartbeats": 0,
            "duplicate_frames": 0,
            "stream_errors": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    @property
    def lag(self) -> int:
        """Record-bearing commits the primary has committed but this
        replica has not applied yet (0 = fully caught up)."""
        return max(
            0, self.primary_commit_id - self.database.last_applied_commit_id
        )

    def start(self) -> "Replica":
        self.server.start()
        self._thread = threading.Thread(
            target=self._stream_loop,
            name=f"repro-sql-replica-{self.name}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop_stream(self) -> None:
        """Stop pulling from the primary (the read server stays up)."""
        self._stop.set()
        with self._sock_mutex:
            sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10.0)

    def close(self) -> None:
        """Full teardown: stream, server, manager, database."""
        self.stop_stream()
        self.manager.close()
        self.server.shutdown(drain_s=1.0)
        self.database.close()

    # -- promotion ----------------------------------------------------------

    def promote(self) -> dict:
        """Stop replicating and start accepting writes.

        Stop-and-wait streaming means the in-flight frame (if any) is
        the whole buffered tail; :meth:`stop_stream` joins the stream
        thread, so that frame finishes applying before the flip.  The
        node's manager already holds the applied history and starts
        serving downstream subscribers as the new primary."""
        self.stop_stream()
        self.database.read_only = False
        self.promoted = True
        return {"commit_id": self.database.last_applied_commit_id}

    def repoint(self, primary_address: tuple[str, int]) -> None:
        """Follow a different upstream (re-parenting after a failover).

        Swaps the primary address and kills the current stream socket;
        the stream loop reconnects to the new address and resumes from
        ``last_applied_commit_id`` (the new primary answers with a
        snapshot only if its retained log no longer covers that
        position).  Correct only when the new primary is at least as
        caught up as this replica — promote the most-caught-up node."""
        self.primary_address = (
            str(primary_address[0]), int(primary_address[1])
        )
        with self._sock_mutex:
            sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def status(self) -> dict:
        return {
            "type": "status",
            "role": "replica" if self.database.read_only else "primary",
            "name": self.name,
            "connected": self.connected,
            "promoted": self.promoted,
            "last_applied": self.database.last_applied_commit_id,
            "commit_id": self.database.current_commit_id,
            "last_commit_id": self.manager.last_commit_id,
            "primary_commit_id": self.primary_commit_id,
            "lag": self.lag,
            "subscribers": self.manager.subscriber_status(),
            "stats": dict(self.stats),
        }

    # -- the stream ---------------------------------------------------------

    def _stream_loop(self) -> None:
        backoff = self.reconnect_min_s
        while not self._stop.is_set():
            try:
                self._connect_and_stream()
                backoff = self.reconnect_min_s
            except (OSError, SQLError):
                self.stats["stream_errors"] += 1
            finally:
                self.connected = False
            if self._stop.is_set():
                return
            self.stats["reconnects"] += 1
            self._stop.wait(backoff)
            backoff = min(backoff * 2, self.reconnect_max_s)

    def _connect_and_stream(self) -> None:
        sock = socket.create_connection(
            self.primary_address, timeout=self.connect_timeout_s
        )
        with self._sock_mutex:
            self._sock = sock
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.recv_timeout_s)
            hello: dict = {"type": "hello", "version": PROTOCOL_VERSION}
            if self.auth_token is not None:
                hello["auth"] = self.auth_token
            send_frame(sock, hello)
            reply = recv_frame(sock, self.max_frame_bytes)
            if reply is None:
                raise OSError("primary closed during handshake")
            if reply["type"] == "error":
                raise exception_from_wire(reply)
            if reply["type"] != "hello_ok":
                raise ProtocolViolation(
                    f"unexpected handshake reply {reply['type']!r}"
                )
            send_frame(
                sock,
                {
                    "type": "replicate",
                    "start_after": self.database.last_applied_commit_id,
                    "name": self.name,
                },
            )
            self.connected = True
            last_seq = 0
            while not self._stop.is_set():
                frame = recv_frame(sock, self.max_frame_bytes)
                if frame is None:
                    raise OSError("primary closed the stream")
                kind = frame["type"]
                if kind == "error":
                    raise exception_from_wire(frame)
                if kind == "snapshot":
                    state = decode_snapshot(frame["state"])
                    self.database.install_replica_snapshot(state)
                    self.manager.reset(self.database.last_applied_commit_id)
                    self.stats["snapshots"] += 1
                elif kind in ("wal_batch", "wal_heartbeat"):
                    seq = int(frame.get("seq", 0))
                    if seq <= last_seq:
                        # duplicated frame: already applied — re-ack so
                        # the primary's stop-and-wait keeps moving
                        self.stats["duplicate_frames"] += 1
                        self._ack(sock, last_seq)
                        continue
                    if seq != last_seq + 1:
                        raise ProtocolViolation(
                            f"replication stream gap: expected seq "
                            f"{last_seq + 1}, got {seq}"
                        )
                    last_seq = seq
                    if kind == "wal_batch":
                        for commit in frame.get("commits", ()):
                            self.database.apply_replicated_commit(
                                int(commit["id"]), commit["records"]
                            )
                        self.stats["batches"] += 1
                    else:
                        self.stats["heartbeats"] += 1
                else:
                    raise ProtocolViolation(
                        f"unexpected stream frame {kind!r}"
                    )
                tip = int(frame.get("primary_commit_id", 0))
                if tip > self.primary_commit_id:
                    self.primary_commit_id = tip
                self._ack(sock, last_seq)
        finally:
            self.connected = False
            with self._sock_mutex:
                self._sock = None
            try:
                sock.close()
            except OSError:
                pass

    def _ack(self, sock: socket.socket, seq: int) -> None:
        send_frame(
            sock,
            {
                "type": "replicate_ack",
                "seq": seq,
                "applied": self.database.last_applied_commit_id,
            },
        )


class Primary:
    """Database + replication manager + server, bundled for topologies.

    ``synchronous=True`` makes every commit wait for a replica ack (see
    :class:`ReplicationManager`); ``kill()`` models a crash — the
    manager unblocks first (a blocked synchronous commit holds the
    write latch), then the server drops every connection without
    drain."""

    def __init__(
        self,
        database: Optional[Database] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: str = "primary",
        synchronous: bool = False,
        sync_timeout_s: Optional[float] = None,
        retain: int = 4096,
        database_kwargs: Optional[dict] = None,
        server_kwargs: Optional[dict] = None,
    ) -> None:
        self.name = name
        if database is None:
            database = Database(**(database_kwargs or {}))
        self.database = database
        self.manager = ReplicationManager(
            database,
            name=name,
            retain=retain,
            synchronous=synchronous,
            sync_timeout_s=sync_timeout_s,
        )
        self.server = DatabaseServer(
            database,
            host=host,
            port=port,
            replication=self.manager,
            **(server_kwargs or {}),
        )

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def start(self) -> "Primary":
        self.server.start()
        return self

    def stop(self, drain_s: float = 5.0) -> None:
        self.manager.close()
        self.server.shutdown(drain_s=drain_s)
        self.database.close()

    def kill(self) -> None:
        """Crash, not shutdown: no drain, no checkpoint, connections
        dropped mid-frame.  The database object is left as-is (a durable
        one would recover from its WAL on reopen).

        Connections are severed *before* the manager unblocks waiting
        synchronous commits: a commit that never got its replica ack
        must not slip an acknowledgement frame to the client between
        the unblock and the socket teardown — an acked-but-unreplicated
        commit is exactly the loss the synchronous mode rules out."""
        self.server.kill_connections()
        self.manager.close()
        self.server.shutdown(drain_s=0.0)

    def __enter__(self) -> "Primary":
        if not self.server._started:
            self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
