"""Plan optimisation: column pruning.

Pruning removes projection items (and aggregate outputs) whose keys are not
needed upstream.  It flows through inlined views/CTEs, filters and joins —
this is the "holistic query optimisation" that makes the VIEW mode faster
than the CTE mode in PostgreSQL (§6.6 of the paper) — and deliberately
stops at materialised-CTE boundaries (:class:`CteRef`), which is exactly
PostgreSQL 12's optimisation barrier.
"""

from __future__ import annotations

from repro.sqldb.plan import (
    Aggregate,
    CteRef,
    Distinct,
    Filter,
    Join,
    Limit,
    OneRow,
    PlanNode,
    Project,
    ScanSnapshot,
    ScanTable,
    Sort,
    UnionAll,
    Window,
)

__all__ = ["prune_plan", "prune_shared_plans"]


def _collect_shared_needs(plan: PlanNode, needs: dict[int, set[str]]) -> None:
    """Record which output keys each shared CTE/view plan must provide.

    Does not descend into the shared plans themselves — they are processed
    separately in reverse creation order (references only ever point from
    newer plans to older ones).
    """
    if isinstance(plan, CteRef):
        entry = needs.setdefault(id(plan.plan), set())
        if plan.barrier:
            # optimisation barrier: the full width must be computed
            entry.update(out.key for out in plan.plan.schema)
        else:
            entry.update(plan.rename.keys())
        return
    for child in plan.children():
        _collect_shared_needs(child, needs)


def prune_shared_plans(
    top: PlanNode,
    shared_plans: list[tuple[str, PlanNode, bool]],
    subquery_plans: list[PlanNode],
) -> None:
    """Holistically prune shared CTE/view plans by their combined needs.

    Non-barrier plans (inlined CTEs, views) are pruned to the union of all
    reference requirements; barrier plans (PG12-materialised CTEs) stay at
    full width.  Each shared plan is executed exactly once per query by the
    executor's plan cache.
    """
    needs: dict[int, set[str]] = {}
    _collect_shared_needs(top, needs)
    for sub in subquery_plans:
        _collect_shared_needs(sub, needs)
    for _, plan, barrier in reversed(shared_plans):
        needed = needs.get(id(plan))
        if needed is None:
            continue  # never referenced -> never executed
        if not barrier:
            prune_plan(plan, set(needed))
        _collect_shared_needs(plan, needs)


def prune_plan(plan: PlanNode, needed: set[str]) -> PlanNode:
    """Return *plan* with unneeded projection work removed.

    Mutates nodes in place (plans are single-use) and returns the root.
    """
    if isinstance(plan, (ScanTable, ScanSnapshot, OneRow)):
        return plan

    if isinstance(plan, CteRef):
        # optimisation barrier: the shared CTE plan is computed in full.
        # Only this reference's rename map shrinks.
        plan.rename = {
            src: dst for src, dst in plan.rename.items() if dst in needed
        }
        plan.schema = [out for out in plan.schema if out.key in needed]
        return plan

    if isinstance(plan, Project):
        kept = [
            (out, expr)
            for out, expr in plan.items
            if out.key in needed or out.key in plan.unnest_keys
        ]
        if not kept:
            # keep one item so the row count is preserved
            kept = plan.items[:1]
        plan.items = kept
        plan.schema = [out for out, _ in kept]
        child_needed: set[str] = set()
        for _, expr in kept:
            child_needed |= expr.refs
        plan.child = prune_plan(plan.child, child_needed)
        return plan

    if isinstance(plan, Filter):
        plan.schema = [out for out in plan.schema if out.key in needed]
        plan.child = prune_plan(plan.child, needed | set(plan.predicate.refs))
        return plan

    if isinstance(plan, Join):
        child_needed = set(needed)
        for key_expr in plan.left_keys:
            child_needed |= key_expr.refs
        for key_expr in plan.right_keys:
            child_needed |= key_expr.refs
        if plan.residual is not None:
            child_needed |= plan.residual.refs
        left_keys = {out.key for out in plan.left.schema}
        right_keys = {out.key for out in plan.right.schema}
        plan.schema = [out for out in plan.schema if out.key in needed]
        plan.left = prune_plan(plan.left, child_needed & left_keys)
        plan.right = prune_plan(plan.right, child_needed & right_keys)
        return plan

    if isinstance(plan, Aggregate):
        plan.aggregates = [
            item for item in plan.aggregates if item.out.key in needed
        ]
        child_needed = set()
        for _, expr in plan.groups:
            child_needed |= expr.refs
        for item in plan.aggregates:
            if item.arg is not None:
                child_needed |= item.arg.refs
            if item.where is not None:
                child_needed |= item.where.refs
        plan.schema = [out for out, _ in plan.groups] + [
            item.out for item in plan.aggregates
        ]
        plan.child = prune_plan(plan.child, child_needed)
        return plan

    if isinstance(plan, Distinct):
        # DISTINCT semantics depend on the full row: no pruning through it
        plan.child = prune_plan(
            plan.child, {out.key for out in plan.child.schema}
        )
        return plan

    if isinstance(plan, Sort):
        child_needed = set(needed)
        for expr, _, _ in plan.keys:
            child_needed |= expr.refs
        plan.schema = [out for out in plan.schema if out.key in child_needed or out.key in needed]
        plan.child = prune_plan(plan.child, child_needed)
        return plan

    if isinstance(plan, Limit):
        plan.schema = [out for out in plan.schema if out.key in needed]
        plan.child = prune_plan(plan.child, needed)
        return plan

    if isinstance(plan, Window):
        plan.windows = [w for w in plan.windows if w.out.key in needed]
        child_needed = set(needed) - {w.out.key for w in plan.windows}
        for item in plan.windows:
            for expr in item.partition:
                child_needed |= expr.refs
            for expr, _ in item.order:
                child_needed |= expr.refs
        plan.schema = [out for out in plan.schema if out.key in needed]
        plan.child = prune_plan(plan.child, child_needed)
        return plan

    if isinstance(plan, UnionAll):
        # positional correspondence across arms: keep everything
        for part in plan.parts:
            prune_plan(part, {out.key for out in part.schema})
        return plan

    return plan
