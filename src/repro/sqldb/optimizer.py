"""Plan optimisation: column pruning and statistics-driven rewrites.

Pruning removes projection items (and aggregate outputs) whose keys are not
needed upstream.  It flows through inlined views/CTEs, filters and joins —
this is the "holistic query optimisation" that makes the VIEW mode faster
than the CTE mode in PostgreSQL (§6.6 of the paper) — and deliberately
stops at materialised-CTE boundaries (:class:`CteRef`), which is exactly
PostgreSQL 12's optimisation barrier.

The rewrite layer (:func:`fold_select`, :func:`optimize_select_plan`) is
enabled per database via the ``optimize`` knob and applies, in order:

* constant folding of literal-only predicate subtrees on the AST, using
  the very vector kernels the executor would run (so folded values are
  bit-compatible with computed ones);
* predicate pushdown: ``Filter`` conjuncts sink through ``Project``
  pass-throughs, ``Sort``, ``Distinct``, the preserved side of outer
  joins, both sides of inner/cross joins, and ``Aggregate`` group keys —
  stopping at ``Limit``, ``Window``, ``UnionAll`` and materialised-CTE
  barriers, exactly where pruning stops;
* inlining of single-reference non-barrier CTE/view bodies so pushdown
  can continue into them;
* after ``ANALYZE`` has collected statistics: conjunct reordering by
  estimated selectivity (cheapest-most-selective first) and inner-join
  build-side selection by estimated cardinality.

Every structural change is append-logged by rule name so
``Database.explain_analyze`` can report which rewrites fired.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sqldb import ast_nodes as ast
from repro.sqldb import vector
from repro.sqldb.catalog import Catalog
from repro.sqldb.plan import (
    Aggregate,
    Batch,
    CompiledExpr,
    CteRef,
    Distinct,
    Filter,
    IndexJoin,
    IndexScan,
    Join,
    Limit,
    OneRow,
    PlanNode,
    Project,
    ScanSnapshot,
    ScanTable,
    Sort,
    UnionAll,
    Window,
    column_passthrough,
    combine_conjuncts,
)

__all__ = [
    "estimate_plan_rows",
    "fold_select",
    "optimize_select_plan",
    "prune_plan",
    "prune_shared_plans",
]


def _collect_shared_needs(plan: PlanNode, needs: dict[int, set[str]]) -> None:
    """Record which output keys each shared CTE/view plan must provide.

    Does not descend into the shared plans themselves — they are processed
    separately in reverse creation order (references only ever point from
    newer plans to older ones).
    """
    if isinstance(plan, CteRef):
        entry = needs.setdefault(id(plan.plan), set())
        if plan.barrier:
            # optimisation barrier: the full width must be computed
            entry.update(out.key for out in plan.plan.schema)
        else:
            entry.update(plan.rename.keys())
        return
    for child in plan.children():
        _collect_shared_needs(child, needs)


def prune_shared_plans(
    top: PlanNode,
    shared_plans: list[tuple[str, PlanNode, bool]],
    subquery_plans: list[PlanNode],
) -> None:
    """Holistically prune shared CTE/view plans by their combined needs.

    Non-barrier plans (inlined CTEs, views) are pruned to the union of all
    reference requirements; barrier plans (PG12-materialised CTEs) stay at
    full width.  Each shared plan is executed exactly once per query by the
    executor's plan cache.
    """
    needs: dict[int, set[str]] = {}
    _collect_shared_needs(top, needs)
    for sub in subquery_plans:
        _collect_shared_needs(sub, needs)
    for _, plan, barrier in reversed(shared_plans):
        needed = needs.get(id(plan))
        if needed is None:
            continue  # never referenced -> never executed
        if not barrier:
            prune_plan(plan, set(needed))
        _collect_shared_needs(plan, needs)


def prune_plan(plan: PlanNode, needed: set[str]) -> PlanNode:
    """Return *plan* with unneeded projection work removed.

    Mutates nodes in place (plans are single-use) and returns the root.
    """
    if isinstance(plan, (ScanTable, ScanSnapshot, IndexScan, OneRow)):
        return plan

    if isinstance(plan, IndexJoin):
        child_needed = set(needed)
        for key_expr in plan.left_keys:
            child_needed |= key_expr.refs
        if plan.residual is not None:
            child_needed |= plan.residual.refs
        left_keys = {out.key for out in plan.left.schema}
        plan.schema = [out for out in plan.schema if out.key in needed]
        plan.left = prune_plan(plan.left, child_needed & left_keys)
        return plan

    if isinstance(plan, CteRef):
        # optimisation barrier: the shared CTE plan is computed in full.
        # Only this reference's rename map shrinks.
        plan.rename = {
            src: dst for src, dst in plan.rename.items() if dst in needed
        }
        plan.schema = [out for out in plan.schema if out.key in needed]
        return plan

    if isinstance(plan, Project):
        kept = [
            (out, expr)
            for out, expr in plan.items
            if out.key in needed or out.key in plan.unnest_keys
        ]
        if not kept:
            # keep one item so the row count is preserved
            kept = plan.items[:1]
        plan.items = kept
        plan.schema = [out for out, _ in kept]
        child_needed: set[str] = set()
        for _, expr in kept:
            child_needed |= expr.refs
        plan.child = prune_plan(plan.child, child_needed)
        return plan

    if isinstance(plan, Filter):
        plan.schema = [out for out in plan.schema if out.key in needed]
        plan.child = prune_plan(plan.child, needed | set(plan.predicate.refs))
        return plan

    if isinstance(plan, Join):
        child_needed = set(needed)
        for key_expr in plan.left_keys:
            child_needed |= key_expr.refs
        for key_expr in plan.right_keys:
            child_needed |= key_expr.refs
        if plan.residual is not None:
            child_needed |= plan.residual.refs
        left_keys = {out.key for out in plan.left.schema}
        right_keys = {out.key for out in plan.right.schema}
        plan.schema = [out for out in plan.schema if out.key in needed]
        plan.left = prune_plan(plan.left, child_needed & left_keys)
        plan.right = prune_plan(plan.right, child_needed & right_keys)
        return plan

    if isinstance(plan, Aggregate):
        plan.aggregates = [
            item for item in plan.aggregates if item.out.key in needed
        ]
        child_needed = set()
        for _, expr in plan.groups:
            child_needed |= expr.refs
        for item in plan.aggregates:
            if item.arg is not None:
                child_needed |= item.arg.refs
            if item.where is not None:
                child_needed |= item.where.refs
        plan.schema = [out for out, _ in plan.groups] + [
            item.out for item in plan.aggregates
        ]
        plan.child = prune_plan(plan.child, child_needed)
        return plan

    if isinstance(plan, Distinct):
        # DISTINCT semantics depend on the full row: no pruning through it
        plan.child = prune_plan(
            plan.child, {out.key for out in plan.child.schema}
        )
        return plan

    if isinstance(plan, Sort):
        child_needed = set(needed)
        for expr, _, _ in plan.keys:
            child_needed |= expr.refs
        plan.schema = [out for out in plan.schema if out.key in child_needed or out.key in needed]
        plan.child = prune_plan(plan.child, child_needed)
        return plan

    if isinstance(plan, Limit):
        plan.schema = [out for out in plan.schema if out.key in needed]
        plan.child = prune_plan(plan.child, needed)
        return plan

    if isinstance(plan, Window):
        plan.windows = [w for w in plan.windows if w.out.key in needed]
        child_needed = set(needed) - {w.out.key for w in plan.windows}
        for item in plan.windows:
            for expr in item.partition:
                child_needed |= expr.refs
            for expr, _ in item.order:
                child_needed |= expr.refs
        plan.schema = [out for out in plan.schema if out.key in needed]
        plan.child = prune_plan(plan.child, child_needed)
        return plan

    if isinstance(plan, UnionAll):
        # positional correspondence across arms: keep everything
        for part in plan.parts:
            prune_plan(part, {out.key for out in part.schema})
        return plan

    return plan


# ---------------------------------------------------------------------------
# constant folding (AST level)
# ---------------------------------------------------------------------------

#: sentinel for "this subtree cannot be folded"
_NO_FOLD = object()


def _scalar(out: vector.Vector) -> Any:
    """Python value of a length-1 vector (None when null)."""
    return None if out.nulls[0] else out.item(0)


def _eval_binary(op: str, left: Any, right: Any) -> Any:
    a = vector.constant(left, 1)
    b = vector.constant(right, 1)
    try:
        if op in ("+", "-", "*", "/", "%", "||"):
            return _scalar(vector.arithmetic(op, a, b))
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _scalar(vector.compare(op, a, b))
        if op == "and":
            return _scalar(vector.logical_and(a, b))
        if op == "or":
            return _scalar(vector.logical_or(a, b))
    except Exception:
        return _NO_FOLD
    return _NO_FOLD


class _Folder:
    """Non-mutating constant folder over predicate expressions.

    Literal-only subtrees are evaluated through the same vector kernels
    the executor would run on them row-by-row, so a folded literal is
    indistinguishable from the computed value at execution time.  Only
    type-safe short-circuits are applied to mixed subtrees (``x AND
    FALSE``, ``x OR TRUE``); identities like ``x AND TRUE -> x`` are
    deliberately skipped because they could change the column's dtype.
    """

    def __init__(self) -> None:
        self.changed = False

    def _mark(self, value: Any) -> ast.Literal:
        self.changed = True
        return ast.Literal(value)

    def expr(self, e: ast.Expr) -> ast.Expr:
        if isinstance(e, ast.BinaryOp):
            left = self.expr(e.left)
            right = self.expr(e.right)
            if isinstance(left, ast.Literal) and isinstance(right, ast.Literal):
                value = _eval_binary(e.op, left.value, right.value)
                if value is not _NO_FOLD:
                    return self._mark(value)
            if e.op == "and":
                for side in (left, right):
                    if isinstance(side, ast.Literal) and side.value is False:
                        return self._mark(False)
            if e.op == "or":
                for side in (left, right):
                    if isinstance(side, ast.Literal) and side.value is True:
                        return self._mark(True)
            if left is not e.left or right is not e.right:
                return ast.BinaryOp(e.op, left, right)
            return e
        if isinstance(e, ast.UnaryOp):
            operand = self.expr(e.operand)
            if isinstance(operand, ast.Literal):
                if e.op == "not":
                    try:
                        value = _scalar(
                            vector.logical_not(vector.constant(operand.value, 1))
                        )
                        return self._mark(value)
                    except Exception:
                        pass
                elif e.op == "-":
                    value = _eval_binary("*", operand.value, -1)
                    if value is not _NO_FOLD:
                        return self._mark(value)
            if operand is not e.operand:
                return ast.UnaryOp(e.op, operand)
            return e
        if isinstance(e, ast.IsNull):
            operand = self.expr(e.operand)
            if isinstance(operand, ast.Literal):
                return self._mark((operand.value is None) != e.negated)
            if operand is not e.operand:
                return ast.IsNull(operand, e.negated)
            return e
        if isinstance(e, ast.Between):
            operand = self.expr(e.operand)
            low = self.expr(e.low)
            high = self.expr(e.high)
            if all(
                isinstance(part, ast.Literal) for part in (operand, low, high)
            ):
                lo = _eval_binary(">=", operand.value, low.value)
                hi = _eval_binary("<=", operand.value, high.value)
                if lo is not _NO_FOLD and hi is not _NO_FOLD:
                    value = _eval_binary("and", lo, hi)
                    if value is not _NO_FOLD:
                        if e.negated:
                            value = _scalar(
                                vector.logical_not(vector.constant(value, 1))
                            )
                        return self._mark(value)
            if (
                operand is not e.operand
                or low is not e.low
                or high is not e.high
            ):
                return ast.Between(operand, low, high, e.negated)
            return e
        if isinstance(e, ast.InList):
            operand = self.expr(e.operand)
            items = tuple(self.expr(item) for item in e.items)
            if isinstance(operand, ast.Literal) and all(
                isinstance(item, ast.Literal) for item in items
            ):
                result: Any = None
                folded = True
                for position, item in enumerate(items):
                    hit = _eval_binary("=", operand.value, item.value)
                    if hit is _NO_FOLD:
                        folded = False
                        break
                    result = (
                        hit
                        if position == 0
                        else _eval_binary("or", result, hit)
                    )
                    if result is _NO_FOLD:
                        folded = False
                        break
                if folded:
                    if e.negated:
                        result = _scalar(
                            vector.logical_not(vector.constant(result, 1))
                        )
                    return self._mark(result)
            if operand is not e.operand or any(
                new is not old for new, old in zip(items, e.items)
            ):
                return ast.InList(operand, items, e.negated)
            return e
        if isinstance(e, ast.Case):
            whens = tuple(
                (self.expr(cond), self.expr(result))
                for cond, result in e.whens
            )
            else_ = self.expr(e.else_) if e.else_ is not None else None
            if else_ is not e.else_ or any(
                new_c is not old_c or new_r is not old_r
                for (new_c, new_r), (old_c, old_r) in zip(whens, e.whens)
            ):
                return ast.Case(whens, else_)
            return e
        if isinstance(e, ast.Cast):
            operand = self.expr(e.operand)
            if operand is not e.operand:
                return ast.Cast(operand, e.type_name)
            return e
        if isinstance(e, ast.FuncCall):
            args = tuple(self.expr(arg) for arg in e.args)
            filter_where = (
                self.expr(e.filter_where)
                if e.filter_where is not None
                else None
            )
            if filter_where is not e.filter_where or any(
                new is not old for new, old in zip(args, e.args)
            ):
                return ast.FuncCall(
                    e.name, args, e.star, e.distinct, filter_where
                )
            return e
        if isinstance(e, ast.ScalarSubquery):
            query = self.select(e.query)
            if query is not e.query:
                return ast.ScalarSubquery(query)
            return e
        return e

    def _source(self, source: ast.TableSource) -> ast.TableSource:
        if isinstance(source, ast.SubquerySource):
            query = self.select(source.query)
            if query is not source.query:
                return ast.SubquerySource(query, source.alias)
            return source
        if isinstance(source, ast.JoinSource):
            left = self._source(source.left)
            right = self._source(source.right)
            condition = (
                self.expr(source.condition)
                if source.condition is not None
                else None
            )
            if (
                left is not source.left
                or right is not source.right
                or condition is not source.condition
            ):
                return ast.JoinSource(left, right, source.kind, condition)
            return source
        return source

    def select(self, select: ast.Select) -> ast.Select:
        """Fold WHERE/HAVING/ON predicates, recursing into nested queries.

        Select items, GROUP BY and ORDER BY expressions are left alone:
        the planner matches GROUP BY expressions against items by
        structural equality, and folding only one side would break it.
        """
        ctes = [
            ast.Cte(cte.name, self.select(cte.query), cte.materialized)
            for cte in select.ctes
        ]
        sources = [self._source(source) for source in select.sources]
        where = self.expr(select.where) if select.where is not None else None
        having = self.expr(select.having) if select.having is not None else None
        union = (
            self.select(select.union_all_with)
            if select.union_all_with is not None
            else None
        )
        unchanged = (
            where is select.where
            and having is select.having
            and union is select.union_all_with
            and all(new is old for new, old in zip(ctes, select.ctes))
            and all(new is old for new, old in zip(sources, select.sources))
        )
        if unchanged:
            return select
        return ast.Select(
            items=select.items,
            ctes=ctes,
            sources=sources,
            where=where,
            group_by=select.group_by,
            having=having,
            order_by=select.order_by,
            limit=select.limit,
            offset=select.offset,
            distinct=select.distinct,
            union_all_with=union,
        )


def fold_select(select: ast.Select) -> tuple[ast.Select, bool]:
    """Constant-fold a SELECT statement's predicates without mutating it.

    Returns ``(folded, changed)``; when nothing folds, *select* itself is
    returned so cached statements are never copied needlessly.
    """
    folder = _Folder()
    return folder.select(select), folder.changed


# ---------------------------------------------------------------------------
# statistics: provenance, selectivity, cardinality estimation
# ---------------------------------------------------------------------------

#: textbook fallbacks used when a referenced column has no ANALYZE stats
_DEFAULT_SELECTIVITY = {
    "=": 0.1,
    "<>": 0.9,
    "isnull": 0.05,
    "notnull": 0.95,
    "in": 0.2,
    "between": 0.25,
    "<": 1.0 / 3.0,
    "<=": 1.0 / 3.0,
    ">": 1.0 / 3.0,
    ">=": 1.0 / 3.0,
}


def _provenance(
    plan: PlanNode, memo: dict[int, dict[str, tuple[str, str]]]
) -> dict[str, tuple[str, str]]:
    """Map batch keys to their originating ``(table, column)`` where the
    key is a pure pass-through of a base-table column."""
    cached = memo.get(id(plan))
    if cached is not None:
        return cached
    prov: dict[str, tuple[str, str]] = {}
    if isinstance(plan, (ScanTable, IndexScan)):
        prov = {
            key: (plan.table_name, column) for column, key in plan.keys.items()
        }
    elif isinstance(plan, IndexJoin):
        prov = dict(_provenance(plan.left, memo))
        for column, key in plan.keys.items():
            prov[key] = (plan.table_name, column)
    elif isinstance(plan, Project):
        child = _provenance(plan.child, memo)
        for out, expr in plan.items:
            if (
                expr.is_column is not None
                and expr.is_column in child
                and out.key not in plan.unnest_keys
            ):
                prov[out.key] = child[expr.is_column]
    elif isinstance(plan, (Filter, Sort, Distinct, Limit, Window)):
        prov = _provenance(plan.child, memo)
    elif isinstance(plan, Join):
        prov = {
            **_provenance(plan.left, memo),
            **_provenance(plan.right, memo),
        }
    elif isinstance(plan, Aggregate):
        child = _provenance(plan.child, memo)
        for out, expr in plan.groups:
            if expr.is_column is not None and expr.is_column in child:
                prov[out.key] = child[expr.is_column]
    elif isinstance(plan, CteRef):
        body = _provenance(plan.plan, memo)
        for src, dst in plan.rename.items():
            if src in body:
                prov[dst] = body[src]
    memo[id(plan)] = prov
    return prov


def _range_fraction(value: Any, lo: Any, hi: Any) -> Optional[float]:
    for part in (value, lo, hi):
        if isinstance(part, bool) or not isinstance(part, (int, float)):
            return None
    if hi <= lo:
        return 0.5
    return min(1.0, max(0.0, (value - lo) / (hi - lo)))


def _conjunct_selectivity(
    expr: CompiledExpr,
    prov: dict[str, tuple[str, str]],
    catalog: Catalog,
) -> float:
    """Estimated fraction of rows a conjunct keeps (1.0 = keeps all)."""
    cmp = expr.cmp
    if cmp is None:
        return 0.25
    op, key, operand = cmp
    if op == "const":
        return 0.0 if operand is None or operand is False else 1.0
    stats = None
    source = prov.get(key) if key is not None else None
    if source is not None:
        table_stats = catalog.table_stats(source[0])
        if table_stats is not None:
            stats = table_stats.columns.get(source[1])
    if stats is None:
        return _DEFAULT_SELECTIVITY.get(op, 0.25)
    notnull = 1.0 - stats.null_fraction
    ndv = max(stats.ndv, 1)
    if op == "=":
        return notnull / ndv if stats.ndv else 0.0
    if op == "<>":
        return notnull * (1.0 - 1.0 / ndv)
    if op == "isnull":
        return stats.null_fraction
    if op == "notnull":
        return notnull
    if op == "in":
        return min(1.0, len(operand) / ndv) * notnull
    if op in ("<", "<=", ">", ">="):
        fraction = _range_fraction(operand, stats.min_value, stats.max_value)
        if fraction is None:
            return _DEFAULT_SELECTIVITY[op]
        return (fraction if op in ("<", "<=") else 1.0 - fraction) * notnull
    if op == "between":
        low, high = operand
        f_low = _range_fraction(low, stats.min_value, stats.max_value)
        f_high = _range_fraction(high, stats.min_value, stats.max_value)
        if f_low is None or f_high is None:
            return _DEFAULT_SELECTIVITY["between"]
        return max(0.0, f_high - f_low) * notnull
    return 0.25


def _column_ndv(
    expr: CompiledExpr,
    prov: dict[str, tuple[str, str]],
    catalog: Catalog,
) -> float:
    """Distinct-value count of a pass-through key expression (0 = unknown)."""
    if expr.is_column is None:
        return 0.0
    source = prov.get(expr.is_column)
    if source is None:
        return 0.0
    table_stats = catalog.table_stats(source[0])
    if table_stats is None:
        return 0.0
    column = table_stats.columns.get(source[1])
    if column is None:
        return 0.0
    return float(max(column.ndv, 0))


def _table_rows(catalog: Catalog, table_name: str) -> float:
    stats = catalog.table_stats(table_name)
    if stats is not None:
        return float(stats.n_rows)
    try:
        return float(catalog.table(table_name).n_rows)
    except Exception:
        return 0.0


def _index_lookup_selectivity(
    plan: IndexScan, catalog: Catalog
) -> float:
    """Fraction of the table an index probe is expected to return."""
    kind, operand = plan.lookup
    stats = None
    try:
        index = catalog.index(plan.index_name)
        table_stats = catalog.table_stats(plan.table_name)
        if table_stats is not None:
            stats = table_stats.columns.get(index.columns[0])
        unique = index.unique
        first_column = index.columns[0]
    except Exception:
        return _DEFAULT_SELECTIVITY.get("=", 0.1)
    if kind == "eq":
        if unique:
            rows = _table_rows(catalog, plan.table_name)
            return 1.0 / rows if rows else 0.0
        if stats is not None and stats.ndv:
            return (1.0 - stats.null_fraction) / max(stats.ndv, 1)
        return _DEFAULT_SELECTIVITY["="]
    if kind == "in":
        if stats is not None and stats.ndv:
            return min(
                1.0, len(operand) / max(stats.ndv, 1)
            ) * (1.0 - stats.null_fraction)
        return _DEFAULT_SELECTIVITY["in"]
    if kind == "range":
        lo, _, hi, _ = operand
        if stats is not None:
            f_lo = (
                0.0
                if lo is None
                else _range_fraction(lo, stats.min_value, stats.max_value)
            )
            f_hi = (
                1.0
                if hi is None
                else _range_fraction(hi, stats.min_value, stats.max_value)
            )
            if f_lo is not None and f_hi is not None:
                return max(0.0, f_hi - f_lo) * (1.0 - stats.null_fraction)
        return _DEFAULT_SELECTIVITY["between"]
    return 0.25


def _equi_join_rows(
    left_rows: float,
    right_rows: float,
    key_pairs: list[tuple[float, float]],
) -> float:
    """|L JOIN R| under the standard independence model.

    Each equi-key pair divides the cross product by ``max(ndv_l, ndv_r)``;
    unknown distinct counts (0) fall back to a small default so empty or
    never-ANALYZEd columns can never divide by zero.
    """
    rows = left_rows * right_rows
    for ndv_l, ndv_r in key_pairs:
        factor = max(ndv_l, ndv_r)
        if factor <= 0:
            factor = 10.0  # both unknown: textbook default, never zero
        rows /= max(factor, 1.0)
    return rows


def estimate_plan_rows(plan: PlanNode, catalog: Catalog) -> dict[int, float]:
    """Estimate output rows for every node, keyed by ``id(node)``.

    Uses ANALYZE statistics where available and live table sizes
    otherwise; shared CTE bodies are estimated once.
    """
    estimates: dict[int, float] = {}
    prov_memo: dict[int, dict[str, tuple[str, str]]] = {}
    _estimate(plan, catalog, estimates, prov_memo)
    return estimates


def _estimate(
    plan: PlanNode,
    catalog: Catalog,
    estimates: dict[int, float],
    prov_memo: dict[int, dict[str, tuple[str, str]]],
) -> float:
    cached = estimates.get(id(plan))
    if cached is not None:
        return cached
    rows: float
    if isinstance(plan, ScanTable):
        stats = catalog.table_stats(plan.table_name)
        if stats is not None:
            rows = float(stats.n_rows)
        else:
            try:
                rows = float(catalog.table(plan.table_name).n_rows)
            except Exception:
                rows = 0.0
    elif isinstance(plan, ScanSnapshot):
        try:
            snapshot = catalog.resolve(plan.view_name).snapshot
            rows = float(snapshot[2]) if snapshot is not None else 1000.0
        except Exception:
            rows = 1000.0
    elif isinstance(plan, CteRef):
        rows = _estimate(plan.plan, catalog, estimates, prov_memo)
    elif isinstance(plan, Filter):
        rows = _estimate(plan.child, catalog, estimates, prov_memo)
        prov = _provenance(plan.child, prov_memo)
        for conjunct in plan.conjuncts:
            rows *= _conjunct_selectivity(conjunct, prov, catalog)
    elif isinstance(plan, Project):
        rows = _estimate(plan.child, catalog, estimates, prov_memo)
    elif isinstance(plan, IndexScan):
        rows = _table_rows(catalog, plan.table_name) * min(
            1.0, max(_index_lookup_selectivity(plan, catalog), 0.0)
        )
    elif isinstance(plan, IndexJoin):
        left = _estimate(plan.left, catalog, estimates, prov_memo)
        inner_rows = _table_rows(catalog, plan.table_name)
        prov_left = _provenance(plan.left, prov_memo)
        table_stats = catalog.table_stats(plan.table_name)
        pairs = []
        try:
            index_columns = catalog.index(plan.index_name).columns
        except Exception:
            index_columns = ()
        for expr, column in zip(plan.left_keys, index_columns):
            ndv_l = _column_ndv(expr, prov_left, catalog)
            ndv_r = 0.0
            if table_stats is not None:
                column_stats = table_stats.columns.get(column)
                if column_stats is not None:
                    ndv_r = float(max(column_stats.ndv, 0))
            pairs.append((ndv_l, ndv_r))
        rows = _equi_join_rows(left, inner_rows, pairs)
        if plan.kind == "left":
            rows = max(rows, left)
    elif isinstance(plan, Join):
        left = _estimate(plan.left, catalog, estimates, prov_memo)
        right = _estimate(plan.right, catalog, estimates, prov_memo)
        if plan.left_keys:
            prov_left = _provenance(plan.left, prov_memo)
            prov_right = _provenance(plan.right, prov_memo)
            pairs = [
                (
                    _column_ndv(le, prov_left, catalog),
                    _column_ndv(re, prov_right, catalog),
                )
                for le, re in zip(plan.left_keys, plan.right_keys)
            ]
            if any(ndv_l or ndv_r for ndv_l, ndv_r in pairs):
                inner = _equi_join_rows(left, right, pairs)
            else:
                # no usable distinct counts on any key: stay conservative
                inner = max(left, right)
        else:
            inner = left * right
        if plan.kind == "left":
            rows = max(inner, left)
        elif plan.kind == "right":
            rows = max(inner, right)
        elif plan.kind == "full":
            rows = max(inner, left + right)
        else:
            rows = inner
    elif isinstance(plan, Aggregate):
        child = _estimate(plan.child, catalog, estimates, prov_memo)
        if not plan.groups:
            rows = 1.0
        else:
            prov = _provenance(plan.child, prov_memo)
            product = 1.0
            known = True
            for _, expr in plan.groups:
                source = (
                    prov.get(expr.is_column)
                    if expr.is_column is not None
                    else None
                )
                column = None
                if source is not None:
                    table_stats = catalog.table_stats(source[0])
                    if table_stats is not None:
                        column = table_stats.columns.get(source[1])
                if column is None:
                    known = False
                    break
                product *= max(column.ndv + (1 if column.n_nulls else 0), 1)
            rows = min(child, product) if known else child
    elif isinstance(plan, (Distinct, Sort, Window)):
        rows = _estimate(plan.child, catalog, estimates, prov_memo)
    elif isinstance(plan, Limit):
        child = _estimate(plan.child, catalog, estimates, prov_memo)
        rows = max(child - plan.offset, 0.0)
        if plan.count is not None:
            rows = min(rows, float(plan.count))
    elif isinstance(plan, UnionAll):
        rows = sum(
            _estimate(part, catalog, estimates, prov_memo)
            for part in plan.parts
        )
    elif isinstance(plan, OneRow):
        rows = 1.0
    else:
        rows = 1000.0
    estimates[id(plan)] = rows
    return rows


# ---------------------------------------------------------------------------
# predicate pushdown, CTE inlining, conjunct reordering, join build side
# ---------------------------------------------------------------------------


def _remap_conjunct(
    expr: CompiledExpr, mapping: dict[str, str]
) -> CompiledExpr:
    """Re-express a conjunct written against projection output keys in
    terms of the child keys feeding those pass-through items.

    The wrapper presents the child batch under the upper-level keys, so
    the original compiled closure runs unchanged on the exact same
    vectors — pushdown cannot alter evaluation semantics.
    """
    inner = expr
    pairs = tuple(mapping.items())

    def fn(batch: Batch, ctx: Any) -> vector.Vector:
        view = Batch(
            batch.length,
            {above: batch.columns[below] for above, below in pairs},
        )
        return inner.fn(view, ctx)

    refs = frozenset(mapping[r] for r in inner.refs)
    cmp = inner.cmp
    if cmp is not None and cmp[1] is not None:
        below = mapping.get(cmp[1])
        cmp = (cmp[0], below, cmp[2]) if below is not None else None
    is_column = (
        mapping.get(inner.is_column) if inner.is_column is not None else None
    )
    return CompiledExpr(fn, refs, text=inner.text, is_column=is_column, cmp=cmp)


class _PendingConjunct:
    """A conjunct travelling down the plan during pushdown."""

    __slots__ = ("expr", "moved")

    def __init__(self, expr: CompiledExpr, moved: bool = False) -> None:
        self.expr = expr
        self.moved = moved


class _Rewriter:
    def __init__(
        self,
        catalog: Catalog,
        rewrites: list[str],
        refcounts: dict[int, int],
    ) -> None:
        self.catalog = catalog
        self.rewrites = rewrites
        self.refcounts = refcounts
        #: original shared-body id -> its (possibly replaced) pushed root
        self.new_bodies: dict[int, PlanNode] = {}
        self._prov_memo: dict[int, dict[str, tuple[str, str]]] = {}
        #: conjunct reordering is statistics-driven: without ANALYZE data
        #: the planner-given order (query text order) is preserved
        self.use_stats = bool(catalog.analyzed_tables)

    # -- pushdown ----------------------------------------------------------

    def push(
        self, plan: PlanNode, pending: list[_PendingConjunct]
    ) -> PlanNode:
        if isinstance(plan, Filter):
            absorbed = [_PendingConjunct(c) for c in plan.conjuncts]
            return self.push(plan.child, absorbed + pending)
        if isinstance(plan, Project):
            return self._push_project(plan, pending)
        if isinstance(plan, Join):
            return self._push_join(plan, pending)
        if isinstance(plan, (Sort, Distinct)):
            # stable sort commutes with filtering; DISTINCT dedups on the
            # full row, so value-identical rows pass or fail together
            for item in pending:
                item.moved = True
            plan.child = self.push(plan.child, pending)
            return plan
        if isinstance(plan, Aggregate):
            return self._push_aggregate(plan, pending)
        if isinstance(plan, CteRef):
            return self._push_cte_ref(plan, pending)
        if isinstance(plan, (Limit, Window, UnionAll)):
            # barriers: filtering below a LIMIT changes which rows it
            # keeps; Window values depend on the full partition; UNION
            # arms use positional schemas
            if isinstance(plan, UnionAll):
                plan.parts = [self.push(part, []) for part in plan.parts]
            else:
                plan.child = self.push(plan.child, [])
            return self._attach(plan, pending)
        return self._attach(plan, pending)

    def _push_project(
        self, plan: Project, pending: list[_PendingConjunct]
    ) -> PlanNode:
        mapping: dict[str, str] = {}
        for out, expr in plan.items:
            if expr.is_column is not None and out.key not in plan.unnest_keys:
                mapping.setdefault(out.key, expr.is_column)
        down: list[_PendingConjunct] = []
        stuck: list[_PendingConjunct] = []
        for item in pending:
            refs = item.expr.refs
            if refs and all(r in mapping for r in refs):
                item.expr = _remap_conjunct(
                    item.expr, {r: mapping[r] for r in refs}
                )
                item.moved = True
                down.append(item)
            else:
                stuck.append(item)
        plan.child = self.push(plan.child, down)
        return self._attach(plan, stuck)

    def _push_join(
        self, plan: Join, pending: list[_PendingConjunct]
    ) -> PlanNode:
        left_keys = {out.key for out in plan.left.schema}
        right_keys = {out.key for out in plan.right.schema}
        # a conjunct may only sink into a side whose rows the join
        # preserves one-to-one: both sides of inner/cross, the row-
        # preserved side of left/right outer joins, neither side of full
        allow_left = plan.kind in ("inner", "cross", "left")
        allow_right = plan.kind in ("inner", "cross", "right")
        down_left: list[_PendingConjunct] = []
        down_right: list[_PendingConjunct] = []
        stuck: list[_PendingConjunct] = []
        for item in pending:
            refs = item.expr.refs
            if refs and refs <= left_keys and allow_left:
                item.moved = True
                down_left.append(item)
            elif refs and refs <= right_keys and allow_right:
                item.moved = True
                down_right.append(item)
            else:
                stuck.append(item)
        plan.left = self.push(plan.left, down_left)
        plan.right = self.push(plan.right, down_right)
        return self._attach(plan, stuck)

    def _push_aggregate(
        self, plan: Aggregate, pending: list[_PendingConjunct]
    ) -> PlanNode:
        # HAVING conjuncts over pure group-key pass-throughs become WHERE:
        # the predicate is constant within each group, so dropping the
        # group's input rows and dropping the group row are equivalent
        mapping: dict[str, str] = {}
        for out, expr in plan.groups:
            if expr.is_column is not None:
                mapping.setdefault(out.key, expr.is_column)
        down: list[_PendingConjunct] = []
        stuck: list[_PendingConjunct] = []
        for item in pending:
            refs = item.expr.refs
            if refs and all(r in mapping for r in refs):
                item.expr = _remap_conjunct(
                    item.expr, {r: mapping[r] for r in refs}
                )
                item.moved = True
                down.append(item)
            else:
                stuck.append(item)
        plan.child = self.push(plan.child, down)
        return self._attach(plan, stuck)

    def _push_cte_ref(
        self, plan: CteRef, pending: list[_PendingConjunct]
    ) -> PlanNode:
        body = plan.plan
        references = self.refcounts.get(id(body), 0)
        plan.plan = self.new_bodies.get(id(body), body)
        if plan.barrier or references != 1:
            # materialised CTEs are optimisation barriers (PG12); multi-
            # reference bodies execute once, so a per-reference filter
            # cannot sink into them
            return self._attach(plan, pending)
        inverse = {dst: src for src, dst in plan.rename.items()}
        items = [
            (out, column_passthrough(inverse[out.key])) for out in plan.schema
        ]
        self.rewrites.append("inline-single-ref-cte")
        project = Project(plan.plan, items, [], schema=list(plan.schema))
        return self._push_project(project, pending)

    def _attach(
        self, node: PlanNode, pending: list[_PendingConjunct]
    ) -> PlanNode:
        kept: list[_PendingConjunct] = []
        for item in pending:
            cmp = item.expr.cmp
            if cmp is not None and cmp[0] == "const" and cmp[2] is True:
                self.rewrites.append("remove-trivial-filter")
                continue
            kept.append(item)
        if not kept:
            return node
        for item in kept:
            if item.moved:
                self.rewrites.append("predicate-pushdown")
        conjuncts = [item.expr for item in kept]
        if len(conjuncts) > 1 and self.use_stats:
            prov = _provenance(node, self._prov_memo)
            order = sorted(
                range(len(conjuncts)),
                key=lambda i: _conjunct_selectivity(
                    conjuncts[i], prov, self.catalog
                ),
            )
            if order != list(range(len(conjuncts))):
                self.rewrites.append("reorder-conjuncts")
                conjuncts = [conjuncts[i] for i in order]
        return Filter(
            node,
            combine_conjuncts(conjuncts),
            schema=list(node.schema),
            conjuncts=conjuncts,
        )


def _count_cte_refs(
    top: PlanNode,
    shared_plans: list[tuple[str, PlanNode, bool]],
    subquery_plans: list[PlanNode],
) -> dict[int, int]:
    counts: dict[int, int] = {}

    def visit(plan: PlanNode) -> None:
        if isinstance(plan, CteRef):
            counts[id(plan.plan)] = counts.get(id(plan.plan), 0) + 1
            return  # body occurrences are counted via shared_plans below
        for child in plan.children():
            visit(child)

    visit(top)
    for sub in subquery_plans:
        visit(sub)
    seen: set[int] = set()
    for _, body, _ in shared_plans:
        if id(body) in seen:
            continue
        seen.add(id(body))
        visit(body)
    return counts


def _swap_join_builds(
    plan: PlanNode,
    estimates: dict[int, float],
    rewrites: list[str],
    visited: set[int],
) -> None:
    """Make the estimated-smaller input the build (right) side of inner
    equi-joins.  Value-preserving because join outputs are key-addressed;
    output row *order* may change, which is why this only fires once
    ANALYZE statistics exist (the caller gates on that)."""
    if id(plan) in visited:
        return
    visited.add(id(plan))
    if isinstance(plan, Join) and plan.kind == "inner" and plan.left_keys:
        left_rows = estimates.get(id(plan.left))
        right_rows = estimates.get(id(plan.right))
        if (
            left_rows is not None
            and right_rows is not None
            and right_rows > left_rows * 1.2
        ):
            plan.left, plan.right = plan.right, plan.left
            plan.left_keys, plan.right_keys = (
                plan.right_keys,
                plan.left_keys,
            )
            rewrites.append("join-build-side")
    for child in plan.children():
        _swap_join_builds(child, estimates, rewrites, visited)


# ---------------------------------------------------------------------------
# physical access paths: index scans and index-nested-loop joins
# ---------------------------------------------------------------------------

#: storage classes whose scan-filter comparison semantics match an index
#: probe for a numeric (or boolean) literal
_NUMERIC_STORAGE = {"int", "serial", "float", "bool"}


def _probe_compatible(value: Any, storage: str) -> bool:
    """True when probing an index on a *storage*-class column with
    *value* provably returns the same rows a scan + compare would.

    Mixed-type comparisons are the divergence hazard: ``text_col < 5``
    string-compares on a scan but raises (-> empty) on a sorted probe,
    so cross-class probes are simply never taken.
    """
    if value is None:
        return False
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return storage in _NUMERIC_STORAGE
    if isinstance(value, str):
        return storage == "text"
    return False


def _try_index_scan(
    filt: Filter,
    scan: ScanTable,
    catalog: Catalog,
    rewrites: list[str],
    use_stats: bool,
) -> Optional[PlanNode]:
    """Convert ``Filter(ScanTable)`` into an index probe when an index
    covers some of the conjuncts; unmatched conjuncts stay as a residual
    filter above the probe.  Returns None when no index applies."""
    indexes = catalog.indexes_on(scan.table_name)
    if not indexes:
        return None
    try:
        table = catalog.table(scan.table_name)
    except Exception:
        return None
    key_to_column = {key: column for column, key in scan.keys.items()}

    #: per storage column: candidate probes harvested from cmp metadata
    eq: dict[str, tuple[int, Any]] = {}
    in_lists: dict[str, tuple[int, tuple]] = {}
    lowers: dict[str, tuple[int, Any, bool]] = {}
    uppers: dict[str, tuple[int, Any, bool]] = {}
    for position, conjunct in enumerate(filt.conjuncts):
        cmp = conjunct.cmp
        if cmp is None or cmp[1] is None:
            continue
        op, key, operand = cmp
        column = key_to_column.get(key)
        if column is None:
            continue
        storage = table.storage_of(column)
        if op == "=" and _probe_compatible(operand, storage):
            eq.setdefault(column, (position, operand))
        elif op == "in" and operand and all(
            _probe_compatible(v, storage) for v in operand
        ):
            in_lists.setdefault(column, (position, tuple(operand)))
        elif op in (">", ">=") and _probe_compatible(operand, storage):
            lowers.setdefault(column, (position, operand, op == ">="))
        elif op in ("<", "<=") and _probe_compatible(operand, storage):
            uppers.setdefault(column, (position, operand, op == "<="))
        elif op == "between":
            low, high = operand
            if _probe_compatible(low, storage) and _probe_compatible(
                high, storage
            ):
                lowers.setdefault(column, (position, low, True))
                uppers.setdefault(column, (position, high, True))

    best: Optional[tuple[tuple, Any, tuple, set[int]]] = None
    for index in indexes:
        candidate: Optional[tuple[tuple, Any, tuple, set[int]]] = None
        if all(column in eq for column in index.columns):
            used = {eq[column][0] for column in index.columns}
            values = tuple(eq[column][1] for column in index.columns)
            score = (0 if index.unique else 1, -len(index.columns))
            candidate = (score, index, ("eq", values), used)
        elif len(index.columns) == 1 and index.columns[0] in in_lists:
            position, values = in_lists[index.columns[0]]
            candidate = ((2, 0), index, ("in", values), {position})
        elif (
            index.method == "sorted"
            and len(index.columns) == 1
            and (index.columns[0] in lowers or index.columns[0] in uppers)
        ):
            column = index.columns[0]
            low = lowers.get(column)
            high = uppers.get(column)
            fraction = _range_probe_fraction(
                catalog, scan.table_name, column, low, high, use_stats
            )
            if fraction is not None and fraction <= 0.25:
                used = set()
                lo_value = lo_inclusive = None
                hi_value = hi_inclusive = None
                if low is not None:
                    used.add(low[0])
                    lo_value, lo_inclusive = low[1], low[2]
                if high is not None:
                    used.add(high[0])
                    hi_value, hi_inclusive = high[1], high[2]
                lookup = (
                    "range",
                    (lo_value, bool(lo_inclusive), hi_value, bool(hi_inclusive)),
                )
                candidate = ((3, 0), index, lookup, used)
        if candidate is not None and (best is None or candidate[0] < best[0]):
            best = candidate

    if best is None:
        return None
    _, index, lookup, used = best
    probe = IndexScan(
        scan.table_name,
        index.name,
        lookup,
        schema=list(scan.schema),
        keys=dict(scan.keys),
    )
    rewrites.append("index-scan")
    rest = [
        conjunct
        for position, conjunct in enumerate(filt.conjuncts)
        if position not in used
    ]
    if not rest:
        return probe
    return Filter(
        probe,
        combine_conjuncts(rest),
        schema=list(filt.schema),
        conjuncts=rest,
    )


def _range_probe_fraction(
    catalog: Catalog,
    table_name: str,
    column: str,
    low: Optional[tuple],
    high: Optional[tuple],
    use_stats: bool,
) -> Optional[float]:
    """Estimated kept fraction of a range probe; None = not estimable.

    Range probes are only worth taking when selective, and selectivity is
    only credible with ANALYZE statistics — without them this returns
    None and the scan+filter plan stands.
    """
    if not use_stats or (low is None and high is None):
        return None
    table_stats = catalog.table_stats(table_name)
    if table_stats is None:
        return None
    stats = table_stats.columns.get(column)
    if stats is None:
        return None
    f_low = (
        0.0
        if low is None
        else _range_fraction(low[1], stats.min_value, stats.max_value)
    )
    f_high = (
        1.0
        if high is None
        else _range_fraction(high[1], stats.min_value, stats.max_value)
    )
    if f_low is None or f_high is None:
        return None
    return max(0.0, f_high - f_low) * (1.0 - stats.null_fraction)


def _apply_access_paths(
    plan: PlanNode,
    catalog: Catalog,
    rewrites: list[str],
    use_stats: bool,
    memo: dict[int, PlanNode],
) -> PlanNode:
    """Bottom-up walk converting filtered scans into index probes.

    Shared CTE bodies (reached through ``CteRef``) are rewritten once and
    every reference is repointed at the same rewritten body, preserving
    the compute-once contract."""
    cached = memo.get(id(plan))
    if cached is not None:
        return cached
    original = plan
    if isinstance(plan, CteRef):
        plan.plan = _apply_access_paths(
            plan.plan, catalog, rewrites, use_stats, memo
        )
    elif isinstance(plan, Join):
        plan.left = _apply_access_paths(
            plan.left, catalog, rewrites, use_stats, memo
        )
        plan.right = _apply_access_paths(
            plan.right, catalog, rewrites, use_stats, memo
        )
    elif isinstance(plan, UnionAll):
        plan.parts = [
            _apply_access_paths(part, catalog, rewrites, use_stats, memo)
            for part in plan.parts
        ]
    elif isinstance(plan, Filter):
        plan.child = _apply_access_paths(
            plan.child, catalog, rewrites, use_stats, memo
        )
        if isinstance(plan.child, ScanTable):
            replaced = _try_index_scan(
                plan, plan.child, catalog, rewrites, use_stats
            )
            if replaced is not None:
                plan = replaced
    elif hasattr(plan, "child"):
        plan.child = _apply_access_paths(
            plan.child, catalog, rewrites, use_stats, memo  # type: ignore[attr-defined]
        )
    memo[id(original)] = plan
    return plan


def _try_index_join(
    join: Join,
    catalog: Catalog,
    estimates: dict[int, float],
    rewrites: list[str],
) -> Optional[IndexJoin]:
    """Replace an equi-join with an index-nested-loop probe when the
    build side is an indexed base table and the probe side is small."""
    if not join.left_keys or any(join.null_safe):
        return None
    if join.kind not in ("inner", "left"):
        return None
    orientations = [(join.left, join.right, join.left_keys, join.right_keys)]
    if join.kind == "inner":
        # mirrored probe: output row order changes, which is fine for an
        # unordered (set-semantics) join once statistics justify it
        orientations.append(
            (join.right, join.left, join.right_keys, join.left_keys)
        )
    for outer, inner, outer_keys, inner_keys in orientations:
        filter_conjuncts: list[CompiledExpr] = []
        scan = inner
        if (
            isinstance(scan, Filter)
            and join.kind == "inner"
            and isinstance(scan.child, ScanTable)
        ):
            filter_conjuncts = list(scan.conjuncts)
            scan = scan.child
        if not isinstance(scan, ScanTable):
            continue
        if join.kind == "left" and (
            filter_conjuncts or join.residual is not None
        ):
            continue
        key_to_column = {key: column for column, key in scan.keys.items()}
        columns = []
        for expr in inner_keys:
            column = (
                key_to_column.get(expr.is_column)
                if expr.is_column is not None
                else None
            )
            if column is None:
                break
            columns.append(column)
        else:
            index = _matching_index(catalog, scan.table_name, columns)
            if index is None:
                continue
            outer_rows = estimates.get(id(outer))
            inner_rows = estimates.get(id(inner))
            if (
                outer_rows is None
                or inner_rows is None
                or outer_rows > 1000.0
                or inner_rows < 2.0 * outer_rows
            ):
                continue
            # probe keys in index-column order
            order = [columns.index(column) for column in index.columns]
            left_keys = [outer_keys[i] for i in order]
            residual_parts = list(filter_conjuncts)
            if join.residual is not None:
                residual_parts.append(join.residual)
            residual = (
                combine_conjuncts(residual_parts) if residual_parts else None
            )
            rewrites.append("index-join")
            return IndexJoin(
                outer,
                scan.table_name,
                index.name,
                join.kind,
                left_keys=left_keys,
                keys=dict(scan.keys),
                residual=residual,
                schema=list(join.schema),
            )
    return None


def _matching_index(catalog: Catalog, table_name: str, columns: list[str]):
    """An index whose key columns are exactly *columns* (any order)."""
    if not columns or len(set(columns)) != len(columns):
        return None
    wanted = set(columns)
    for index in catalog.indexes_on(table_name):
        if set(index.columns) == wanted and len(index.columns) == len(columns):
            return index
    return None


def _apply_index_joins(
    plan: PlanNode,
    catalog: Catalog,
    estimates: dict[int, float],
    rewrites: list[str],
    memo: dict[int, PlanNode],
) -> PlanNode:
    cached = memo.get(id(plan))
    if cached is not None:
        return cached
    original = plan
    if isinstance(plan, CteRef):
        plan.plan = _apply_index_joins(
            plan.plan, catalog, estimates, rewrites, memo
        )
    elif isinstance(plan, Join):
        plan.left = _apply_index_joins(
            plan.left, catalog, estimates, rewrites, memo
        )
        plan.right = _apply_index_joins(
            plan.right, catalog, estimates, rewrites, memo
        )
        replaced = _try_index_join(plan, catalog, estimates, rewrites)
        if replaced is not None:
            # keep the parent's cost gate working on the new node
            rows = estimates.get(id(plan))
            if rows is not None:
                estimates[id(replaced)] = rows
            plan = replaced
    elif isinstance(plan, IndexJoin):
        plan.left = _apply_index_joins(
            plan.left, catalog, estimates, rewrites, memo
        )
    elif isinstance(plan, UnionAll):
        plan.parts = [
            _apply_index_joins(part, catalog, estimates, rewrites, memo)
            for part in plan.parts
        ]
    elif hasattr(plan, "child"):
        plan.child = _apply_index_joins(
            plan.child, catalog, estimates, rewrites, memo  # type: ignore[attr-defined]
        )
    memo[id(original)] = plan
    return plan


# ---------------------------------------------------------------------------
# cost-based join-order enumeration (left-deep DP / greedy)
# ---------------------------------------------------------------------------

#: exhaustive left-deep DP up to this many relations; greedy above
_DP_LEAF_LIMIT = 6


def _collect_join_region(
    plan: PlanNode,
    leaves: list[PlanNode],
    edges: list[tuple[CompiledExpr, CompiledExpr, bool]],
) -> None:
    """Flatten a maximal region of residual-free inner/cross joins."""
    if (
        isinstance(plan, Join)
        and plan.kind in ("inner", "cross")
        and plan.residual is None
    ):
        _collect_join_region(plan.left, leaves, edges)
        _collect_join_region(plan.right, leaves, edges)
        for le, re, ns in zip(
            plan.left_keys, plan.right_keys, plan.null_safe
        ):
            edges.append((le, re, ns))
    else:
        leaves.append(plan)


def _reorder_join_region(
    root: Join,
    catalog: Catalog,
    estimates: dict[int, float],
    rewrites: list[str],
    prov_memo: dict[int, dict[str, tuple[str, str]]],
) -> PlanNode:
    leaves: list[PlanNode] = []
    edges: list[tuple[CompiledExpr, CompiledExpr, bool]] = []
    _collect_join_region(root, leaves, edges)
    n = len(leaves)
    if n < 3:
        return root

    # map every edge endpoint to exactly one leaf; bail out on key
    # expressions spanning several leaves (rare, and reordering them
    # would need re-homing logic that is not worth the risk)
    key_to_leaf: dict[str, int] = {}
    for position, leaf in enumerate(leaves):
        for out in leaf.schema:
            key_to_leaf[out.key] = position
    placed: list[tuple[CompiledExpr, CompiledExpr, bool, int, int]] = []
    for le, re, ns in edges:
        homes_l = {key_to_leaf.get(r) for r in le.refs}
        homes_r = {key_to_leaf.get(r) for r in re.refs}
        if len(homes_l) != 1 or len(homes_r) != 1:
            return root
        home_l = homes_l.pop()
        home_r = homes_r.pop()
        if home_l is None or home_r is None:
            return root
        placed.append((le, re, ns, home_l, home_r))

    raw_rows = [estimates.get(id(leaf)) for leaf in leaves]
    if all(rows is None or rows <= 0 for rows in raw_rows):
        # empty or never-ANALYZEd inputs: every order costs the same on
        # paper, so keep the syntactic order the user wrote
        rewrites.append("join-order-fallback")
        return root
    leaf_rows = [
        max(rows, 1.0) if rows is not None else 1.0 for rows in raw_rows
    ]

    def edge_factor(edge: tuple) -> float:
        le, re, _, home_l, home_r = edge
        ndv_l = _column_ndv(le, _provenance(leaves[home_l], prov_memo), catalog)
        ndv_r = _column_ndv(re, _provenance(leaves[home_r], prov_memo), catalog)
        factor = max(ndv_l, ndv_r)
        return factor if factor > 0 else 10.0

    factors = [edge_factor(edge) for edge in placed]

    def subset_rows(members: frozenset) -> float:
        rows = 1.0
        for position in members:
            rows *= leaf_rows[position]
        for edge, factor in zip(placed, factors):
            if edge[3] in members and edge[4] in members:
                rows /= max(factor, 1.0)
        return rows

    if n <= _DP_LEAF_LIMIT:
        order = _dp_join_order(n, subset_rows)
    else:
        order = _greedy_join_order(n, leaf_rows, subset_rows)
    if order == list(range(n)):
        return root

    rewrites.append("join-reorder")
    used: set[int] = set()
    current = leaves[order[0]]
    in_tree = {order[0]}
    for position in order[1:]:
        left_keys: list[CompiledExpr] = []
        right_keys: list[CompiledExpr] = []
        null_safe: list[bool] = []
        for edge_position, (le, re, ns, home_l, home_r) in enumerate(placed):
            if edge_position in used:
                continue
            if home_l in in_tree and home_r == position:
                left_keys.append(le)
                right_keys.append(re)
                null_safe.append(ns)
                used.add(edge_position)
            elif home_r in in_tree and home_l == position:
                left_keys.append(re)
                right_keys.append(le)
                null_safe.append(ns)
                used.add(edge_position)
        current = Join(
            current,
            leaves[position],
            "inner" if left_keys else "cross",
            left_keys=left_keys,
            right_keys=right_keys,
            null_safe=null_safe,
            residual=None,
            schema=current.schema + leaves[position].schema,
        )
        in_tree.add(position)
    return current


def _dp_join_order(n: int, subset_rows) -> list[int]:
    """Selinger-style left-deep dynamic program minimising the summed
    cardinality of every intermediate join result."""
    best: dict[frozenset, tuple[float, list[int]]] = {
        frozenset([i]): (0.0, [i]) for i in range(n)
    }
    for size in range(2, n + 1):
        level: dict[frozenset, tuple[float, list[int]]] = {}
        for members, (cost, order) in best.items():
            if len(members) != size - 1:
                continue
            for position in range(n):
                if position in members:
                    continue
                grown = frozenset(members | {position})
                total = cost + subset_rows(grown)
                entry = level.get(grown)
                if entry is None or total < entry[0]:
                    level[grown] = (total, order + [position])
        best.update(level)
    return best[frozenset(range(n))][1]


def _greedy_join_order(n: int, leaf_rows: list[float], subset_rows) -> list[int]:
    start = min(range(n), key=lambda i: (leaf_rows[i], i))
    order = [start]
    members = {start}
    while len(order) < n:
        choice = min(
            (i for i in range(n) if i not in members),
            key=lambda i: (subset_rows(frozenset(members | {i})), i),
        )
        order.append(choice)
        members.add(choice)
    return order


def _reorder_joins(
    plan: PlanNode,
    catalog: Catalog,
    estimates: dict[int, float],
    rewrites: list[str],
    memo: dict[int, PlanNode],
    prov_memo: dict[int, dict[str, tuple[str, str]]],
) -> PlanNode:
    cached = memo.get(id(plan))
    if cached is not None:
        return cached
    original = plan
    if (
        isinstance(plan, Join)
        and plan.kind in ("inner", "cross")
        and plan.residual is None
    ):
        plan = _reorder_join_region(
            plan, catalog, estimates, rewrites, prov_memo
        )
        # recurse below the region's leaves (joins may hide under them)
        leaves: list[PlanNode] = []
        _collect_join_region(plan, leaves, [])
        for leaf in leaves:
            _reorder_leaf_children(
                leaf, catalog, estimates, rewrites, memo, prov_memo
            )
    elif isinstance(plan, CteRef):
        plan.plan = _reorder_joins(
            plan.plan, catalog, estimates, rewrites, memo, prov_memo
        )
    elif isinstance(plan, Join):
        plan.left = _reorder_joins(
            plan.left, catalog, estimates, rewrites, memo, prov_memo
        )
        plan.right = _reorder_joins(
            plan.right, catalog, estimates, rewrites, memo, prov_memo
        )
    elif isinstance(plan, UnionAll):
        plan.parts = [
            _reorder_joins(
                part, catalog, estimates, rewrites, memo, prov_memo
            )
            for part in plan.parts
        ]
    elif hasattr(plan, "child"):
        plan.child = _reorder_joins(
            plan.child, catalog, estimates, rewrites, memo, prov_memo  # type: ignore[attr-defined]
        )
    memo[id(original)] = plan
    return plan


def _reorder_leaf_children(
    leaf: PlanNode,
    catalog: Catalog,
    estimates: dict[int, float],
    rewrites: list[str],
    memo: dict[int, PlanNode],
    prov_memo: dict[int, dict[str, tuple[str, str]]],
) -> None:
    """Recurse into a region leaf without re-treating it as a region."""
    if isinstance(leaf, CteRef):
        leaf.plan = _reorder_joins(
            leaf.plan, catalog, estimates, rewrites, memo, prov_memo
        )
    elif isinstance(leaf, Join):
        leaf.left = _reorder_joins(
            leaf.left, catalog, estimates, rewrites, memo, prov_memo
        )
        leaf.right = _reorder_joins(
            leaf.right, catalog, estimates, rewrites, memo, prov_memo
        )
    elif isinstance(leaf, UnionAll):
        leaf.parts = [
            _reorder_joins(
                part, catalog, estimates, rewrites, memo, prov_memo
            )
            for part in leaf.parts
        ]
    elif hasattr(leaf, "child"):
        leaf.child = _reorder_joins(
            leaf.child, catalog, estimates, rewrites, memo, prov_memo  # type: ignore[attr-defined]
        )


def optimize_select_plan(
    top: PlanNode,
    shared_plans: list[tuple[str, PlanNode, bool]],
    subquery_plans: list[PlanNode],
    catalog: Catalog,
    rewrites: list[str],
) -> PlanNode:
    """Apply the statistics-driven rewrite rules to a planned query.

    Mutates the plan in place (plans are single-use until cached) and
    returns the possibly-new root.  Fired rule names are appended to
    *rewrites*.  Scalar-subquery roots are never replaced — their
    compiled closures capture the root object (planner guarantees those
    roots are Project-like, which pushdown preserves).
    """
    refcounts = _count_cte_refs(top, shared_plans, subquery_plans)
    rewriter = _Rewriter(catalog, rewrites, refcounts)
    for _, body, _ in shared_plans:
        if id(body) in rewriter.new_bodies:
            continue
        rewriter.new_bodies[id(body)] = rewriter.push(body, [])
    for sub in subquery_plans:
        rewriter.push(sub, [])
    top = rewriter.push(top, [])

    use_stats = bool(catalog.analyzed_tables)
    # equality/membership index probes are safe without statistics; only
    # range probes consult them (inside _try_index_scan)
    access_memo: dict[int, PlanNode] = {}
    top = _apply_access_paths(top, catalog, rewrites, use_stats, access_memo)
    for sub in subquery_plans:
        # root replacement is discarded: subquery closures capture the
        # root object, and planner guarantees roots are Project-like
        _apply_access_paths(sub, catalog, rewrites, use_stats, access_memo)

    if use_stats:
        estimates = estimate_plan_rows(top, catalog)
        for sub in subquery_plans:
            estimates.update(estimate_plan_rows(sub, catalog))
        reorder_memo: dict[int, PlanNode] = {}
        prov_memo: dict[int, dict[str, tuple[str, str]]] = {}
        try:
            top = _reorder_joins(
                top, catalog, estimates, rewrites, reorder_memo, prov_memo
            )
            for sub in subquery_plans:
                _reorder_joins(
                    sub, catalog, estimates, rewrites, reorder_memo, prov_memo
                )
        except Exception:
            # cost-based reordering must never break a query; keep the
            # syntactic join order when the model falls over
            rewrites.append("join-order-fallback")
        # the tree changed shape: refresh estimates for the join gates
        estimates = estimate_plan_rows(top, catalog)
        for sub in subquery_plans:
            estimates.update(estimate_plan_rows(sub, catalog))
        inlj_memo: dict[int, PlanNode] = {}
        top = _apply_index_joins(top, catalog, estimates, rewrites, inlj_memo)
        for sub in subquery_plans:
            _apply_index_joins(sub, catalog, estimates, rewrites, inlj_memo)
        visited: set[int] = set()
        _swap_join_builds(top, estimates, rewrites, visited)
        for sub in subquery_plans:
            _swap_join_builds(sub, estimates, rewrites, visited)
    return top
