"""Statement normalization and parameter binding for prepared statements.

The plan cache keys on *normalized* statement text, so the same logical
statement hits the cache regardless of whitespace, comments, keyword case
or identifier quoting style.  Normalization is collision-free: identifiers
are always rendered double-quoted and strings single-quoted, so a quoted
identifier can never collide with a keyword and a string literal can never
collide with surrounding syntax.

Placeholders: both ``?`` (DB-API qmark) and ``%s`` (psycopg2 style) lex to
the same positional :class:`~repro.sqldb.ast_nodes.Parameter`; values are
bound at execution time via ``ExecContext.params`` rather than being
spliced into SQL text.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import SQLError
from repro.sqldb.lexer import TokenKind, tokenize

__all__ = ["bind_parameters", "normalize_sql"]


def normalize_sql(sql: str) -> tuple[str, int]:
    """Canonical text of *sql* plus its placeholder count.

    Raises :class:`~repro.errors.SQLSyntaxError` on malformed input (same
    lexer the parser uses, so anything that normalizes also tokenizes).
    """
    parts: list[str] = []
    n_params = 0
    for token in tokenize(sql):
        if token.kind is TokenKind.EOF:
            break
        if token.kind is TokenKind.IDENT:
            parts.append('"' + token.value + '"')
        elif token.kind is TokenKind.STRING:
            parts.append("'" + token.value.replace("'", "''") + "'")
        elif token.kind is TokenKind.PARAM:
            parts.append("?")
            n_params += 1
        else:
            parts.append(token.value)
    return " ".join(parts), n_params


def bind_parameters(
    params: Optional[Sequence[Any]], n_params: Optional[int]
) -> tuple:
    """Validate a parameter sequence against a placeholder count.

    ``n_params`` is None when the statement was not normalized (cache
    disabled and no parameters supplied); validation is then deferred to
    execution, which raises on any unbound placeholder.
    """
    bound = tuple(params) if params is not None else ()
    if n_params is not None and len(bound) != n_params:
        raise SQLError(
            f"statement expects {n_params} parameter"
            f"{'s' if n_params != 1 else ''}, {len(bound)} given"
        )
    return bound
