"""Transaction state and the engine's read/write statement lock.

The catalog's only mutation paths *replace* column vectors (appends build
new :class:`~repro.sqldb.vector.Vector` objects; they never write into an
existing one), so a transaction memento is a set of shallow dict/list
copies — O(relations + columns), independent of row counts.  ``BEGIN``
captures one memento; each ``SAVEPOINT`` captures another plus a mark
into the transaction's buffered redo records, so ``ROLLBACK TO`` restores
the catalog *and* drops the undone statements from what will be flushed
to the WAL at commit (rolled-back work never reaches the log).

:class:`ReadWriteLock` serialises writers against in-flight readers:
SELECTs hold the read side for the full statement (including every morsel
a parallel plan has in flight), and any DDL/DML/transaction-control
statement takes the write side, so a write can never interleave with a
running query's morsels.  Readers-preference, no reentrancy — the engine
acquires it exactly once per statement, never nested.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sqldb.catalog import CatalogSnapshot

__all__ = ["ReadWriteLock", "SavepointState", "Transaction"]


@dataclass
class SavepointState:
    """One ``SAVEPOINT``: name, catalog memento, redo-buffer mark."""

    name: str
    memento: "CatalogSnapshot"
    #: length of ``Transaction.records`` when the savepoint was set;
    #: ``ROLLBACK TO`` truncates the buffer back to this mark
    record_mark: int


@dataclass
class Transaction:
    """An open explicit transaction."""

    txn_id: int
    #: catalog memento captured at BEGIN (restored by ROLLBACK)
    memento: "CatalogSnapshot"
    #: savepoint stack, oldest first; duplicate names allowed — lookups
    #: scan from the end (PostgreSQL masking semantics)
    savepoints: list[SavepointState] = field(default_factory=list)
    #: buffered redo records ``(sql, statement_index, params)`` for every
    #: successful write statement; flushed to the WAL at COMMIT
    records: list[tuple[str, int, list]] = field(default_factory=list)


class ReadWriteLock:
    """Many readers or one writer; writers wait for in-flight readers."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False

    @contextmanager
    def read(self):
        with self._cond:
            while self._writing:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            while self._writing or self._readers:
                self._cond.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()
