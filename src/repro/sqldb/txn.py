"""Per-session transaction state for snapshot-isolation MVCC.

``BEGIN`` forks the committed catalog into a private, copy-on-write
:class:`~repro.sqldb.catalog.Catalog` (O(relations + columns): the fork
shares every column vector; all mutation paths *replace* vectors, never
write into one).  Every statement of the transaction — reads included —
runs against that fork, so the transaction sees exactly the snapshot it
captured at ``BEGIN`` plus its own writes, and other sessions never see
its uncommitted work.

``SAVEPOINT`` captures a memento *of the fork* plus a mark into the
buffered redo records, so ``ROLLBACK TO`` restores the fork and drops
the undone statements from what will be flushed to the WAL at commit
(rolled-back work never reaches the log).

Commit is first-committer-wins: under the global write latch the engine
compares the committed catalog's per-table versions against the
transaction's :attr:`Transaction.start_versions` for every relation in
the write/check set; a mismatch aborts with
:class:`~repro.errors.SerializationFailure` (40001) and the client is
expected to retry.  On success the fork's written relations are
installed into the committed catalog wholesale.

The fair :class:`~repro.sqldb.locks.ReadWriteLock` (re-exported here for
backward compatibility) remains the DDL/catalog-swap latch; per-table
DML locks live in :class:`~repro.sqldb.locks.LockManager`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sqldb.locks import ReadWriteLock

if TYPE_CHECKING:
    from repro.sqldb.catalog import Catalog, CatalogSnapshot

__all__ = ["ReadWriteLock", "SavepointState", "Transaction"]


@dataclass
class SavepointState:
    """One ``SAVEPOINT``: name, fork memento, redo-buffer mark."""

    name: str
    memento: "CatalogSnapshot"
    #: length of ``Transaction.records`` when the savepoint was set;
    #: ``ROLLBACK TO`` truncates the buffer back to this mark
    record_mark: int


@dataclass
class Transaction:
    """An open explicit transaction (one per session at most)."""

    txn_id: int
    #: private copy-on-write fork of the committed catalog, captured at
    #: BEGIN; all statements of the transaction run against it
    catalog: "Catalog"
    #: committed per-table versions as of BEGIN (first-committer-wins
    #: conflict detection compares against these at COMMIT)
    start_versions: dict[str, int] = field(default_factory=dict)
    #: relations this transaction wrote (installed into the committed
    #: catalog at COMMIT; conflict-checked)
    write_set: set[str] = field(default_factory=set)
    #: relations whose committed state this transaction's DDL depends on
    #: (a view's referenced tables) — conflict-checked but not installed
    check_set: set[str] = field(default_factory=set)
    #: savepoint stack, oldest first; duplicate names allowed — lookups
    #: scan from the end (PostgreSQL masking semantics)
    savepoints: list[SavepointState] = field(default_factory=list)
    #: buffered redo records ``(sql, statement_index, params)`` for every
    #: successful write statement; flushed to the WAL at COMMIT
    records: list[tuple[str, int, list]] = field(default_factory=list)
    #: True after a deadlock/serialization abort: further statements fail
    #: with 25P02 until ROLLBACK (or COMMIT, which rolls back quietly)
    aborted: bool = False
    #: stats_version of the fork at BEGIN (detects in-txn ANALYZE)
    start_stats_version: int = 0
