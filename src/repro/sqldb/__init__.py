"""``repro.sqldb`` — an in-process SQL engine with two execution profiles.

The engine stands in for the two database systems of the paper's
evaluation:

* ``Database("postgres")`` — the *blue elephant*: CTEs are materialised by
  default (PostgreSQL 12's optimisation barrier), operators materialise
  their outputs, views are inlined but re-run on demand, and
  ``CREATE MATERIALIZED VIEW`` caches results across queries.
* ``Database("umbra")`` — the beyond-main-memory system: CTEs and views are
  always inlined, plans are column-pruned end to end, and vectors are
  pipelined through operators without copies.

The SQL dialect covers everything the paper's transpiler emits; see
:mod:`repro.sqldb.parser` for the grammar.
"""

from repro.sqldb.catalog import (
    CTID,
    Catalog,
    ColumnStats,
    Table,
    TableStats,
    TrainedModel,
    View,
)
from repro.sqldb.dbapi import Connection, Cursor, connect
from repro.sqldb.engine import (
    Database,
    Result,
    resolve_timeout_ms,
    resolve_workers,
)
from repro.sqldb.faults import CRASHPOINTS, NO_FAULTS, FaultInjector, SimulatedCrash
from repro.sqldb.profile import POSTGRES, UMBRA, Profile, profile_by_name
from repro.sqldb.stats import ExecStats, OpStats
from repro.sqldb.wal import WriteAheadLog, read_checkpoint, read_wal

__all__ = [
    "CRASHPOINTS",
    "CTID",
    "Catalog",
    "ColumnStats",
    "Connection",
    "Cursor",
    "Database",
    "ExecStats",
    "FaultInjector",
    "NO_FAULTS",
    "OpStats",
    "POSTGRES",
    "Profile",
    "Result",
    "SimulatedCrash",
    "Table",
    "TableStats",
    "TrainedModel",
    "UMBRA",
    "View",
    "WriteAheadLog",
    "connect",
    "profile_by_name",
    "read_checkpoint",
    "read_wal",
    "resolve_timeout_ms",
    "resolve_workers",
]
