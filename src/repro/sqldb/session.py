"""Per-connection session state for multi-session MVCC.

A :class:`Session` is the engine-side identity of one client connection:
it owns the session's open :class:`~repro.sqldb.txn.Transaction` (if
any), its in-flight statement cancel flags, and the id used by the
per-table :class:`~repro.sqldb.locks.LockManager`.  The
:class:`~repro.sqldb.engine.Database` keeps one *default* session for
its direct ``execute()`` API (and for the DB-API connection that owns
the database); additional sessions — one per pooled connection — are
opened with :meth:`Database.session() <repro.sqldb.engine.Database.session>`
and run concurrently under snapshot isolation.

Statements *within* one session are serial (one at a time, like a real
connection); concurrency happens *across* sessions.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:
    from repro.sqldb.engine import Database, Result
    from repro.sqldb.txn import Transaction

__all__ = ["Session"]


class Session:
    """One client session over a shared :class:`Database`."""

    def __init__(self, database: "Database", session_id: int) -> None:
        self.database = database
        self.session_id = session_id
        #: the open explicit transaction, if any
        self.txn: Optional["Transaction"] = None
        #: commit id of this session's most recent committed write
        #: (autocommit statement or explicit COMMIT); commit ids are
        #: allocated under the global write latch, so sorting by them
        #: reconstructs the database-wide commit order
        self.last_commit_id: Optional[int] = None
        self.closed = False
        #: cancel events of in-flight statements (guarded by the mutex)
        self._cancel_mutex = threading.Lock()
        self._active_cancels: set[threading.Event] = set()
        #: memory-governor counters across this session's statements:
        #: largest single-statement reservation, cumulative spilled
        #: bytes, and statements shed with 53200/53400
        self.peak_memory_bytes = 0
        self.spilled_bytes = 0
        self.memory_shed = 0

    def note_memory(self, peak_bytes: int, spilled_bytes: int) -> None:
        """Fold one statement's memory grant into the session counters."""
        if peak_bytes > self.peak_memory_bytes:
            self.peak_memory_bytes = peak_bytes
        self.spilled_bytes += spilled_bytes

    def memory_stats(self) -> dict:
        return {
            "peak_memory_bytes": self.peak_memory_bytes,
            "spilled_bytes": self.spilled_bytes,
            "memory_shed": self.memory_shed,
        }

    # -- statement lifecycle -------------------------------------------------

    @contextmanager
    def statement_guard(self):
        """Register a fresh cancel event for one statement execution."""
        event = threading.Event()
        with self._cancel_mutex:
            self._active_cancels.add(event)
        try:
            yield event
        finally:
            with self._cancel_mutex:
                self._active_cancels.discard(event)

    def cancel(self) -> None:
        """Cooperatively cancel this session's in-flight statements
        (safe from any thread; peers' statements are unaffected)."""
        with self._cancel_mutex:
            for event in self._active_cancels:
                event.set()

    @property
    def has_active_statements(self) -> bool:
        with self._cancel_mutex:
            return bool(self._active_cancels)

    # -- convenience delegates ----------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self.txn is not None

    @property
    def in_aborted_transaction(self) -> bool:
        return self.txn is not None and self.txn.aborted

    def execute(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> "Result":
        return self.database.execute(sql, params, session=self)

    def run_script(
        self, sql: str, params: Optional[Sequence[Any]] = None
    ) -> list["Result"]:
        return self.database.run_script(sql, params, session=self)

    def executemany(self, sql: str, seq_of_params) -> int:
        return self.database.executemany(sql, seq_of_params, session=self)

    def begin(self) -> None:
        self.database.begin(session=self)

    def commit(self) -> None:
        self.database.commit(session=self)

    def rollback(self) -> None:
        self.database.rollback(session=self)

    def close(self) -> None:
        """End the session: roll back any open transaction and release
        *every* lock this session holds, then deregister from the
        database.  Idempotent, and safe to call from another thread
        (server disconnect): in-flight statements are cancelled first,
        and lock release is unconditional — even locks taken by a
        statement that never reached commit or rollback (e.g. a
        connection that died mid-acquire) are returned, so a peer
        blocked on this session's lock always unblocks."""
        if self.closed:
            return
        self.closed = True
        self.cancel()
        try:
            if self.txn is not None:
                self.database.rollback(session=self)
        finally:
            self.database.locks.release_all(self.session_id)
            self.database._forget_session(self)
