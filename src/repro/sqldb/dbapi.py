"""DB-API 2.0 style adapter over the engine (the psycopg2 stand-in).

The paper's measurements "enclose a call to the psycopg2 adapter to run the
query"; the benchmark harness talks to the engine through this module so
the measured path has the same shape (connect → cursor → execute →
fetchall).

Errors raised through this module are mapped onto the PEP 249 hierarchy
(``ProgrammingError``, ``OperationalError``, ...) while *remaining*
instances of the engine's own classes, so both

    except dbapi.ProgrammingError: ...
    except SQLSyntaxError: ...

catch a syntax error.  The connection is autocommit by default, exactly
like the engine itself: ``commit()``/``rollback()`` act on the explicit
transaction a ``BEGIN`` statement opened and are no-ops outside one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Optional, Sequence

from repro.errors import (
    AdminShutdown,
    AuthenticationError,
    CannotConnectNow,
    CatalogError,
    ConfigurationLimitExceeded,
    DurabilityError,
    OutOfMemory,
    ProtocolViolation,
    QueryCancelled,
    ReadOnlySQLTransaction,
    SQLBindError,
    SQLError,
    SQLExecutionError,
    SQLSyntaxError,
    TooManyConnections,
    TransactionError,
    TransactionRollback,
    UniqueViolation,
)
from repro.sqldb.engine import Database, Result
from repro.sqldb.faults import FaultInjector
from repro.sqldb.profile import POSTGRES, Profile
from repro.sqldb.session import Session

__all__ = [
    "connect",
    "Connection",
    "Cursor",
    "map_exception",
    "apilevel",
    "threadsafety",
    "paramstyle",
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
]

apilevel = "2.0"
threadsafety = 2  # threads may share the module and connections
paramstyle = "qmark"  # ``?``; the lexer also accepts psycopg2's ``%s``


# -- PEP 249 exception hierarchy ---------------------------------------------


class Warning(Exception):  # noqa: A001 - name mandated by PEP 249
    """PEP 249 Warning."""


class Error(Exception):
    """Base of the PEP 249 error hierarchy."""


class InterfaceError(Error, SQLError):
    """Error related to the adapter itself (e.g. a closed connection).

    Also an :class:`~repro.errors.SQLError` so callers that predate the
    PEP 249 hierarchy keep catching it."""

    sqlstate = "08003"  # connection_does_not_exist


class DatabaseError(Error):
    """Error related to the database."""


class DataError(DatabaseError):
    """Problems with the processed data (bad cast, bad value)."""


class OperationalError(DatabaseError):
    """Errors related to the database's operation (transaction state,
    cancellation, durability/IO failures)."""


class IntegrityError(DatabaseError):
    """Relational integrity violations (unique-index key conflicts)."""


class InternalError(DatabaseError):
    """The database hit an internal inconsistency."""


class ProgrammingError(DatabaseError):
    """Errors in the submitted SQL: syntax, unknown names, bad DDL."""


class NotSupportedError(DatabaseError):
    """A requested feature is not supported by this engine."""


#: engine class → PEP 249 class, most specific first (first match wins)
_ERROR_MAP: tuple[tuple[type, type], ...] = (
    (SQLSyntaxError, ProgrammingError),
    (SQLBindError, ProgrammingError),
    (CatalogError, ProgrammingError),
    (TransactionError, OperationalError),
    # 40001/40P01: the transaction was aborted by the engine and a client
    # retry loop should re-run it — psycopg2 maps these the same way
    (TransactionRollback, OperationalError),
    (QueryCancelled, OperationalError),
    (DurabilityError, OperationalError),
    # network front-end errors (server/client): connection-scoped
    # operational failures, psycopg2-style.  53300 (load shed) is
    # retryable — see connectors.RETRYABLE_SQLSTATES
    (TooManyConnections, OperationalError),
    (AdminShutdown, OperationalError),
    # replication topology errors: 25006 (write hit a read-only replica)
    # and 57P03 (no endpoint accepts this yet) are retryable — the
    # multi-endpoint connector re-probes the topology and re-routes
    (ReadOnlySQLTransaction, OperationalError),
    (CannotConnectNow, OperationalError),
    (AuthenticationError, OperationalError),
    (ProtocolViolation, OperationalError),
    # memory governor: 53200 (pool exhausted / grant queue shed) and
    # 53400 (query needs more than its limit) are retryable — peers
    # finishing (or an operator raising the limit) unblock a re-run
    (OutOfMemory, OperationalError),
    (ConfigurationLimitExceeded, OperationalError),
    # 23505: constraint violations are IntegrityError per PEP 249
    (UniqueViolation, IntegrityError),
    (SQLExecutionError, DataError),
    (SQLError, DatabaseError),
)

_combined_classes: dict[type, type] = {}


def _combined_class(cls: type) -> type:
    """A class that is both *cls* and its PEP 249 counterpart.

    Created once per engine class and cached, so repeated errors don't
    mint new types and ``type(a) is type(b)`` holds across raises.
    """
    combined = _combined_classes.get(cls)
    if combined is None:
        if issubclass(cls, Error):
            combined = cls
        else:
            base: type = DatabaseError
            for engine_cls, dbapi_cls in _ERROR_MAP:
                if issubclass(cls, engine_cls):
                    base = dbapi_cls
                    break
            combined = type(cls.__name__, (base, cls), {"__module__": __name__})
        _combined_classes[cls] = combined
    return combined


def map_exception(exc: SQLError) -> SQLError:
    """Re-dress an engine error as its PEP 249 counterpart.

    The result is an instance of both hierarchies; the SQLSTATE code and
    message are preserved."""
    combined = _combined_class(type(exc))
    if combined is type(exc):
        return exc
    return combined(*exc.args, sqlstate=exc.sqlstate)


@contextmanager
def _translating():
    try:
        yield
    except SQLError as exc:
        raise map_exception(exc) from exc


# -- cursor / connection ------------------------------------------------------


class Cursor:
    """Minimal DB-API cursor.

    Statements run on the owning connection's :class:`Session`, so every
    cursor of one connection shares that connection's transaction state
    while cursors of *different* connections over a shared database run
    under snapshot isolation from each other.
    """

    def __init__(
        self, database: Database, session: Optional[Session] = None
    ) -> None:
        self._database = database
        self._session = session
        self._result: Optional[Result] = None
        self._position = 0
        self._failed = False
        self.arraysize = 1

    @property
    def description(self) -> Optional[list[tuple]]:
        if self._result is None or not self._result.columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self._result.columns]

    @property
    def rowcount(self) -> int:
        return -1 if self._result is None else self._result.rowcount

    def execute(self, sql: str, parameters: Sequence[Any] | None = None) -> "Cursor":
        """Execute *sql*, binding ``?`` / ``%s`` placeholders to *parameters*.

        Values are bound into the cached plan at execution time — they are
        never spliced into the SQL text.
        """
        try:
            with _translating():
                results = self._database.run_script(
                    sql, parameters, session=self._session
                )
        except Exception:
            # a failed execute must not leave the previous statement's
            # rows fetchable: fetches now raise until the next execute
            self._result = None
            self._position = 0
            self._failed = True
            raise
        self._result = results[-1] if results else None
        self._position = 0
        self._failed = False
        return self

    def executemany(
        self, sql: str, seq_of_parameters: Sequence[Sequence[Any]]
    ) -> "Cursor":
        """Execute *sql* once per parameter row, parsing and planning once.

        The batch is atomic — a failure on any row undoes the whole call."""
        try:
            with _translating():
                total = self._database.executemany(
                    sql, seq_of_parameters, session=self._session
                )
        except Exception:
            self._result = None
            self._position = 0
            self._failed = True
            raise
        self._result = Result(rowcount=total)
        self._position = 0
        self._failed = False
        return self

    def _check_fetchable(self) -> None:
        if self._failed:
            raise InterfaceError(
                "the last execute on this cursor failed; "
                "no results to fetch"
            )

    def fetchone(self) -> Optional[tuple]:
        self._check_fetchable()
        if self._result is None or self._position >= len(self._result.rows):
            return None
        row = self._result.rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        self._check_fetchable()
        size = size or self.arraysize
        out = []
        for _ in range(size):
            row = self.fetchone()
            if row is None:
                break
            out.append(row)
        return out

    def fetchall(self) -> list[tuple]:
        self._check_fetchable()
        if self._result is None:
            return []
        rows = self._result.rows[self._position :]
        self._position = len(self._result.rows)
        return rows

    def close(self) -> None:
        self._result = None
        self._failed = False

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class Connection:
    """Minimal DB-API connection over one engine :class:`Session`.

    A connection built the classic way owns a fresh private
    :class:`Database` and drives its *default* session (so code that
    reaches through ``connection.database.execute(...)`` shares the
    connection's transaction state — the connector layer does exactly
    that).  ``connect(database=shared_db)`` instead opens a **new**
    session over an existing database: many such connections run
    concurrently under snapshot isolation, each with its own transaction
    state, cancel scope and lock identity.
    """

    def __init__(
        self,
        profile: Profile | str = POSTGRES,
        workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
        collect_exec_stats: bool = False,
        optimize: Optional[bool] = None,
        durable: bool = False,
        wal_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        statement_timeout_ms: Optional[float] = None,
        faults: Optional[FaultInjector] = None,
        memory_limit: Optional[int | str] = None,
        query_memory_limit: Optional[int | str] = None,
        spill_dir: Optional[str] = None,
        memory_faults: Optional[Any] = None,
        database: Optional[Database] = None,
    ) -> None:
        if database is not None:
            self.database = database
            self._owns_database = False
            self.session: Session = database.session()
        else:
            with _translating():
                self.database = Database(
                    profile,
                    workers=workers,
                    morsel_size=morsel_size,
                    collect_exec_stats=collect_exec_stats,
                    optimize=optimize,
                    durable=durable,
                    wal_path=wal_path,
                    checkpoint_every=checkpoint_every,
                    statement_timeout_ms=statement_timeout_ms,
                    faults=faults,
                    memory_limit=memory_limit,
                    query_memory_limit=query_memory_limit,
                    spill_dir=spill_dir,
                    memory_faults=memory_faults,
                )
            self._owns_database = True
            self.session = self.database._default_session
        self._closed = False

    @property
    def in_transaction(self) -> bool:
        return self.session.in_transaction

    @property
    def closed(self) -> bool:
        return self._closed or self.session.closed

    def cursor(self) -> Cursor:
        if self.closed:
            raise InterfaceError("connection is closed")
        return Cursor(self.database, self.session)

    def begin(self) -> None:
        """Open an explicit transaction (``BEGIN``)."""
        if self.closed:
            raise InterfaceError("connection is closed")
        with _translating():
            self.database.begin(session=self.session)

    def commit(self) -> None:
        """Commit the open transaction; a no-op in autocommit (DB-API).

        Under concurrency this is where first-committer-wins conflicts
        surface: :class:`OperationalError` with SQLSTATE 40001
        (serialization failure) means the transaction was rolled back and
        should be retried."""
        if self.closed:
            raise InterfaceError("connection is closed")
        with _translating():
            self.database.commit(session=self.session)

    def rollback(self) -> None:
        """Roll back the open transaction; a no-op in autocommit."""
        if self.closed:
            raise InterfaceError("connection is closed")
        with _translating():
            self.database.rollback(session=self.session)

    def cancel(self) -> None:
        """Cancel every in-flight statement on this connection (safe
        from any thread, like psycopg2's ``Connection.cancel``; other
        connections over the same database are unaffected)."""
        self.session.cancel()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_database:
            self.database.close()
        else:
            # shared database: end only this connection's session (rolls
            # back its open transaction and releases its locks)
            self.session.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def connect(
    profile: Profile | str = POSTGRES,
    workers: Optional[int] = None,
    morsel_size: Optional[int] = None,
    collect_exec_stats: bool = False,
    optimize: Optional[bool] = None,
    durable: bool = False,
    wal_path: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    statement_timeout_ms: Optional[float] = None,
    faults: Optional[FaultInjector] = None,
    memory_limit: Optional[int | str] = None,
    query_memory_limit: Optional[int | str] = None,
    spill_dir: Optional[str] = None,
    memory_faults: Optional[Any] = None,
    database: Optional[Database] = None,
) -> Connection:
    """Open a connection to a fresh in-process database.

    ``workers`` > 1 enables morsel-driven parallel execution (defaults to
    the ``REPRO_SQL_WORKERS`` environment variable, then the profile).
    ``optimize`` turns the statistics-driven rewrite layer on or off
    (None: whatever the profile says).  ``wal_path`` (or ``durable=True``
    plus a path) opts into write-ahead logging with crash recovery on
    connect; ``statement_timeout_ms`` arms a cooperative per-statement
    timeout (``REPRO_SQL_TIMEOUT_MS`` supplies a default).

    ``memory_limit`` / ``query_memory_limit`` (bytes, or strings like
    ``"64mb"``; ``REPRO_SQL_MEMORY_LIMIT`` supplies a global default)
    arm the memory governor: queries account their hash tables, sort
    buffers, and materialisations against the budget and degrade to
    spill-to-disk execution under ``spill_dir`` when a grant is denied.

    ``database=`` connects to an *existing* :class:`Database` instead,
    opening a new concurrent session over it (every other keyword is
    ignored — the shared engine's configuration applies); this is how
    multi-session MVCC clients and the connection pool attach.
    """
    return Connection(
        profile,
        workers=workers,
        morsel_size=morsel_size,
        collect_exec_stats=collect_exec_stats,
        optimize=optimize,
        durable=durable,
        wal_path=wal_path,
        checkpoint_every=checkpoint_every,
        statement_timeout_ms=statement_timeout_ms,
        faults=faults,
        memory_limit=memory_limit,
        query_memory_limit=query_memory_limit,
        spill_dir=spill_dir,
        memory_faults=memory_faults,
        database=database,
    )
