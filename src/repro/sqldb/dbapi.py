"""DB-API 2.0 style adapter over the engine (the psycopg2 stand-in).

The paper's measurements "enclose a call to the psycopg2 adapter to run the
query"; the benchmark harness talks to the engine through this module so
the measured path has the same shape (connect → cursor → execute →
fetchall).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.errors import SQLError
from repro.sqldb.engine import Database, Result
from repro.sqldb.profile import POSTGRES, Profile

__all__ = ["connect", "Connection", "Cursor"]


class Cursor:
    """Minimal DB-API cursor."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._result: Optional[Result] = None
        self._position = 0
        self.arraysize = 1

    @property
    def description(self) -> Optional[list[tuple]]:
        if self._result is None or not self._result.columns:
            return None
        return [(name, None, None, None, None, None, None) for name in self._result.columns]

    @property
    def rowcount(self) -> int:
        return -1 if self._result is None else self._result.rowcount

    def execute(self, sql: str, parameters: Sequence[Any] | None = None) -> "Cursor":
        """Execute *sql*, binding ``?`` / ``%s`` placeholders to *parameters*.

        Values are bound into the cached plan at execution time — they are
        never spliced into the SQL text.
        """
        results = self._database.run_script(sql, parameters)
        self._result = results[-1] if results else None
        self._position = 0
        return self

    def executemany(
        self, sql: str, seq_of_parameters: Sequence[Sequence[Any]]
    ) -> "Cursor":
        """Execute *sql* once per parameter row, parsing and planning once."""
        total = self._database.executemany(sql, seq_of_parameters)
        self._result = Result(rowcount=total)
        self._position = 0
        return self

    def fetchone(self) -> Optional[tuple]:
        if self._result is None or self._position >= len(self._result.rows):
            return None
        row = self._result.rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        size = size or self.arraysize
        out = []
        for _ in range(size):
            row = self.fetchone()
            if row is None:
                break
            out.append(row)
        return out

    def fetchall(self) -> list[tuple]:
        if self._result is None:
            return []
        rows = self._result.rows[self._position :]
        self._position = len(self._result.rows)
        return rows

    def close(self) -> None:
        self._result = None

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class Connection:
    """Minimal DB-API connection wrapping one :class:`Database`."""

    def __init__(
        self,
        profile: Profile | str = POSTGRES,
        workers: Optional[int] = None,
        morsel_size: Optional[int] = None,
        collect_exec_stats: bool = False,
        optimize: Optional[bool] = None,
    ) -> None:
        self.database = Database(
            profile,
            workers=workers,
            morsel_size=morsel_size,
            collect_exec_stats=collect_exec_stats,
            optimize=optimize,
        )
        self._closed = False

    def cursor(self) -> Cursor:
        if self._closed:
            raise SQLError("connection is closed")
        return Cursor(self.database)

    def commit(self) -> None:  # transactions are implicit; kept for API shape
        pass

    def rollback(self) -> None:
        pass

    def close(self) -> None:
        self._closed = True
        self.database.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def connect(
    profile: Profile | str = POSTGRES,
    workers: Optional[int] = None,
    morsel_size: Optional[int] = None,
    collect_exec_stats: bool = False,
    optimize: Optional[bool] = None,
) -> Connection:
    """Open a connection to a fresh in-process database.

    ``workers`` > 1 enables morsel-driven parallel execution (defaults to
    the ``REPRO_SQL_WORKERS`` environment variable, then the profile).
    ``optimize`` turns the statistics-driven rewrite layer on or off
    (None: whatever the profile says).
    """
    return Connection(
        profile,
        workers=workers,
        morsel_size=morsel_size,
        collect_exec_stats=collect_exec_stats,
        optimize=optimize,
    )
